#![allow(clippy::unwrap_used)]

//! Tour of the rule taxonomy (§3) and its SQL translations (§5.3): define
//! one rule of each condition class, show the SQL the translator produces,
//! and watch the query modificator splice them into a recursive
//! multi-level-expand query.
//!
//! ```sh
//! cargo run --example access_rules
//! ```

use std::collections::HashSet;

use pdm_repro::core::query::modificator::Modificator;
use pdm_repro::core::query::recursive;
use pdm_repro::core::rules::classify::{classify, ConditionClass};
use pdm_repro::core::rules::condition::{AggFunc, CmpOp, Condition, FnArg, RowPredicate};
use pdm_repro::core::rules::{ActionKind, Rule, UserPattern};
use pdm_repro::core::RuleTable;
use pdm_repro::sql::Value;

fn main() {
    let mut rules = RuleTable::new();

    // 1. Row condition — the paper's example 1: Scott may expand assemblies
    //    that are not bought from a supplier.
    rules.add(Rule::new(
        UserPattern::Named("scott".into()),
        ActionKind::MultiLevelExpand,
        "assy",
        Condition::Row(RowPredicate::compare("make_or_buy", CmpOp::NotEq, "buy")),
    ));

    // 2. Row condition on a relation, with a stored function — structure
    //    options and effectivities (example 3): the link's option set must
    //    overlap the user's and its effectivity must cover unit 5.
    rules.add(Rule::for_all_users(
        ActionKind::Access,
        "link",
        Condition::Row(
            RowPredicate::StoredFn {
                name: "set_overlaps".into(),
                args: vec![
                    FnArg::Attr("strc_opt".into()),
                    FnArg::Const(Value::from("OPTA,OPTB")),
                ],
            }
            .and(RowPredicate::StoredFn {
                name: "overlaps_interval".into(),
                args: vec![
                    FnArg::Attr("eff_from".into()),
                    FnArg::Attr("eff_to".into()),
                    FnArg::Const(Value::Int(5)),
                    FnArg::Const(Value::Int(5)),
                ],
            }),
        ),
    ));

    // 3. ∀rows condition — the paper's example 2 (check-out): every node in
    //    the subtree must be checked in.
    rules.add(Rule::for_all_users(
        ActionKind::CheckOut,
        "assy",
        Condition::ForAllRows {
            object_type: None,
            predicate: RowPredicate::compare("checkedout", CmpOp::Eq, false),
        },
    ));

    // 4. ∃structure condition — §5.3.2: components are visible only if
    //    specified by at least one document.
    rules.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "comp",
        Condition::ExistsStructure {
            object_table: "comp".into(),
            relation_table: "specified_by".into(),
            related_table: "spec".into(),
        },
    ));

    // 5. Tree-aggregate condition — §5.3.3: trees with more than ten
    //    assemblies may not be retrieved.
    rules.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "assy",
        Condition::TreeAggregate {
            func: AggFunc::Count,
            attr: None,
            object_type: Some("assy".into()),
            op: CmpOp::LtEq,
            value: 10.0,
        },
    ));

    println!("rule table ({} rules):\n", rules.len());
    for (i, rule) in rules.iter().enumerate() {
        let class = classify(&rule.condition);
        println!(
            "rule {}: user={:?} action={:?} type={} class={:?}",
            i + 1,
            rule.user,
            rule.action,
            rule.object_type,
            class
        );
        println!("  translated: {}\n", rule.translated_sql);
        let _ = ConditionClass::Row; // (class enum shown above)
    }

    // Modify the recursive MLE query for Scott's multi-level expand.
    let views = HashSet::new();
    let modificator = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
    let mut query = recursive::mle_query(1);
    let report = modificator
        .modify_recursive(&mut query)
        .expect("modification succeeds");
    println!(
        "query modification (§5.5): {} row, {} ∀rows, {} ∃structure, {} aggregate injections",
        report.row_injections,
        report.forall_injections,
        report.exists_injections,
        report.aggregate_injections
    );
    println!("\nmodified recursive query:\n{query}");
}
