#![allow(clippy::unwrap_used)]

//! The §6 check-out workflow over the WAN: retrieve a subtree for exclusive
//! update, observe the extra UPDATE round trips that one recursive query
//! cannot absorb, then compare against the paper's function-shipping
//! remedy — and watch a concurrent check-out get refused.
//!
//! ```sh
//! cargo run --example checkout_workflow
//! ```

use pdm_repro::core::rules::condition::{CmpOp, Condition, RowPredicate};
use pdm_repro::core::rules::{ActionKind, Rule};
use pdm_repro::core::{RuleTable, Session, SessionConfig, Strategy};
use pdm_repro::net::LinkProfile;
use pdm_repro::workload::{build_database, TreeSpec};

fn rules() -> RuleTable {
    let mut t = RuleTable::new();
    for table in ["link", "assy", "comp"] {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    // The paper's example 2: check-out requires every node checked in.
    t.add(Rule::for_all_users(
        ActionKind::CheckOut,
        "assy",
        Condition::ForAllRows {
            object_type: None,
            predicate: RowPredicate::compare("checkedout", CmpOp::Eq, false),
        },
    ));
    t
}

fn main() {
    let spec = TreeSpec::new(3, 4, 1.0).with_node_size(512);
    let (db, _) = build_database(&spec).expect("workload builds");
    let mut session = Session::new(
        db,
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_256()),
        rules(),
    );

    // --- classic check-out: recursive retrieval + separate UPDATEs -------
    let out = session.check_out(1).expect("check-out runs");
    let tree = out.tree.expect("nothing was checked out yet");
    println!(
        "classic check-out: {} objects locked, {} communications \
         ({} update round trips), T = {:.2}s",
        tree.len(),
        out.stats.communications,
        out.update_round_trips,
        out.stats.response_time()
    );

    // --- a second user cannot check out the same subtree ----------------
    let denied = session.check_out(2).expect("check-out runs");
    match denied.tree {
        None => println!("second check-out of an overlapping subtree: refused ✓"),
        Some(_) => unreachable!("the ∀rows condition must refuse this"),
    }

    // --- check the subtree back in ---------------------------------------
    let released = session.check_in(&tree).expect("check-in runs");
    println!("check-in released {released} objects");

    // --- function shipping (§6's remedy): one round trip ------------------
    let out = session
        .check_out_function_shipping(1)
        .expect("procedure runs");
    let tree = out.tree.expect("available again after check-in");
    println!(
        "function-shipped check-out: {} objects locked, {} communications, T = {:.2}s",
        tree.len(),
        out.stats.communications,
        out.stats.response_time()
    );
    session.check_in(&tree).expect("cleanup");

    println!(
        "\nThe retrieval itself is one recursive query either way; the win of\n\
         function shipping is folding the ∀rows verification and the flag\n\
         updates into the same WAN exchange."
    );
}
