#![allow(clippy::unwrap_used)]

//! Quickstart: build a product structure, expand it over a simulated
//! intercontinental WAN with all three strategies, and compare.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pdm_repro::core::rules::condition::{CmpOp, Condition, RowPredicate};
use pdm_repro::core::rules::{ActionKind, Rule};
use pdm_repro::core::{RuleTable, Session, SessionConfig, Strategy};
use pdm_repro::net::LinkProfile;
use pdm_repro::workload::{build_database, TreeSpec};

fn main() {
    // A product structure: depth 4, five children per assembly, 60% of the
    // branches visible to our user (structure options), 512-byte objects.
    let spec = TreeSpec::new(4, 5, 0.6).with_node_size(512);
    println!(
        "product: {} assemblies, {} components, {} links",
        spec.assembly_count(),
        spec.component_count(),
        spec.link_count()
    );

    // Access rules: the user only sees objects/relations carrying their
    // structure option (the paper's §3.1 example 3).
    let mut rules = RuleTable::new();
    for table in ["link", "assy", "comp"] {
        rules.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }

    // The Germany↔Brazil link of the paper: 256 kbit/s, 150 ms latency.
    let link = LinkProfile::wan_256();

    println!(
        "\n{:<12}{:>8}{:>8}{:>12}{:>12}{:>10}",
        "strategy", "queries", "comms", "volume MB", "latency s", "total s"
    );
    for strategy in Strategy::ALL {
        let (db, _) = build_database(&spec).expect("workload builds");
        let mut session = Session::new(
            db,
            SessionConfig::new("scott", strategy, link),
            rules.clone(),
        );
        let out = session.multi_level_expand(1).expect("expand succeeds");
        let s = &out.stats;
        println!(
            "{:<12}{:>8}{:>8}{:>12.2}{:>12.2}{:>10.2}",
            strategy.label(),
            s.queries,
            s.communications,
            s.volume_bytes / (1024.0 * 1024.0),
            s.latency_time,
            s.response_time()
        );
        if strategy == Strategy::Recursive {
            println!(
                "\nretrieved tree: {} nodes ({} assemblies, {} components), depth {}",
                out.tree.len(),
                out.tree.count_of_type("assy"),
                out.tree.count_of_type("comp"),
                out.tree.depth()
            );
        }
    }

    println!(
        "\nThe recursive strategy turns hundreds of per-node round trips into\n\
         one query — the paper's >95% response-time saving on multi-level\n\
         expands (Table 4)."
    );
}
