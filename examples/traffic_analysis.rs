#![allow(clippy::unwrap_used)]

//! Where do the seconds go? Trace every WAN exchange of a multi-level
//! expand and break the delay down — the diagnostic view that motivated the
//! paper's suspicion ("the problem is caused by the large number of isolated
//! queries ... resulting in many messages", §1).
//!
//! ```sh
//! cargo run --example traffic_analysis
//! ```

use pdm_repro::core::rules::condition::{CmpOp, Condition, RowPredicate};
use pdm_repro::core::rules::{ActionKind, Rule};
use pdm_repro::core::{RuleTable, Session, SessionConfig, Strategy};
use pdm_repro::net::LinkProfile;
use pdm_repro::workload::{build_database, TreeSpec};

fn rules() -> RuleTable {
    let mut t = RuleTable::new();
    for table in ["link", "assy", "comp"] {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    t
}

fn main() {
    let spec = TreeSpec::new(4, 4, 0.75).with_node_size(512);

    for strategy in Strategy::ALL {
        let (db, _) = build_database(&spec).expect("workload builds");
        let mut session = Session::new(
            db,
            SessionConfig::new("scott", strategy, LinkProfile::wan_256()),
            rules(),
        );
        session.enable_trace();
        let out = session.multi_level_expand(1).expect("expand succeeds");
        let trace = session.trace().expect("tracing enabled");

        println!("=== {} ===", strategy.label());
        println!(
            "exchanges: {:>5}   total: {:>8.2}s   latency share: {:>5.1}%",
            trace.len(),
            trace.total_time(),
            100.0 * trace.latency_share()
        );
        println!(
            "per-exchange cost: p50 {:>6.3}s   p99 {:>6.3}s   max {:>6.3}s",
            trace.percentile(50.0).unwrap_or(0.0),
            trace.percentile(99.0).unwrap_or(0.0),
            trace.percentile(100.0).unwrap_or(0.0),
        );
        if let Some(slowest) = trace.slowest() {
            println!(
                "slowest exchange: {} B request → {} B response ({:.3}s at t={:.2}s)",
                slowest.request_bytes,
                slowest.response_bytes,
                slowest.cost.total_time(),
                slowest.start
            );
        }
        println!("tree: {} nodes\n", out.tree.len());
    }

    println!(
        "Navigational traces are thousands of cheap exchanges whose cost is\n\
         almost pure latency; the recursive trace is a single exchange whose\n\
         cost is almost pure transfer. That flip is the whole paper."
    );
}
