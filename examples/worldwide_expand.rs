#![allow(clippy::unwrap_used)]

//! The paper's opening story, measured: the same multi-level expand takes
//! half a minute on a LAN and half an hour over an intercontinental WAN —
//! unless the client uses recursive SQL.
//!
//! ```sh
//! cargo run --release --example worldwide_expand
//! ```

use pdm_repro::core::rules::condition::{CmpOp, Condition, RowPredicate};
use pdm_repro::core::rules::{ActionKind, Rule};
use pdm_repro::core::{RuleTable, Session, SessionConfig, Strategy};
use pdm_repro::net::LinkProfile;
use pdm_repro::workload::{build_database, TreeSpec};

fn rules() -> RuleTable {
    let mut t = RuleTable::new();
    for table in ["link", "assy", "comp"] {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    t
}

fn main() {
    // A digital-mockup-sized structure: δ=6, β=5 → 19,530 objects.
    let spec = TreeSpec::new(6, 5, 0.6).with_node_size(512);
    let (db, data) = build_database(&spec).expect("workload builds");
    println!(
        "product structure: {} objects, {} visible to this user",
        data.total_nodes() + 1,
        data.visible_nodes() + 1
    );

    let settings = [
        ("office LAN", LinkProfile::lan()),
        ("WAN 1024 kbit/s, 50ms", LinkProfile::wan_1024()),
        ("WAN 512 kbit/s, 150ms", LinkProfile::wan_512()),
        (
            "WAN 256 kbit/s, 150ms (Germany↔Brazil)",
            LinkProfile::wan_256(),
        ),
    ];

    let mut session = Session::new(
        db,
        SessionConfig::new("scott", Strategy::LateEval, settings[0].1),
        rules(),
    );

    println!("\n{:<42}{:>16}{:>16}", "link", "navigational", "recursive");
    for (name, link) in settings {
        session.set_link(link);
        session.set_strategy(Strategy::LateEval);
        let nav = session
            .multi_level_expand(1)
            .expect("expand")
            .stats
            .response_time();
        session.set_strategy(Strategy::Recursive);
        let rec = session
            .multi_level_expand(1)
            .expect("expand")
            .stats
            .response_time();
        println!("{:<42}{:>15.1}s{:>15.1}s", name, nav, rec);
    }

    println!(
        "\nOn the LAN the navigational PDM is fine — the paper's observation\n\
         that nobody notices the problem until the server moves continents.\n\
         Over the WAN, only the recursive client stays usable."
    );
}
