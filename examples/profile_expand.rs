#![allow(clippy::unwrap_used)]

//! EXPLAIN ANALYZE for the paper's flagship action: a profiled recursive
//! multi-level expand over the Figure-2 schema, reconciled against the
//! closed-form response-time model (eq. (5)).
//!
//! Three independent accountings of the SAME action must agree:
//!
//! 1. the span tree's virtual total (what the profiler says),
//! 2. the channel's `TrafficStats` (what the WAN simulator metered),
//! 3. the model's `Breakdown` (what eq. (5) predicts from δ, β, γ).
//!
//! ```sh
//! cargo run --release --example profile_expand
//! cargo run --release --example profile_expand -- --trace-out expand_trace.json
//! ```
//!
//! With `--trace-out <path>`, the expand also runs with cross-site
//! tracing on and the assembled causal tree is written as Chrome Trace
//! Event Format JSON — load it in `chrome://tracing` or Perfetto.

use pdm_repro::core::rules::condition::{CmpOp, Condition, RowPredicate};
use pdm_repro::core::rules::{ActionKind, Rule};
use pdm_repro::core::{chrome_trace_json, RuleTable, Session, SessionConfig, Strategy, Subsystem};
use pdm_repro::model::response::response;
use pdm_repro::model::{Action, KaryTree, Strategy as ModelStrategy};
use pdm_repro::net::LinkProfile;
use pdm_repro::workload::{build_database, TreeSpec};

const NODE: usize = 512;
const DEPTH: u32 = 4;
const BRANCH: u32 = 5;
const GAMMA: f64 = 0.6;

fn rules() -> RuleTable {
    let mut t = RuleTable::new();
    for table in ["link", "assy", "comp"] {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    t
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| args.get(i + 1).expect("--trace-out needs a path").clone());

    let spec = TreeSpec::new(DEPTH, BRANCH, GAMMA).with_node_size(NODE);
    let (db, _) = build_database(&spec).unwrap();
    let mut session = Session::new(
        db,
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_256()),
        rules(),
    );
    session.enable_profiling();

    let out = session.multi_level_expand(1).unwrap();
    let profile = session.last_profile().unwrap();

    println!(
        "profiled multi-level expand: δ={DEPTH} β={BRANCH} γ={GAMMA}, node {NODE}B, WAN 256 kbit/s"
    );
    println!(
        "{} nodes retrieved in {} query\n",
        out.tree.len(),
        out.stats.queries
    );
    // Wall-free render: the example's output must be byte-identical
    // across runs (repo-wide determinism invariant for binaries).
    print!("{}", profile.render_virtual());

    // Accounting 1 vs 2: the profiler against the channel's metering.
    let latency = profile.sum_attr(Subsystem::Network, "latency_s");
    let transfer = profile.sum_attr(Subsystem::Network, "transfer_s");
    println!("\nprofiler vs channel (bit-exact):");
    println!(
        "  latency   {latency:.6}s == {:.6}s  ({})",
        out.stats.latency_time,
        if latency.to_bits() == out.stats.latency_time.to_bits() {
            "ok"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "  transfer  {transfer:.6}s == {:.6}s  ({})",
        out.stats.transfer_time,
        if transfer.to_bits() == out.stats.transfer_time.to_bits() {
            "ok"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "  total     {:.6}s virtual (leaf sum {:.6}s)",
        profile.virtual_total(),
        profile.leaf_virtual_sum()
    );

    // Accounting 3: eq. (5) from the idealized tree profile.
    let m = response(
        &KaryTree::new(DEPTH, BRANCH, GAMMA),
        Action::MultiLevelExpand,
        ModelStrategy::Recursive,
        &LinkProfile::wan_256(),
        NODE,
        0,
    );
    let measured = out.stats.response_time();
    let rel = 100.0 * (measured - m.total()).abs() / m.total();
    println!(
        "\neq. (5) model: T = {:.3}s, measured {measured:.3}s (Δ {rel:.2}%)",
        m.total()
    );
    assert!(
        rel < 1.0,
        "profiled MLE must reconcile with eq. (5) within 1%"
    );

    // Traced rerun, only on request: tracing adds the 16-byte context to
    // every request, so the reconciled numbers above never see it.
    if let Some(path) = trace_out {
        session.enable_tracing(0x7AACE);
        session.multi_level_expand(1).unwrap();
        let tree = session.last_trace().unwrap();
        tree.validate().unwrap();
        std::fs::write(&path, chrome_trace_json(std::slice::from_ref(tree))).unwrap();
        println!(
            "\nwrote {path}: trace_id={} spans={} total_v={:.6}s (chrome://tracing loadable)",
            tree.trace_id,
            tree.spans.len(),
            tree.total_v
        );
    }
}
