#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # pdm-repro — façade crate
//!
//! Reproduction of *"Tuning an SQL-Based PDM System in a Worldwide
//! Client/Server Environment"* (E. Müller, P. Dadam, J. Enderle, M. Feltes —
//! ICDE 2001). This crate re-exports the workspace's public surface so
//! examples, integration tests, and downstream users have a single import
//! point. See `README.md` for a tour and `DESIGN.md` for the system map.
//!
//! ```
//! use pdm_repro::core::rules::condition::{CmpOp, Condition, RowPredicate};
//! use pdm_repro::core::rules::{ActionKind, Rule};
//! use pdm_repro::core::{RuleTable, Session, SessionConfig, Strategy};
//! use pdm_repro::net::LinkProfile;
//! use pdm_repro::workload::{build_database, TreeSpec};
//!
//! // A small product structure, 60% of branches visible to this user.
//! let (db, _) = build_database(&TreeSpec::new(3, 5, 0.6).with_node_size(512)).unwrap();
//! let mut rules = RuleTable::new();
//! for table in ["link", "assy", "comp"] {
//!     rules.add(Rule::for_all_users(
//!         ActionKind::Access,
//!         table,
//!         Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
//!     ));
//! }
//!
//! // One recursive query replaces 40 navigational round trips.
//! let mut session = Session::new(
//!     db,
//!     SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_256()),
//!     rules,
//! );
//! let out = session.multi_level_expand(1).unwrap();
//! assert_eq!(out.stats.queries, 1);
//! assert_eq!(out.tree.len(), 1 + 3 + 9 + 27); // root + visible nodes (γβ = 3)
//! ```

pub use pdm_core as core;
pub use pdm_model as model;
pub use pdm_net as net;
pub use pdm_obs as obs;
pub use pdm_sql as sql;
pub use pdm_workload as workload;
