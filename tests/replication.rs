#![allow(clippy::unwrap_used)]

//! End-to-end replication suite (the tentpole invariants of the
//! replication PR).
//!
//! * **Failover sweep** — ≥100 enumerated seeded points: a scripted
//!   multi-site workload runs against a cluster with lossy ship links and
//!   the primary is killed (promotion forced) after EVERY workload step,
//!   across several fault seeds. At every point the promoted primary must
//!   be byte-identical to a serial replay of the old primary's durable-log
//!   prefix ([`pdm_core::replay_prefix`] — the crash-recovery oracle), no
//!   acknowledged commit may be lost, and no stale check-out grant may
//!   survive promotion.
//! * **Read-your-writes stress** — ≥4 sites over lossy links: every
//!   un-annotated read observes the session's last acknowledged write.
//! * **Lease failover through the writer path** — an outage outliving the
//!   lease promotes, redirects writers to the new epoch, and heals the
//!   deposed primary back in as a replica once its outage ends.
//! * **Timeout taxonomy** — [`SessionError::ReplicaLagTimeout`] names
//!   `repl.wait_watermark` as the expiring span and
//!   [`SessionError::PrimaryUnavailable`] names `net.exchange`; the
//!   degradation controller's staleness rung converts repeated lag
//!   timeouts into explicitly annotated stale reads.

use pdm_core::{
    replay_prefix, Cluster, ClusterConfig, ProductTree, RetryPolicy, RoutedSession, RuleTable,
    SessionConfig, SessionError, Strategy,
};
use pdm_net::{FaultPlan, LinkProfile, OutageWindow};
use pdm_prng::splitmix64;
use pdm_sql::Value;
use pdm_workload::{build_database, multisite_plan, SiteOp, TreeSpec};

fn small_cluster(cfg: ClusterConfig) -> Cluster {
    let (db, _) = build_database(&TreeSpec::new(2, 2, 1.0).with_node_size(64)).unwrap();
    Cluster::new(db, cfg).unwrap()
}

fn connect(cluster: &Cluster, site: usize) -> RoutedSession {
    RoutedSession::connect(
        cluster,
        site,
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_512()),
        RuleTable::new(),
    )
}

fn roots_of(cluster: &Cluster) -> Vec<i64> {
    int_column(
        &cluster
            .primary()
            .query("SELECT obid FROM assy ORDER BY obid")
            .unwrap(),
    )
}

fn int_column(rows: &pdm_sql::ResultSet) -> Vec<i64> {
    rows.rows
        .iter()
        .filter_map(|r| match r.get(0) {
            Value::Int(i) => Some(*i),
            _ => None,
        })
        .collect()
}

fn flagged_ids(cluster: &Cluster, table: &str) -> Vec<i64> {
    int_column(
        &cluster
            .primary()
            .query(&format!(
                "SELECT obid FROM {table} WHERE checkedout = TRUE ORDER BY obid"
            ))
            .unwrap(),
    )
}

/// Drive one plan step through its site's session; reads are skipped when
/// `writes_only`. Returns whether the step extended the log.
fn drive_step(
    cluster: &mut Cluster,
    sessions: &mut [RoutedSession],
    held: &mut [Option<ProductTree>],
    site: usize,
    op: &SiteOp,
    writes_only: bool,
) -> bool {
    match op {
        SiteOp::Update { root, payload } => {
            let sql = format!("UPDATE assy SET payload = '{payload}' WHERE obid = {root}");
            sessions[site].execute_dml(cluster, &sql).unwrap();
            true
        }
        SiteOp::CheckOut { root } => {
            let (out, _) = sessions[site].check_out(cluster, *root).unwrap();
            if let Some(tree) = out.tree {
                held[site] = Some(tree);
            }
            true
        }
        SiteOp::CheckIn => match held[site].take() {
            Some(tree) => {
                sessions[site].check_in(cluster, &tree).unwrap();
                true
            }
            None => false,
        },
        SiteOp::Expand { root } => {
            if !writes_only {
                sessions[site].multi_level_expand(cluster, *root).unwrap();
            }
            false
        }
        SiteOp::QueryAll { root } => {
            if !writes_only {
                sessions[site].query_all(cluster, *root).unwrap();
            }
            false
        }
    }
}

/// One enumerated failover point: run `cut + 1` workload steps, force
/// promotion, verify the failover invariants, then keep writing in the new
/// epoch and converge every survivor.
fn failover_point(seed: u64, cut: usize) {
    let faults = FaultPlan::lossy(splitmix64(seed ^ cut as u64), 0.2).with_stall_rate(0.1);
    let cfg = ClusterConfig::default()
        .with_replicas(3)
        .with_ship_faults(faults)
        .with_max_pump_rounds(512);
    let mut cluster = small_cluster(cfg);
    let roots = roots_of(&cluster);
    let sites = cluster.replica_sites();
    let mut sessions: Vec<RoutedSession> = sites.iter().map(|s| connect(&cluster, *s)).collect();
    let mut held: Vec<Option<ProductTree>> = vec![None; sessions.len()];

    let plan = multisite_plan(seed, sessions.len(), cut + 1, &roots);
    for step in &plan {
        drive_step(
            &mut cluster,
            &mut sessions,
            &mut held,
            step.site,
            &step.op,
            true,
        );
    }

    // Kill the primary: promote the most caught-up replica.
    cluster.promote().unwrap();
    assert_eq!(cluster.failovers().len(), 1);
    let report = cluster.failovers()[0].clone();
    assert_eq!(report.old_epoch, 1);
    assert_eq!(report.new_epoch, 2);
    assert_eq!(cluster.epoch(), 2);

    // Oracle: the promoted state is the serial replay of the durable-log
    // prefix through its watermark, byte for byte.
    let oracle = replay_prefix(&report.epoch_base, &report.prefix).unwrap();
    assert_eq!(
        oracle, report.promoted_fingerprint,
        "seed {seed} cut {cut}: promoted site {} at seq {} diverged from serial replay",
        report.promoted_site, report.promoted_seq
    );
    assert!(report
        .prefix
        .iter()
        .all(|(seq, _)| *seq <= report.promoted_seq));

    // No acknowledged commit of the old epoch is beyond the surviving
    // prefix — semi-synchronous ack means promotion never loses one.
    for acked in cluster.acked_writes() {
        if acked.epoch == report.old_epoch {
            assert!(
                acked.seq <= report.promoted_seq,
                "seed {seed} cut {cut}: acked seq {} lost (promoted seq {})",
                acked.seq,
                report.promoted_seq
            );
        }
    }

    // Zero stale grants: promotion sweeps exactly like crash recovery.
    let d = cluster.primary().shared().durability().unwrap();
    assert!(
        d.outstanding_grants().is_empty(),
        "seed {seed} cut {cut}: grants survived promotion"
    );
    assert!(flagged_ids(&cluster, "assy").is_empty());
    assert!(flagged_ids(&cluster, "comp").is_empty());

    // Writers continue against the new epoch.
    let post = multisite_plan(splitmix64(seed) ^ 0xF0, sessions.len(), 6, &roots);
    for step in &post {
        drive_step(
            &mut cluster,
            &mut sessions,
            &mut held,
            step.site,
            &step.op,
            true,
        );
    }
    for s in &sessions {
        if let Some(receipt) = s.last_write() {
            assert!(receipt.epoch <= 2);
        }
    }

    // Every survivor converges onto the new primary (ship_once runs the
    // divergence digest check on the way).
    for _ in 0..2048 {
        if cluster.replica_sites().iter().all(|s| cluster.lag(*s) == 0) {
            break;
        }
        cluster.pump().unwrap();
    }
    let fp = cluster.primary_fingerprint();
    for s in cluster.replica_sites() {
        assert_eq!(cluster.lag(s), 0, "seed {seed} cut {cut}: site {s} stuck");
        assert_eq!(cluster.replica(s).unwrap().fingerprint(), fp);
    }
}

/// ≥100 enumerated failover points: every workload cut × several fault
/// seeds.
#[test]
fn failover_sweep_matches_serial_replay_oracle() {
    let mut points = 0;
    for seed in [0xA1, 0xB2, 0xC3] {
        for cut in 0..35 {
            failover_point(seed, cut);
            points += 1;
        }
    }
    assert!(points >= 100, "sweep must cover at least 100 points");
}

/// Read-your-writes over 4 sites with lossy ship links: every read that
/// comes back un-annotated observes the session's last acknowledged write.
#[test]
fn read_your_writes_holds_across_four_sites() {
    let faults = FaultPlan::lossy(0xD00D, 0.3).with_stall_rate(0.15);
    let cfg = ClusterConfig::default()
        .with_replicas(4)
        .with_ship_faults(faults)
        .with_max_pump_rounds(512);
    let mut cluster = small_cluster(cfg);
    let roots = roots_of(&cluster);
    let sites = cluster.replica_sites();
    assert!(sites.len() >= 4);
    let mut sessions: Vec<RoutedSession> = sites.iter().map(|s| connect(&cluster, *s)).collect();
    let mut held: Vec<Option<ProductTree>> = vec![None; sessions.len()];

    let plan = multisite_plan(0x0512_D00D, sessions.len(), 80, &roots);
    let mut reads = 0;
    for step in &plan {
        let i = step.site;
        match &step.op {
            SiteOp::Expand { root } => {
                let out = sessions[i].multi_level_expand(&mut cluster, *root).unwrap();
                assert!(
                    out.staleness.is_none(),
                    "unbounded wait must never go stale"
                );
                reads += 1;
            }
            SiteOp::QueryAll { root } => {
                let out = sessions[i].query_all(&mut cluster, *root).unwrap();
                assert!(out.staleness.is_none());
                reads += 1;
            }
            op => {
                drive_step(&mut cluster, &mut sessions, &mut held, i, op, false);
            }
        }
        // The watermark invariant behind the guarantee: after an
        // un-annotated read, the site's replica is at or past the
        // session's last acknowledged write.
        if let Some(receipt) = sessions[i].last_write() {
            if receipt.epoch == cluster.epoch() {
                if let Some(replica) = cluster.replica(sites[i]) {
                    if matches!(step.op, SiteOp::Expand { .. } | SiteOp::QueryAll { .. }) {
                        assert!(
                            replica.applied_seq() >= receipt.seq,
                            "site {} read below its own write: applied {} < seq {}",
                            sites[i],
                            replica.applied_seq(),
                            receipt.seq
                        );
                    }
                }
            }
        }
    }
    assert!(reads > 10, "plan exercised too few reads");

    let snap = cluster.metrics().snapshot();
    assert!(snap.counter("repl.acked_writes") > 0);
    assert!(snap.counter("repl.ship_batches") > 0);
    assert!(
        snap.counter("repl.watermark_waits") > 0,
        "no watermark wait ever ran"
    );
    assert_eq!(snap.counter("repl.stale_reads"), 0);
}

/// An outage outliving the lease promotes through the writer path: the
/// writer waits out the lease, the cluster fences the old epoch, and the
/// deposed primary heals back in as a replica when its outage ends.
#[test]
fn lease_expiry_promotes_and_heals_deposed_primary() {
    let cfg = ClusterConfig::default().with_replicas(2).with_lease(30.0);
    let mut cluster = small_cluster(cfg);
    let roots = roots_of(&cluster);
    let mut session = connect(&cluster, 1);

    // Seed some replicated history first.
    session
        .execute_dml(
            &mut cluster,
            &format!(
                "UPDATE assy SET payload = 'before' WHERE obid = {}",
                roots[0]
            ),
        )
        .unwrap();
    assert_eq!(session.last_write().unwrap().epoch, 1);

    // Outage far outliving the lease: the next write waits to lease
    // expiry, promotes, and lands in epoch 2.
    let start = cluster.clock();
    cluster.schedule_outage(OutageWindow::new(start, start + 1000.0));
    let (_, receipt) = session
        .execute_dml(
            &mut cluster,
            &format!(
                "UPDATE assy SET payload = 'after' WHERE obid = {}",
                roots[0]
            ),
        )
        .unwrap();
    assert_eq!(receipt.epoch, 2);
    assert_eq!(cluster.epoch(), 2);
    assert_eq!(cluster.failovers().len(), 1);
    let report = &cluster.failovers()[0];
    assert_eq!(
        replay_prefix(&report.epoch_base, &report.prefix).unwrap(),
        report.promoted_fingerprint
    );
    assert!(
        !cluster.replica_sites().contains(&0),
        "deposed primary must be out of the topology while down"
    );

    // Burn virtual time past the outage end; the deposed site re-bootstraps
    // from the new primary's snapshot and converges.
    while cluster.clock() < start + 1000.0 {
        session
            .execute_dml(
                &mut cluster,
                &format!("UPDATE assy SET payload = 'tick' WHERE obid = {}", roots[0]),
            )
            .unwrap();
        cluster.advance(50.0);
    }
    cluster.pump().unwrap();
    assert!(
        cluster.replica_sites().contains(&0),
        "deposed primary never healed back in"
    );
    for _ in 0..512 {
        if cluster.replica_sites().iter().all(|s| cluster.lag(*s) == 0) {
            break;
        }
        cluster.pump().unwrap();
    }
    assert_eq!(
        cluster.replica(0).unwrap().fingerprint(),
        cluster.primary_fingerprint()
    );
    assert_eq!(cluster.replica(0).unwrap().epoch(), 2);
}

/// A watermark wait that cannot make progress fails with
/// [`SessionError::ReplicaLagTimeout`] whose flight dump names
/// `repl.wait_watermark` as the expiring span.
#[test]
fn replica_lag_timeout_names_the_expiring_span() {
    // Dead ship links (every exchange stalls) + async ack so the write
    // itself succeeds.
    let cfg = ClusterConfig::default()
        .with_replicas(2)
        .with_ship_faults(FaultPlan::none().with_stall_rate(1.0).with_seed(7))
        .with_ack_replicas(0);
    let mut cluster = small_cluster(cfg);
    let roots = roots_of(&cluster);
    let mut session = connect(&cluster, 1);
    session.set_retry_policy(RetryPolicy::none().with_deadline(0.05));

    session
        .execute_dml(
            &mut cluster,
            &format!("UPDATE assy SET payload = 'w' WHERE obid = {}", roots[0]),
        )
        .unwrap();

    let err = session
        .multi_level_expand(&mut cluster, roots[0])
        .unwrap_err();
    match &err {
        SessionError::ReplicaLagTimeout {
            seq,
            applied,
            context,
            ..
        } => {
            assert!(*seq > *applied);
            assert_eq!(context.expired_in, "repl.wait_watermark");
        }
        other => panic!("expected ReplicaLagTimeout, got {other}"),
    }
    assert_eq!(err.context().unwrap().expired_in, "repl.wait_watermark");
    assert!(err.is_link_failure());
    assert!(format!("{err}").contains("repl.wait_watermark"));
    assert!(
        cluster
            .metrics()
            .snapshot()
            .counter("repl.watermark_timeouts")
            >= 1
    );
}

/// A primary outage that outlives the session's patience fails with
/// [`SessionError::PrimaryUnavailable`] whose flight dump names
/// `net.exchange` as the expiring span.
#[test]
fn primary_unavailable_names_the_expiring_span() {
    let cfg = ClusterConfig::default().with_replicas(2).with_lease(30.0);
    let mut cluster = small_cluster(cfg);
    let roots = roots_of(&cluster);
    let mut session = connect(&cluster, 1);
    session.set_retry_policy(RetryPolicy::none().with_deadline(1.0));

    // Outage shorter than the lease (no failover) but longer than the
    // session is willing to wait.
    let start = cluster.clock();
    cluster.schedule_outage(OutageWindow::new(start, start + 5.0));
    let err = session
        .execute_dml(
            &mut cluster,
            &format!("UPDATE assy SET payload = 'x' WHERE obid = {}", roots[0]),
        )
        .unwrap_err();
    match &err {
        SessionError::PrimaryUnavailable { until, context } => {
            assert!((*until - (start + 5.0)).abs() < 1e-9);
            assert_eq!(context.expired_in, "net.exchange");
        }
        other => panic!("expected PrimaryUnavailable, got {other}"),
    }
    assert!(err.is_link_failure());
    assert_eq!(cluster.epoch(), 1, "short outage must not promote");
}

/// Repeated lag timeouts open the staleness rung: reads degrade to the
/// lagging replica with an explicit annotation instead of failing, and a
/// half-open probe re-checks the watermark every cooldown.
#[test]
fn staleness_rung_serves_annotated_reads() {
    let cfg = ClusterConfig::default()
        .with_replicas(2)
        .with_ship_faults(FaultPlan::none().with_stall_rate(1.0).with_seed(9))
        .with_ack_replicas(0);
    let mut cluster = small_cluster(cfg);
    let roots = roots_of(&cluster);
    let mut session = connect(&cluster, 1);
    session.set_retry_policy(RetryPolicy::none().with_deadline(0.05));

    let (_, receipt) = session
        .execute_dml(
            &mut cluster,
            &format!("UPDATE assy SET payload = 'w' WHERE obid = {}", roots[0]),
        )
        .unwrap();

    // Default controller trips after 2 consecutive lag failures; the
    // second failure trips the rung and that same read degrades to an
    // annotated stale read instead of surfacing the error.
    let err = session
        .multi_level_expand(&mut cluster, roots[0])
        .unwrap_err();
    assert!(matches!(err, SessionError::ReplicaLagTimeout { .. }));
    assert!(!session.read_session().degradation().is_stale_open());

    let out = session.multi_level_expand(&mut cluster, roots[0]).unwrap();
    assert!(session.read_session().degradation().is_stale_open());
    let staleness = out.staleness.expect("read must carry its annotation");
    assert_eq!(staleness.required_seq, receipt.seq);
    assert!(staleness.applied_seq < staleness.required_seq);
    assert!(cluster.metrics().snapshot().counter("repl.stale_reads") >= 1);
    assert!(session.read_session().degradation().stale_reads_served() >= 1);

    // Every `cooldown` (default 8) stale reads, one probe retries the full
    // watermark wait — the link is still dead, so it fails again.
    let mut probe_failed = false;
    for _ in 0..12 {
        match session.multi_level_expand(&mut cluster, roots[0]) {
            Ok(out) => assert!(out.staleness.is_some()),
            Err(SessionError::ReplicaLagTimeout { .. }) => {
                probe_failed = true;
                break;
            }
            Err(other) => panic!("unexpected error {other}"),
        }
    }
    assert!(probe_failed, "half-open probe never ran");
}
