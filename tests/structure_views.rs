#![allow(clippy::unwrap_used)]

//! Parallel hierarchical views over the same objects (§1 footnote 1): a
//! functional decomposition stored as a second link table. The same PDM
//! machinery — navigational and recursive, early and late — must work
//! through either view, and each view can carry its own access rules.

use pdm_core::rules::condition::{CmpOp, Condition, RowPredicate};
use pdm_core::rules::{ActionKind, Rule};
use pdm_core::{RuleTable, Session, SessionConfig, Strategy};
use pdm_net::LinkProfile;
use pdm_workload::views::{generate_view_links, install_view};
use pdm_workload::{build_database, TreeSpec};

fn rules_for(tables: &[&str]) -> RuleTable {
    let mut t = RuleTable::new();
    for table in tables {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            *table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    t
}

fn session_with_view(gamma_physical: f64, gamma_functional: f64) -> (Session, usize) {
    let spec = TreeSpec::new(3, 3, gamma_physical).with_node_size(128);
    let (mut db, data) = build_database(&spec).unwrap();
    let vlinks = generate_view_links(&data, gamma_functional, 77);
    install_view(&mut db, "flink", &vlinks).unwrap();
    let visible_functional = vlinks.iter().filter(|l| l.visible).count();
    let s = Session::new(
        db,
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_512()),
        rules_for(&["link", "flink"]),
    );
    (s, visible_functional)
}

#[test]
fn same_objects_different_hierarchies() {
    let (mut s, _) = session_with_view(1.0, 1.0);

    let physical = s.multi_level_expand(1).unwrap().tree;
    s.set_structure_view("flink");
    let functional = s.multi_level_expand(1).unwrap().tree;

    // Both views cover the full object universe (γ=1 everywhere)...
    let mut p: Vec<i64> = physical.node_ids().collect();
    let mut f: Vec<i64> = functional.node_ids().collect();
    p.sort_unstable();
    f.sort_unstable();
    assert_eq!(p, f, "same objects in both views");

    // ...but the hierarchies differ.
    let differs = physical
        .node_ids()
        .any(|id| physical.node(id).unwrap().parent != functional.node(id).unwrap().parent);
    assert!(differs, "views should arrange objects differently");
}

#[test]
fn all_strategies_agree_within_a_view() {
    let spec = TreeSpec::new(3, 3, 1.0).with_node_size(128);
    let (mut db, data) = build_database(&spec).unwrap();
    let vlinks = generate_view_links(&data, 0.7, 123);
    install_view(&mut db, "flink", &vlinks).unwrap();

    let mut ids_per_strategy = Vec::new();
    for strategy in Strategy::ALL {
        let spec2 = TreeSpec::new(3, 3, 1.0).with_node_size(128);
        let (mut db2, data2) = build_database(&spec2).unwrap();
        let vlinks2 = generate_view_links(&data2, 0.7, 123);
        install_view(&mut db2, "flink", &vlinks2).unwrap();
        let mut s = Session::new(
            db2,
            SessionConfig::new("scott", strategy, LinkProfile::wan_512()),
            rules_for(&["link", "flink"]),
        );
        s.set_structure_view("flink");
        let out = s.multi_level_expand(1).unwrap();
        let mut ids: Vec<i64> = out.tree.node_ids().collect();
        ids.sort_unstable();
        ids_per_strategy.push(ids);
    }
    assert_eq!(ids_per_strategy[0], ids_per_strategy[1]);
    assert_eq!(ids_per_strategy[0], ids_per_strategy[2]);
    let _ = (db, data, vlinks);
}

#[test]
fn view_rules_are_independent() {
    // The user may see everything physically but only OPTA branches
    // functionally — rules attach to the view's table name.
    let (mut s, _) = session_with_view(1.0, 0.5);

    let physical = s.multi_level_expand(1).unwrap().tree;
    assert_eq!(physical.len(), 1 + 3 + 9 + 27);

    s.set_structure_view("flink");
    let functional = s.multi_level_expand(1).unwrap().tree;
    assert!(functional.len() < physical.len());
}

#[test]
fn functional_view_recursion_is_single_query() {
    let (mut s, _) = session_with_view(1.0, 1.0);
    s.set_structure_view("flink");
    let out = s.multi_level_expand(1).unwrap();
    assert_eq!(out.stats.queries, 1);
    assert_eq!(out.tree.reachable_from_root(), out.tree.len());
}

#[test]
fn single_level_expand_through_view() {
    let (mut s, _) = session_with_view(1.0, 1.0);
    s.set_structure_view("flink");
    s.set_strategy(Strategy::EarlyEval);
    let out = s.single_level_expand(1).unwrap();
    assert_eq!(out.stats.queries, 1);
    // children in the functional view are whatever the reattachment chose
    assert!(!out.tree.is_empty());
}
