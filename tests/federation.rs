#![allow(clippy::unwrap_used)]

//! Multi-server federation end-to-end (the paper's §7 outlook): the same
//! product structure split over several sites must yield the same visible
//! tree as a single server, with the recursive strategy paying one round
//! trip per *visited partition* instead of one total.

use pdm_bench::visibility_rules;
use pdm_core::{Federation, MountPoint, Session, SessionConfig, Strategy};
use pdm_net::LinkProfile;
use pdm_workload::{build_database, generate, partition, TreeSpec};

fn mounts_of(info: &pdm_workload::PartitionInfo) -> Vec<MountPoint> {
    info.mounts
        .iter()
        .map(|m| MountPoint {
            parent: m.parent,
            child: m.child,
            child_site: m.child_site,
            visible: m.visible,
        })
        .collect()
}

fn federation(spec: &TreeSpec, n_sites: usize, strategy: Strategy) -> Federation {
    let data = generate(spec);
    let (dbs, info) = partition(&data, n_sites).unwrap();
    let links = vec![LinkProfile::wan_256(); n_sites];
    let names = (0..n_sites).map(|i| format!("site{i}")).collect();
    Federation::new(
        dbs,
        links,
        names,
        info.site_of.clone(),
        mounts_of(&info),
        "scott",
        strategy,
        visibility_rules(),
    )
}

fn single_server_tree(spec: &TreeSpec) -> Vec<i64> {
    let (db, _) = build_database(spec).unwrap();
    let mut s = Session::new(
        db,
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_256()),
        visibility_rules(),
    );
    s.multi_level_expand(1).unwrap().tree.node_ids().collect()
}

#[test]
fn federated_tree_equals_single_server_tree() {
    for n_sites in [1usize, 2, 3, 4] {
        for gamma in [1.0, 0.6] {
            let spec = TreeSpec::new(3, 4, gamma).with_node_size(256);
            let reference = single_server_tree(&spec);
            for strategy in Strategy::ALL {
                let mut fed = federation(&spec, n_sites, strategy);
                let out = fed.multi_level_expand(1).unwrap();
                let mut ids: Vec<i64> = out.tree.node_ids().collect();
                ids.sort_unstable();
                let mut expected = reference.clone();
                expected.sort_unstable();
                assert_eq!(
                    ids, expected,
                    "{strategy:?} over {n_sites} sites, γ={gamma}"
                );
                assert_eq!(out.tree.reachable_from_root(), out.tree.len());
            }
        }
    }
}

#[test]
fn recursive_federation_pays_one_query_per_visited_site() {
    // γ=1: every level-1 subtree is reached, so every site is visited.
    let spec = TreeSpec::new(3, 4, 1.0).with_node_size(256);
    for n_sites in [1usize, 2, 4] {
        let mut fed = federation(&spec, n_sites, Strategy::Recursive);
        let out = fed.multi_level_expand(1).unwrap();
        assert_eq!(out.sites_visited, n_sites);
        // one recursive query per visited partition — the level-1 subtrees
        // each live wholesale on one site, so partitions = 1 (root's site
        // partition) + (subtrees not on site 0 reached via mounts)
        let data = generate(&spec);
        let (_, info) = partition(&data, n_sites).unwrap();
        let expected_queries = 1 + info.mounts.len();
        assert_eq!(out.total_queries(), expected_queries);
    }
}

#[test]
fn invisible_mounts_prune_remote_subtrees() {
    // γ=0: no branch visible → only the root partition query runs, no
    // remote site is contacted.
    let spec = TreeSpec::new(3, 4, 0.0).with_node_size(256);
    let mut fed = federation(&spec, 4, Strategy::Recursive);
    let out = fed.multi_level_expand(1).unwrap();
    assert_eq!(out.tree.len(), 1);
    assert_eq!(out.sites_visited, 1);
    assert_eq!(out.total_queries(), 1);
}

#[test]
fn federated_recursive_still_beats_navigational() {
    let spec = TreeSpec::new(4, 4, 0.75).with_node_size(256);
    let mut nav = federation(&spec, 3, Strategy::LateEval);
    let t_nav = nav.multi_level_expand(1).unwrap().response_time();
    let mut rec = federation(&spec, 3, Strategy::Recursive);
    let out = rec.multi_level_expand(1).unwrap();
    let t_rec = out.response_time();
    assert!(
        t_rec < t_nav / 5.0,
        "federated recursion {t_rec:.2}s vs navigational {t_nav:.2}s"
    );
}

#[test]
fn heterogeneous_links_charge_per_site() {
    // Site 0 on a LAN, site 1 across the ocean: the slow site dominates.
    let spec = TreeSpec::new(3, 2, 1.0).with_node_size(256);
    let data = generate(&spec);
    let (dbs, info) = partition(&data, 2).unwrap();
    let links = vec![LinkProfile::lan(), LinkProfile::wan_256()];
    let names = vec!["local".to_string(), "overseas".to_string()];
    let mut fed = Federation::new(
        dbs,
        links,
        names,
        info.site_of.clone(),
        mounts_of(&info),
        "scott",
        Strategy::Recursive,
        visibility_rules(),
    );
    let out = fed.multi_level_expand(1).unwrap();
    assert!(out.per_site[1].response_time() > 10.0 * out.per_site[0].response_time());
}

#[test]
fn directory_miss_is_reported() {
    let spec = TreeSpec::new(2, 2, 1.0).with_node_size(128);
    let mut fed = federation(&spec, 2, Strategy::Recursive);
    assert!(fed.multi_level_expand(999_999).is_err());
}

#[test]
fn navigational_federation_visits_remote_sites_for_mount_children() {
    let spec = TreeSpec::new(2, 3, 1.0).with_node_size(128);
    let mut fed = federation(&spec, 3, Strategy::EarlyEval);
    let out = fed.multi_level_expand(1).unwrap();
    // full tree retrieved
    assert_eq!(out.tree.len(), 1 + 3 + 9);
    assert_eq!(out.sites_visited, 3);
}
