#![allow(clippy::unwrap_used)]

//! Deterministic crash-recovery harness for the durability layer (the
//! tentpole invariant of the WAL PR).
//!
//! The exhaustive sweep runs a seeded scripted workload against a durable
//! server, kills the simulated log device at EVERY write boundary under
//! every tail-fault flavor (> 200 seeded crash points), recovers from the
//! surviving bytes, and asserts:
//!
//! * the recovered state is **byte-identical** (same
//!   [`pdm_sql::persist::state_fingerprint`]) to a from-scratch serial
//!   replay of the durable commit-log prefix plus the stale-grant sweep —
//!   an independent reference that shares no code with `recover_server`'s
//!   replay loop beyond the log scanner;
//! * the recovered state also matches the crashed server's last *published*
//!   snapshot plus the sweep (the commit gate makes durable == published);
//! * **no check-out survives the dead process**: the lock table is empty
//!   and no `checkedout` flag is left `TRUE`;
//! * **completed idempotency tokens do not re-execute**: replaying a
//!   recorded token returns its recorded rows with the storage version
//!   unchanged.
//!
//! A multi-threaded chaos run, the fault-free WAL-on/WAL-off equivalence
//! check, the crashed-grant release test (satellite: waiting session's
//! retry succeeds after restart), and the corrupt-checkpoint diagnostics
//! round out the suite.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use pdm_core::query::recursive;
use pdm_core::{
    recover_server, DurabilityConfig, PdmServer, RetryPolicy, RuleTable, Session, SessionConfig,
    SessionError, SharedServer, Strategy,
};
use pdm_net::LinkProfile;
use pdm_prng::Prng;
use pdm_sql::persist::{database_fingerprint, state_fingerprint};
use pdm_sql::shared::Snapshot;
use pdm_sql::{Database, Value};
use pdm_wal::{CrashPlan, DurableImage, DurableStore, TailFault, WalRecord};
use pdm_workload::{build_database, TreeSpec};

const WORKLOAD_SEED: u64 = 0x000C_0FFE_E001;
/// Large enough that only the attach-time checkpoint exists, so the
/// from-scratch reference can rebuild the checkpoint state from the
/// deterministic generator instead of decoding the checkpoint blob.
const NO_CHECKPOINTS: u64 = 1 << 40;

fn spec() -> TreeSpec {
    TreeSpec::new(3, 3, 1.0).with_node_size(64)
}

fn initial_database() -> Database {
    build_database(&spec()).unwrap().0
}

fn durable_server(plan: CrashPlan, interval: u64) -> PdmServer {
    let cfg = DurabilityConfig::default()
        .with_interval(interval)
        .with_crash_plan(plan);
    let shared = SharedServer::with_durability(initial_database(), &cfg).unwrap();
    PdmServer::from_shared(Arc::new(shared))
}

fn int_column(rows: &pdm_sql::ResultSet) -> Vec<i64> {
    rows.rows
        .iter()
        .map(|r| match r.get(0) {
            Value::Int(i) => *i,
            other => panic!("expected integer obid, got {other:?}"),
        })
        .collect()
}

fn assy_ids(server: &PdmServer) -> Vec<i64> {
    int_column(&server.query("SELECT obid FROM assy ORDER BY obid").unwrap())
}

fn flagged_ids(server: &PdmServer, table: &str) -> Vec<i64> {
    int_column(
        &server
            .query(&format!(
                "SELECT obid FROM {table} WHERE checkedout = TRUE ORDER BY obid"
            ))
            .unwrap(),
    )
}

/// Scripted workload: a seed-deterministic mix of attribute updates,
/// inserts/deletes, server-side check-outs, and check-ins. All PRNG draws
/// happen unconditionally, so the op *sequence* is identical whether or not
/// individual ops fail (after the device crashes, every durable write
/// errors and the rest of the script becomes no-ops on state).
fn scripted_workload(server: &PdmServer, seed: u64, steps: usize) {
    let mut rng = Prng::seed_from_u64(seed);
    let roots = assy_ids(server);
    let mut spec_obid = 900_000i64;
    for _ in 0..steps {
        let kind = rng.index(6);
        match kind {
            0 => {
                let id = roots[rng.index(roots.len())];
                let payload = rng.ident(4, 12);
                let _ = server.execute(&format!(
                    "UPDATE assy SET payload = '{payload}' WHERE obid = {id}"
                ));
            }
            1 => {
                let name = rng.ident(3, 10);
                let lo = rng.i64_inclusive(1, 40);
                let _ = server.execute(&format!(
                    "UPDATE comp SET name = '{name}' WHERE obid >= {lo} AND obid <= {}",
                    lo + 2
                ));
            }
            2 => {
                spec_obid += 1;
                let name = rng.ident(3, 10);
                let _ = server.execute(&format!(
                    "INSERT INTO spec VALUES ('spec', {spec_obid}, '{name}')"
                ));
            }
            3 => {
                let victim = 900_000 + rng.i64_inclusive(1, (spec_obid - 900_000).max(1));
                let _ = server.execute(&format!("DELETE FROM spec WHERE obid = {victim}"));
            }
            4 => {
                let root = roots[rng.index(roots.len())];
                let sql = recursive::mle_query(root).to_string();
                let token = server.shared().next_token();
                let _ = server.checkout_procedure_with_deadline(
                    root,
                    &sql,
                    token,
                    Some(Duration::from_secs(5)),
                );
            }
            _ => {
                // Check in whatever is currently flagged (possibly nothing).
                let assy = flagged_ids(server, "assy");
                let comp = flagged_ids(server, "comp");
                if !assy.is_empty() || !comp.is_empty() {
                    let _ = server.checkin_procedure(&assy, &comp);
                }
            }
        }
    }
}

/// Independent reference: rebuild the generator's initial state, scan the
/// surviving image with the WAL layer only, replay every durable DML commit
/// serially through a plain (non-shared, non-durable) `Database`, track
/// grants minus releases, and apply the recovery sweep. Returns the
/// fingerprint plus the completed tokens seen in the log.
fn reference_replay(image: &DurableImage) -> (Vec<u8>, Vec<u64>) {
    let (_store, recovered) = DurableStore::from_image(image.clone(), CrashPlan::none()).unwrap();
    assert!(
        recovered.checkpoint.is_some(),
        "the attach-time checkpoint must always survive"
    );
    let mut db = initial_database();
    let mut grants: BTreeMap<u64, (Vec<i64>, Vec<i64>)> = BTreeMap::new();
    let mut tokens = Vec::new();
    for (_seq, record) in recovered.records {
        match record {
            WalRecord::DmlCommit { sql, .. } => {
                db.execute(&sql).unwrap();
            }
            WalRecord::CheckoutGrant {
                token,
                assy_ids,
                comp_ids,
            } => {
                grants.insert(token, (assy_ids, comp_ids));
            }
            WalRecord::CheckoutRelease { ids } => {
                for (a, c) in grants.values_mut() {
                    a.retain(|id| !ids.contains(id));
                    c.retain(|id| !ids.contains(id));
                }
                grants.retain(|_, (a, c)| !a.is_empty() || !c.is_empty());
            }
            WalRecord::TokenComplete { token, .. } => tokens.push(token),
        }
    }
    // The same deterministic sweep recovery performs: sorted, deduped
    // unions, one UPDATE per non-empty table.
    let mut sweep_assy: Vec<i64> = grants.values().flat_map(|(a, _)| a.clone()).collect();
    let mut sweep_comp: Vec<i64> = grants.values().flat_map(|(_, c)| c.clone()).collect();
    sweep_assy.sort_unstable();
    sweep_assy.dedup();
    sweep_comp.sort_unstable();
    sweep_comp.dedup();
    for (table, ids) in [("assy", &sweep_assy), ("comp", &sweep_comp)] {
        if !ids.is_empty() {
            let list = ids
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            db.execute(&format!(
                "UPDATE {table} SET checkedout = FALSE WHERE obid IN ({list})"
            ))
            .unwrap();
        }
    }
    let fp = fingerprint_of(db);
    (fp, tokens)
}

/// The crashed server's published snapshot plus the sweep of its own
/// outstanding grants — a second, in-memory reference. The commit gate
/// syncs before publishing, so published state == durable prefix state.
fn published_plus_sweep(server: &PdmServer) -> Vec<u8> {
    let snapshot = server.database().snapshot();
    let mut db = Database {
        catalog: snapshot.catalog.clone(),
        config: snapshot.config.clone(),
    };
    let grants = server.shared().durability().unwrap().outstanding_grants();
    let mut sweep_assy: Vec<i64> = grants.values().flat_map(|g| g.assy.clone()).collect();
    let mut sweep_comp: Vec<i64> = grants.values().flat_map(|g| g.comp.clone()).collect();
    sweep_assy.sort_unstable();
    sweep_assy.dedup();
    sweep_comp.sort_unstable();
    sweep_comp.dedup();
    for (table, ids) in [("assy", &sweep_assy), ("comp", &sweep_comp)] {
        if !ids.is_empty() {
            let list = ids
                .iter()
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            db.execute(&format!(
                "UPDATE {table} SET checkedout = FALSE WHERE obid IN ({list})"
            ))
            .unwrap();
        }
    }
    fingerprint_of(db)
}

fn fingerprint_of(db: Database) -> Vec<u8> {
    state_fingerprint(&Snapshot {
        catalog: db.catalog,
        config: db.config,
        version: 0,
    })
}

/// Everything the acceptance criteria demand of one recovered server.
fn assert_recovery_invariants(image: DurableImage, crashed: &PdmServer, context: &str) {
    let cfg = DurabilityConfig::default().with_interval(NO_CHECKPOINTS);
    let (recovered, report) = recover_server(image.clone(), &cfg)
        .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
    let recovered = PdmServer::from_shared(Arc::new(recovered));

    // 1. Byte-identical to the independent serial replay of the durable
    //    commit-log prefix.
    let (reference_fp, tokens) = reference_replay(&image);
    let recovered_fp = database_fingerprint(recovered.database());
    assert_eq!(
        recovered_fp, reference_fp,
        "{context}: recovered state differs from serial replay of the durable prefix"
    );

    // 2. ... and to the crashed server's published state plus the sweep.
    assert_eq!(
        recovered_fp,
        published_plus_sweep(crashed),
        "{context}: durable prefix drifted from the published snapshot"
    );

    // 3. No check-out held by a dead session.
    assert!(
        recovered.shared().lock_table().is_empty(),
        "{context}: stale lock grants survived recovery"
    );
    for table in ["assy", "comp"] {
        assert!(
            flagged_ids(&recovered, table).is_empty(),
            "{context}: stale checkedout flags in {table}"
        );
    }
    assert!(
        recovered
            .shared()
            .durability()
            .unwrap()
            .outstanding_grants()
            .is_empty(),
        "{context}: grants still tracked after the sweep"
    );

    // 4. Completed idempotency tokens replay their recorded outcome
    //    without re-executing (version must not move).
    for token in tokens {
        assert!(
            recovered.checkout_recorded(token),
            "{context}: completed token {token} lost"
        );
        let before = recovered.shared().version();
        let replayed = recovered
            .checkout_procedure_with_deadline(1, "unused", token, Some(Duration::from_secs(1)))
            .unwrap_or_else(|e| panic!("{context}: token {token} replay failed: {e}"));
        assert_eq!(
            recovered.shared().version(),
            before,
            "{context}: token {token} replay re-executed the procedure"
        );
        // The recorded outcome (grant or refusal) came back as recorded.
        let _ = replayed.rows;
    }

    // The report is internally consistent with what we checked.
    assert_eq!(
        report.checkpoint_version, 0,
        "{context}: unexpected checkpoint"
    );
}

/// Tentpole: every write boundary × every tail-fault flavor. Each crash
/// point runs the scripted workload until the device dies, recovers from
/// the surviving bytes, and checks the full invariant set. Also enforces
/// the acceptance floor of 200+ seeded crash points.
#[test]
fn exhaustive_crash_point_sweep_recovers_exactly() {
    // Fault-free run to learn the op budget of the script.
    let server = durable_server(CrashPlan::none(), NO_CHECKPOINTS);
    scripted_workload(&server, WORKLOAD_SEED, 30);
    let stats = server.shared().durability().unwrap().device_stats();
    let total_ops = stats.appends + stats.syncs;
    assert!(
        total_ops >= 67,
        "script too small for 200 crash points: {total_ops} device ops"
    );

    let mut crash_points = 0u64;
    for fault in [
        TailFault::LoseTail,
        TailFault::TornWrite,
        TailFault::PartialSector,
    ] {
        for op in 0..total_ops {
            let plan = CrashPlan::at_op(op)
                .with_fault(fault)
                .with_seed(WORKLOAD_SEED ^ op);
            let victim = durable_server(plan, NO_CHECKPOINTS);
            scripted_workload(&victim, WORKLOAD_SEED, 30);
            let durability = victim.shared().durability().unwrap();
            assert!(
                durability.is_crashed(),
                "plan at op {op} never fired ({fault:?})"
            );
            let image = durability.image();
            assert_recovery_invariants(image, &victim, &format!("{fault:?} op {op}"));
            crash_points += 1;
        }
    }
    assert!(
        crash_points >= 200,
        "acceptance floor: only {crash_points} crash points exercised"
    );
}

/// A multi-threaded seeded workload killed at a PRNG-chosen write boundary.
/// The interleaving is nondeterministic but the WAL serializes commits, so
/// the from-scratch reference replay still pins down the exact recovered
/// bytes.
#[test]
fn concurrent_workload_killed_at_random_boundary_recovers() {
    for round in 0u64..4 {
        let mut rng = Prng::seed_from_u64(0xBAD_C0DE ^ round);
        let crash_op = rng.u64_inclusive(5, 160);
        let plan = CrashPlan::at_op(crash_op)
            .with_fault(match rng.index(3) {
                0 => TailFault::LoseTail,
                1 => TailFault::TornWrite,
                _ => TailFault::PartialSector,
            })
            .with_seed(rng.next_u64());
        let server = durable_server(plan, NO_CHECKPOINTS);
        let mut handles = Vec::new();
        for worker in 0..3u64 {
            let server = server.clone();
            let seed = rng.next_u64() ^ worker;
            handles.push(std::thread::spawn(move || {
                scripted_workload(&server, seed, 24);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let durability = server.shared().durability().unwrap();
        if !durability.is_crashed() {
            durability.crash_now();
        }
        let image = durability.image();
        assert_recovery_invariants(image, &server, &format!("concurrent round {round}"));
    }
}

/// Fault-free equivalence: with no crash, the WAL must be pure overhead —
/// the durable server's final state is byte-identical to a WAL-less server
/// running the same script, and to its own recovered image.
#[test]
fn fault_free_runs_identical_with_wal_on_and_off() {
    let durable = durable_server(CrashPlan::none(), NO_CHECKPOINTS);
    scripted_workload(&durable, WORKLOAD_SEED, 30);

    let plain = PdmServer::new(initial_database());
    scripted_workload(&plain, WORKLOAD_SEED, 30);

    assert_eq!(
        database_fingerprint(durable.database()),
        database_fingerprint(plain.database()),
        "WAL changed the observable state of a fault-free run"
    );
}

/// Frequent checkpoints must not change recovery semantics: crash points
/// sampled across the run recover to the published-plus-sweep state even
/// when most of the history lives in the checkpoint, not the log.
#[test]
fn recovery_with_frequent_checkpoints_matches_published_state() {
    for op in [9u64, 33, 61, 95, 131, 170] {
        let plan = CrashPlan::at_op(op)
            .with_fault(TailFault::TornWrite)
            .with_seed(op);
        let run_cfg = DurabilityConfig::default()
            .with_interval(4)
            .with_crash_plan(plan);
        let victim = PdmServer::from_shared(Arc::new(
            SharedServer::with_durability(initial_database(), &run_cfg).unwrap(),
        ));
        scripted_workload(&victim, WORKLOAD_SEED, 30);
        let durability = victim.shared().durability().unwrap();
        if !durability.is_crashed() {
            // The op budget shrinks as checkpoints truncate the log; a plan
            // past the end simply never fires. Kill at the end instead.
            durability.crash_now();
        }
        // Recover with a crash-free device: the old plan must not re-fire
        // against the replacement log during the recovery sweep.
        let recover_cfg = DurabilityConfig::default().with_interval(4);
        let (recovered, _report) = recover_server(durability.image(), &recover_cfg)
            .unwrap_or_else(|e| panic!("checkpointed op {op}: recovery failed: {e}"));
        let recovered = PdmServer::from_shared(Arc::new(recovered));
        assert_eq!(
            database_fingerprint(recovered.database()),
            published_plus_sweep(&victim),
            "checkpointed op {op}: recovered state drifted"
        );
        assert!(recovered.shared().lock_table().is_empty());
        for table in ["assy", "comp"] {
            assert!(flagged_ids(&recovered, table).is_empty());
        }
    }
}

/// Satellite: a check-out granted before the crash is released on restart,
/// and a session retrying with its PR-1 `RetryPolicy` gets the tree within
/// its deadline instead of being refused by a dead session's grant.
#[test]
fn crashed_grant_is_released_and_waiting_retry_succeeds() {
    let server = durable_server(CrashPlan::none(), NO_CHECKPOINTS);
    let sql = recursive::mle_query(1).to_string();
    let token = server.shared().next_token();
    let granted = server
        .checkout_procedure_with_deadline(1, &sql, token, Some(Duration::from_secs(5)))
        .unwrap();
    assert!(granted.rows.is_some(), "setup: check-out must be granted");
    assert!(!flagged_ids(&server, "assy").is_empty());
    assert!(!server.shared().lock_table().is_empty());

    // The process dies with the grant held.
    let durability = server.shared().durability().unwrap();
    durability.crash_now();
    let image = durability.image();

    let cfg = DurabilityConfig::default().with_interval(NO_CHECKPOINTS);
    let (recovered, report) = recover_server(image, &cfg).unwrap();
    assert!(
        report.swept_tokens.contains(&token),
        "the dead session's grant was not swept"
    );
    let recovered = PdmServer::from_shared(Arc::new(recovered));
    assert!(recovered.shared().lock_table().is_empty());
    assert!(flagged_ids(&recovered, "assy").is_empty());
    assert!(flagged_ids(&recovered, "comp").is_empty());

    // A fresh session with a retry policy checks the same tree out within
    // its deadline — the crashed holder no longer blocks it.
    let mut session = Session::attach(
        recovered.clone(),
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_256()),
        RuleTable::new(),
    );
    session.set_retry_policy(RetryPolicy::default_wan().with_max_attempts(3));
    let out = session.check_out_function_shipping(1).unwrap();
    assert!(
        out.tree.is_some(),
        "retry after restart was refused by a stale grant"
    );
}

/// Satellite: checkpoint corruption is fatal and carries a precise
/// diagnostic (offset, expected vs found CRC) all the way up to
/// `SessionError::CorruptLog`.
#[test]
fn corrupt_checkpoint_surfaces_offset_and_checksums() {
    let server = durable_server(CrashPlan::none(), NO_CHECKPOINTS);
    scripted_workload(&server, WORKLOAD_SEED, 12);
    let mut image = server.shared().durability().unwrap().image();
    let last = image.checkpoint.len() - 1;
    image.checkpoint[last] ^= 0x40;

    let cfg = DurabilityConfig::default().with_interval(NO_CHECKPOINTS);
    let err = recover_server(image, &cfg).expect_err("corrupt checkpoint must be fatal");
    let session_err = SessionError::from(err);
    match &session_err {
        SessionError::CorruptLog {
            offset,
            expected,
            found,
        } => {
            assert_eq!(*offset, 0, "the checkpoint cell starts at offset 0");
            assert_ne!(expected, found);
        }
        other => panic!("expected CorruptLog, got {other:?}"),
    }
    let rendered = session_err.to_string();
    assert!(
        rendered.contains("corrupt durable log at offset 0")
            && rendered.contains("expected crc 0x"),
        "diagnostic lost detail: {rendered}"
    );
}

/// Satellite: torn-tail damage in the LOG (as opposed to the checkpoint) is
/// a normal crash artifact — recovery tolerates it and reports what was
/// truncated.
#[test]
fn torn_log_tail_is_truncated_and_reported() {
    let server = durable_server(CrashPlan::none(), NO_CHECKPOINTS);
    scripted_workload(&server, WORKLOAD_SEED, 12);
    let mut image = server.shared().durability().unwrap().image();
    // Chop mid-record: strictly inside the last frame.
    image.log.truncate(image.log.len() - 3);

    let cfg = DurabilityConfig::default().with_interval(NO_CHECKPOINTS);
    let (recovered, report) = recover_server(image.clone(), &cfg).unwrap();
    assert!(
        report.tail_damage.is_some(),
        "truncated tail should be reported"
    );
    let recovered = PdmServer::from_shared(Arc::new(recovered));
    let (reference_fp, _) = reference_replay(&image);
    assert_eq!(database_fingerprint(recovered.database()), reference_fp);
}
