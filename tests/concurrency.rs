#![allow(clippy::unwrap_used)]

//! Deterministic concurrency stress test for the shared PDM server.
//!
//! N worker threads, each driven by its own seeded PRNG, hammer ONE
//! `Arc<SharedServer>` with a mixed workload (multi-level expands, Query
//! actions, function-shipping check-outs, check-ins). The server journals
//! every committed DML statement in commit order and every lock-table
//! decision in serialization order. Afterwards we assert the two
//! properties that make the server trustworthy:
//!
//! 1. **Serial equivalence**: replaying the logged DML order on a fresh
//!    copy of the same database reproduces the final storage state
//!    byte-for-byte.
//! 2. **Check-out exclusion**: no two overlapping check-outs of the same
//!    object both succeed — between a grant covering object X and the next
//!    release covering X, no other grant may mention X.
//!
//! The interleaving itself is whatever the OS scheduler produces; the
//! assertions hold for EVERY interleaving, which is the point.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};

use pdm_core::{LockEvent, PdmServer, ProductTree, RuleTable, Session, SessionConfig, Strategy};
use pdm_net::LinkProfile;
use pdm_prng::Prng;
use pdm_workload::{build_database, TreeSpec};

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 40;
const SEED: u64 = 0x5EED_C0DE;

fn spec() -> TreeSpec {
    TreeSpec::new(3, 3, 1.0).with_node_size(128)
}

fn fresh_server() -> PdmServer {
    let (db, _) = build_database(&spec()).unwrap();
    PdmServer::new(db)
}

fn session_on(server: &PdmServer, user: &str) -> Session {
    Session::attach(
        server.clone(),
        SessionConfig::new(user, Strategy::Recursive, LinkProfile::wan_256()),
        RuleTable::new(),
    )
}

/// All assembly ids — the candidate check-out/expand roots.
fn assy_ids(server: &PdmServer) -> Vec<i64> {
    let rs = server.query("SELECT obid FROM assy ORDER BY obid").unwrap();
    rs.rows
        .iter()
        .map(|r| match r.get(0) {
            pdm_sql::Value::Int(i) => *i,
            other => panic!("non-integer obid {other}"),
        })
        .collect()
}

/// Dump the complete storage state relevant to the workload.
fn storage_state(server: &PdmServer) -> Vec<pdm_sql::ResultSet> {
    ["assy", "comp", "link"]
        .iter()
        .map(|t| {
            server
                .query(&format!("SELECT * FROM {t} ORDER BY obid"))
                .unwrap()
        })
        .collect()
}

#[test]
fn stress_final_state_equals_serial_replay() {
    let server = fresh_server();
    server.shared().enable_journal();
    let roots = assy_ids(&server);
    assert!(roots.len() >= 8, "need a real tree to contend over");

    let barrier = Arc::new(Barrier::new(THREADS));
    let mut handles = Vec::new();
    for worker in 0..THREADS {
        let server = server.clone();
        let roots = roots.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut prng = Prng::seed_from_u64(SEED ^ (worker as u64).wrapping_mul(0x9E37));
            let mut session = session_on(&server, &format!("user{worker}"));
            let mut held: Vec<ProductTree> = Vec::new();
            let mut grants = 0usize;
            let mut refusals = 0usize;
            barrier.wait();
            for _ in 0..OPS_PER_THREAD {
                let root = roots[(prng.next_u64() % roots.len() as u64) as usize];
                match prng.next_u64() % 100 {
                    0..=29 => {
                        let out = session.multi_level_expand(root).unwrap();
                        assert!(!out.tree.is_empty());
                    }
                    30..=49 => {
                        session.query_all(roots[0]).unwrap();
                    }
                    50..=79 => {
                        let out = session.check_out_function_shipping(root).unwrap();
                        match out.tree {
                            Some(tree) => {
                                grants += 1;
                                held.push(tree);
                            }
                            None => refusals += 1,
                        }
                    }
                    _ => {
                        if let Some(tree) = held.pop() {
                            session.check_in(&tree).unwrap();
                        } else {
                            session.single_level_expand(root).unwrap();
                        }
                    }
                }
            }
            // Check everything still held back in so the final state is
            // reachable by the replay (and locks drain).
            for tree in held.drain(..) {
                session.check_in(&tree).unwrap();
            }
            (grants, refusals)
        }));
    }

    let mut total_grants = 0usize;
    for h in handles {
        let (g, _r) = h.join().unwrap();
        total_grants += g;
    }
    assert!(total_grants >= 1, "the workload must exercise check-outs");
    assert!(
        server.shared().lock_table().is_empty(),
        "every grant was checked back in"
    );

    // Property 2: check-out exclusion over the lock-event journal.
    let events = server.shared().take_lock_events();
    let mut held_by: HashMap<i64, u64> = HashMap::new();
    let mut seen_grant = false;
    for event in &events {
        match event {
            LockEvent::Granted { token, ids } => {
                seen_grant = true;
                for id in ids {
                    if let Some(prev) = held_by.insert(*id, *token) {
                        panic!("object {id} granted to token {token} while still held by {prev}");
                    }
                }
            }
            LockEvent::Released { ids } => {
                for id in ids {
                    held_by.remove(id);
                }
            }
            LockEvent::Refused { .. } => {}
        }
    }
    assert!(seen_grant);

    // Property 1: serial replay of the DML commit log reproduces the
    // final storage state exactly.
    let dml = server.shared().take_dml_log();
    assert!(!dml.is_empty(), "check-outs must have journaled their DML");
    let replay = fresh_server();
    for stmt in &dml {
        replay.execute(stmt).unwrap();
    }
    assert_eq!(
        storage_state(&server),
        storage_state(&replay),
        "concurrent final state diverged from serial replay"
    );
}

/// Two sessions on different threads repeatedly check out the SAME root:
/// every round exactly one wins, and the flags always agree with the lock
/// table.
#[test]
fn same_root_contention_has_exactly_one_winner() {
    let server = fresh_server();
    let barrier = Arc::new(Barrier::new(2));
    let mut handles = Vec::new();
    for worker in 0..2 {
        let server = server.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut session = session_on(&server, &format!("user{worker}"));
            let mut wins = Vec::new();
            for _round in 0..10 {
                barrier.wait();
                let out = session.check_out_function_shipping(1).unwrap();
                let won = out.tree.is_some();
                // Hold the grant until BOTH attempts completed, so the
                // round is genuinely contested; then the winner cleans up.
                barrier.wait();
                if let Some(tree) = out.tree {
                    session.check_in(&tree).unwrap();
                }
                barrier.wait();
                wins.push(won);
            }
            wins
        }));
    }
    let results: Vec<Vec<bool>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for round in 0..10 {
        let winners = results.iter().filter(|w| w[round]).count();
        assert_eq!(
            winners, 1,
            "round {round}: exactly one of two overlapping check-outs may win"
        );
    }
}

/// The serial-replay property holds when every thread runs the SAME seeded
/// schedule twice: both runs end in the same storage state (checked via
/// their own replays), i.e. the harness itself is deterministic given a
/// serialization order.
#[test]
fn replay_of_replay_is_stable() {
    let server = fresh_server();
    server.shared().enable_journal();
    let mut session = session_on(&server, "solo");
    let mut prng = Prng::seed_from_u64(SEED);
    let roots = assy_ids(&server);
    let mut held = Vec::new();
    for _ in 0..30 {
        let root = roots[(prng.next_u64() % roots.len() as u64) as usize];
        match prng.next_u64() % 3 {
            0 => {
                if let Some(t) = session.check_out_function_shipping(root).unwrap().tree {
                    held.push(t);
                }
            }
            1 => {
                if let Some(t) = held.pop() {
                    session.check_in(&t).unwrap();
                }
            }
            _ => {
                session.multi_level_expand(root).unwrap();
            }
        }
    }
    let dml = server.shared().take_dml_log();

    let replay1 = fresh_server();
    let replay2 = fresh_server();
    for stmt in &dml {
        replay1.execute(stmt).unwrap();
        replay2.execute(stmt).unwrap();
    }
    assert_eq!(storage_state(&replay1), storage_state(&replay2));
    assert_eq!(storage_state(&server), storage_state(&replay1));
}
