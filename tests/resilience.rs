#![allow(clippy::unwrap_used)]

//! End-to-end resilience: the fault-injected WAN must never corrupt PDM
//! state or silently change what the user sees. Check-out stays atomic
//! under lost confirmations, retries are invisible in the returned tree,
//! recursive degradation serves the same visible tree, and federations
//! mark unreachable sites instead of failing or truncating silently.

use pdm_bench::visibility_rules;
use pdm_core::{
    Federation, MountPoint, RetryPolicy, Session, SessionConfig, SessionError, Strategy,
};
use pdm_net::{FaultPlan, LinkProfile, OutageWindow, ScriptedKind};
use pdm_sql::Value;
use pdm_workload::{build_database, generate, partition, TreeSpec};

fn session(strategy: Strategy, spec: &TreeSpec) -> Session {
    let (db, _) = build_database(spec).unwrap();
    Session::new(
        db,
        SessionConfig::new("scott", strategy, LinkProfile::wan_256()),
        visibility_rules(),
    )
}

fn spec() -> TreeSpec {
    TreeSpec::new(3, 5, 0.6).with_node_size(256)
}

fn checked_out_count(s: &Session) -> i64 {
    let mut n = 0;
    for table in ["assy", "comp"] {
        let rs = s
            .server()
            .query(&format!(
                "SELECT COUNT(*) AS n FROM {table} WHERE checkedout = TRUE"
            ))
            .unwrap();
        match rs.rows[0].get(0) {
            Value::Int(i) => n += i,
            other => panic!("unexpected count {other:?}"),
        }
    }
    n
}

#[test]
fn checkout_stays_atomic_when_the_confirmation_is_lost() {
    // Exchange 0 is the procedure call; its response (the confirmation that
    // the flags were flipped) is scripted to vanish. The retry replays the
    // same idempotency token, so the server returns the recorded outcome
    // instead of refusing its own half-visible check-out.
    let sp = spec();
    let mut s = session(Strategy::Recursive, &sp);
    s.set_fault_plan(FaultPlan::none().with_scripted(0, ScriptedKind::LoseResponse));

    let out = s.check_out_function_shipping(1).unwrap();
    let tree = out.tree.expect("check-out must succeed after the replay");
    assert_eq!(
        out.stats.failed_attempts, 1,
        "the lost confirmation was charged"
    );

    // flags flipped exactly once: every tree node, nothing else
    assert_eq!(checked_out_count(&s), tree.len() as i64);

    // a genuinely new check-out is still refused (∀rows condition)
    let denied = s.check_out_function_shipping(1).unwrap();
    assert!(denied.tree.is_none());

    // and the tree matches a fault-free run exactly
    let mut clean = session(Strategy::Recursive, &sp);
    let clean_out = clean.check_out_function_shipping(1).unwrap();
    let mut a: Vec<i64> = tree.node_ids().collect();
    let mut b: Vec<i64> = clean_out.tree.unwrap().node_ids().collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn lossy_link_retries_are_invisible_in_the_result() {
    let sp = spec();
    let mut clean = session(Strategy::EarlyEval, &sp);
    let reference: Vec<i64> = {
        let mut ids: Vec<i64> = clean
            .multi_level_expand(1)
            .unwrap()
            .tree
            .node_ids()
            .collect();
        ids.sort_unstable();
        ids
    };

    let mut s = session(Strategy::EarlyEval, &sp);
    s.set_fault_plan(FaultPlan::lossy(42, 0.25).with_server_error_rate(0.05));
    let out = s.multi_level_expand(1).unwrap();
    let mut ids: Vec<i64> = out.tree.node_ids().collect();
    ids.sort_unstable();
    assert_eq!(ids, reference, "retries must not change the visible tree");
    assert!(!out.degraded);

    // the pain was real, just absorbed
    let faults = out.stats.retransmits + out.stats.failed_attempts;
    assert!(faults > 0, "25% loss over 40 queries must surface faults");
    assert!(out.stats.fault_wait_time > 0.0 || out.stats.retransmits > 0);
}

#[test]
fn recursive_degrades_to_batched_and_serves_the_same_tree() {
    let sp = spec();
    let reference: Vec<i64> = {
        let mut clean = session(Strategy::Recursive, &sp);
        let mut ids: Vec<i64> = clean
            .multi_level_expand(1)
            .unwrap()
            .tree
            .node_ids()
            .collect();
        ids.sort_unstable();
        ids
    };

    let mut s = session(Strategy::Recursive, &sp);
    // Kill the first two attempts of the recursive query (exchanges 0, 1);
    // the batched fallback's level queries (exchanges 2+) go through.
    s.set_fault_plan(
        FaultPlan::none()
            .with_scripted(0, ScriptedKind::StallRequest)
            .with_scripted(1, ScriptedKind::StallRequest),
    );
    s.set_retry_policy(RetryPolicy::default_wan().with_max_attempts(2));

    let out = s.multi_level_expand(1).unwrap();
    assert!(
        out.degraded,
        "the action must be served by the fallback path"
    );
    let mut ids: Vec<i64> = out.tree.node_ids().collect();
    ids.sort_unstable();
    assert_eq!(
        ids, reference,
        "degraded service must show the same visible tree"
    );
    assert_eq!(out.stats.failed_attempts, 2);
    // level-batched: one query per level (root, 3, 9, 27 frontiers)
    assert_eq!(out.stats.queries, 4);
    assert_eq!(s.degradation().consecutive_failures(), 1);
}

#[test]
fn circuit_breaker_opens_after_repeated_recursive_failures() {
    let sp = spec();
    let mut s = session(Strategy::Recursive, &sp);
    // First action: recursive attempts at exchanges 0,1 stall → fallback
    // uses exchanges 2..=5. Second action: recursive attempts at exchanges
    // 6,7 stall → breaker trips.
    s.set_fault_plan(
        FaultPlan::none()
            .with_scripted(0, ScriptedKind::StallRequest)
            .with_scripted(1, ScriptedKind::StallRequest)
            .with_scripted(6, ScriptedKind::StallRequest)
            .with_scripted(7, ScriptedKind::StallRequest),
    );
    s.set_retry_policy(RetryPolicy::default_wan().with_max_attempts(2));

    assert!(s.multi_level_expand(1).unwrap().degraded);
    assert!(!s.degradation().is_open());
    assert!(s.multi_level_expand(1).unwrap().degraded);
    assert!(
        s.degradation().is_open(),
        "two consecutive failures trip the breaker"
    );

    // Third action: breaker open → no recursive attempt at all, straight to
    // the batched path (no scripted faults left, but none are reached
    // either: zero failed attempts this action).
    let out = s.multi_level_expand(1).unwrap();
    assert!(out.degraded);
    assert_eq!(out.stats.failed_attempts, 0);
}

#[test]
fn deadline_bounds_an_unreachable_server() {
    let sp = spec();
    let mut s = session(Strategy::Recursive, &sp);
    // 100% stall: nothing ever gets through.
    s.set_fault_plan(FaultPlan::none().with_stall_rate(1.0).with_timeout(10.0));
    s.set_retry_policy(RetryPolicy::default_wan().with_deadline(25.0));
    match s.multi_level_expand(1) {
        Err(e) => {
            assert!(e.is_link_failure(), "got {e}");
            // degradation fallback also ran into the wall; either way the
            // session gave up within the deadline plus one timeout charge
            assert!(s.elapsed() <= 25.0 + 10.0 + 1e-9, "elapsed {}", s.elapsed());
        }
        Ok(out) => panic!("must not succeed, got {} nodes", out.tree.len()),
    }
}

#[test]
fn outage_window_is_waited_out() {
    let sp = spec();
    let mut s = session(Strategy::Recursive, &sp);
    s.set_fault_plan(
        FaultPlan::none()
            .with_outage(OutageWindow::new(0.0, 5.0))
            .with_timeout(2.0),
    );
    let out = s.multi_level_expand(1).unwrap();
    assert!(!out.degraded || out.tree.len() > 1);
    assert!(out.stats.outage_hits >= 1);
    // the clock sat through the outage before the query could succeed
    assert!(s.elapsed() >= 5.0);
}

#[test]
fn classic_checkout_update_replays_are_idempotent() {
    let sp = TreeSpec::new(2, 3, 1.0).with_node_size(256);
    let mut s = session(Strategy::Recursive, &sp);
    // Lossy enough to force retries (including replayed UPDATEs after lost
    // confirmations) but survivable with the default retry budget.
    s.set_fault_plan(FaultPlan::lossy(7, 0.3).with_max_retransmits(20));
    let out = s.check_out(1).unwrap();
    let tree = out.tree.expect("check-out succeeds through the noise");
    // flags exactly once per node, no matter how many times the UPDATE ran
    assert_eq!(checked_out_count(&s), tree.len() as i64);
    // and check-in under the same noise releases everything
    let n = s.check_in(&tree).unwrap();
    assert_eq!(n, tree.len());
    assert_eq!(checked_out_count(&s), 0);
}

#[test]
fn federation_marks_unreachable_sites_as_partial() {
    let sp = TreeSpec::new(3, 4, 1.0).with_node_size(256);
    let data = generate(&sp);
    let n_sites = 3;
    let (_, info) = partition(&data, n_sites).unwrap();
    let links = vec![LinkProfile::wan_256(); n_sites];
    let names: Vec<String> = (0..n_sites).map(|i| format!("site{i}")).collect();
    let mounts: Vec<MountPoint> = info
        .mounts
        .iter()
        .map(|m| MountPoint {
            parent: m.parent,
            child: m.child,
            child_site: m.child_site,
            visible: m.visible,
        })
        .collect();

    let build = |strategy: Strategy| {
        let (dbs, _) = partition(&data, n_sites).unwrap();
        Federation::new(
            dbs,
            links.clone(),
            names.clone(),
            info.site_of.clone(),
            mounts.clone(),
            "scott",
            strategy,
            visibility_rules(),
        )
    };

    for strategy in [Strategy::Recursive, Strategy::EarlyEval] {
        let mut fed = build(strategy);
        let full = fed.multi_level_expand(1).unwrap();
        assert!(!full.partial);
        assert!(full.unreachable_sites.is_empty());

        // Site 2's link goes fully dark; the root's site stays up.
        let mut fed = build(strategy);
        fed.set_site_fault_plan(2, FaultPlan::none().with_stall_rate(1.0).with_timeout(5.0));
        fed.set_retry_policy(RetryPolicy::default_wan().with_max_attempts(2));
        let out = fed.multi_level_expand(1).unwrap();
        assert!(
            out.partial,
            "{strategy:?}: losing a site must mark the result partial"
        );
        assert_eq!(out.unreachable_sites, vec!["site2".to_string()]);
        assert!(
            out.tree.len() < full.tree.len(),
            "{strategy:?}: the dark site's subtrees are missing"
        );
        // everything still present is reachable from the root — the tree is
        // a consistent prefix, not a random subset
        assert_eq!(out.tree.reachable_from_root(), out.tree.len());
    }
}

#[test]
fn timeout_error_reports_attempts_and_elapsed() {
    let sp = spec();
    let mut s = session(Strategy::LateEval, &sp);
    s.set_fault_plan(FaultPlan::none().with_stall_rate(1.0).with_timeout(3.0));
    s.set_retry_policy(RetryPolicy::default_wan().with_max_attempts(3));
    match s.multi_level_expand(1) {
        Err(SessionError::Timeout {
            attempts,
            elapsed,
            context,
        }) => {
            assert_eq!(attempts, 3);
            assert!(
                elapsed >= 9.0,
                "three 3 s timeouts plus backoff, got {elapsed}"
            );
            // The context pins the span kind where the deadline expired: a
            // network stall, not a lock wait.
            assert_eq!(context.expired_in, "net.exchange");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}

#[test]
fn timeout_context_carries_flight_events_when_profiling() {
    let sp = spec();
    let mut s = session(Strategy::LateEval, &sp);
    s.enable_profiling();
    s.set_fault_plan(FaultPlan::none().with_stall_rate(1.0).with_timeout(3.0));
    s.set_retry_policy(RetryPolicy::default_wan().with_max_attempts(3));
    let err = s.multi_level_expand(1).unwrap_err();
    let context = err.context().expect("timeout carries context");
    assert_eq!(context.expired_in, "net.exchange");
    assert!(
        !context.events.is_empty(),
        "profiling on: the flight ring must carry the failed exchanges"
    );
    // The dump renders the expiry site for journals.
    assert!(context
        .render()
        .contains("deadline expired in: net.exchange"));
}
