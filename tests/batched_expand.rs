#![allow(clippy::unwrap_used)]

//! Level-batched expansion: the IN-list middle ground between per-node
//! navigation and one recursive query. Checks semantic equivalence with the
//! other strategies and the predicted round-trip count (depth + 1 levels).

use pdm_bench::visibility_rules;
use pdm_core::{Session, SessionConfig, Strategy};
use pdm_net::LinkProfile;
use pdm_workload::{build_database, TreeSpec};

fn session(depth: u32, branching: u32, gamma: f64, strategy: Strategy) -> Session {
    let spec = TreeSpec::new(depth, branching, gamma).with_node_size(512);
    let (db, _) = build_database(&spec).unwrap();
    Session::new(
        db,
        SessionConfig::new("scott", strategy, LinkProfile::wan_256()),
        visibility_rules(),
    )
}

#[test]
fn batched_returns_the_same_tree() {
    for gamma in [1.0, 0.6] {
        let mut reference = session(4, 5, gamma, Strategy::Recursive);
        let expected: Vec<i64> = reference
            .multi_level_expand(1)
            .unwrap()
            .tree
            .node_ids()
            .collect();
        for strategy in [Strategy::LateEval, Strategy::EarlyEval] {
            let mut s = session(4, 5, gamma, strategy);
            let out = s.multi_level_expand_batched(1).unwrap();
            let ids: Vec<i64> = out.tree.node_ids().collect();
            assert_eq!(ids, expected, "batched {strategy:?} γ={gamma}");
            assert_eq!(out.tree.reachable_from_root(), out.tree.len());
        }
    }
}

#[test]
fn batched_round_trips_equal_levels() {
    // δ=4 visible levels + the final empty-frontier probe = 5 queries.
    let mut s = session(4, 5, 0.6, Strategy::EarlyEval);
    let out = s.multi_level_expand_batched(1).unwrap();
    assert_eq!(out.stats.queries, 5);
    assert_eq!(out.stats.communications, 10);
}

#[test]
fn batched_sits_between_navigational_and_recursive() {
    let t_nav = session(4, 5, 0.6, Strategy::EarlyEval)
        .multi_level_expand(1)
        .unwrap()
        .stats
        .response_time();
    let t_batched = session(4, 5, 0.6, Strategy::EarlyEval)
        .multi_level_expand_batched(1)
        .unwrap()
        .stats
        .response_time();
    let t_rec = session(4, 5, 0.6, Strategy::Recursive)
        .multi_level_expand(1)
        .unwrap()
        .stats
        .response_time();
    assert!(
        t_rec < t_batched && t_batched < t_nav,
        "expected rec {t_rec:.2} < batched {t_batched:.2} < nav {t_nav:.2}"
    );
}

#[test]
fn large_frontiers_need_multi_packet_requests() {
    // δ=2, β=30 → level-1 frontier has 30 nodes but level-2 has 900; the
    // final IN-list request (~6 kB of ids) exceeds one 4 kB packet.
    let mut s = session(2, 30, 1.0, Strategy::EarlyEval);
    let out = s.multi_level_expand_batched(1).unwrap();
    assert!(
        out.stats.request_packets > out.stats.queries,
        "expected some multi-packet requests: {} packets for {} queries",
        out.stats.request_packets,
        out.stats.queries
    );
}

#[test]
fn batched_late_filters_client_side() {
    let mut late = session(3, 5, 0.6, Strategy::LateEval);
    let l = late.multi_level_expand_batched(1).unwrap();
    let mut early = session(3, 5, 0.6, Strategy::EarlyEval);
    let e = early.multi_level_expand_batched(1).unwrap();
    assert_eq!(
        l.tree.node_ids().collect::<Vec<_>>(),
        e.tree.node_ids().collect::<Vec<_>>()
    );
    assert!(l.stats.response_payload_bytes > e.stats.response_payload_bytes);
}

#[test]
fn session_trace_records_batched_exchanges() {
    let mut s = session(3, 3, 1.0, Strategy::EarlyEval);
    s.enable_trace();
    let out = s.multi_level_expand_batched(1).unwrap();
    let trace = s.trace().expect("tracing enabled");
    assert_eq!(trace.len(), out.stats.queries);
    assert!((trace.total_time() - out.stats.response_time()).abs() < 1e-9);
    // navigational batching is still latency-heavy on a WAN
    assert!(trace.latency_share() > 0.2);
}
