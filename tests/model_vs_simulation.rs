#![allow(clippy::unwrap_used)]

//! Cross-validation: the closed-form response-time model (pdm-model, i.e.
//! the paper's equations) against the *measured* behaviour of real SQL
//! traffic through the engine and the WAN simulator (pdm-core + pdm-net).
//!
//! Exact agreement is asserted for the quantities the paper's argument
//! rests on — query counts, communication counts, latency time — and tight
//! tolerances for data volume (the simulation ships real rows whose sizes
//! deviate from the 512-byte average only through per-layout overhead
//! differences).

use pdm_core::rules::condition::{CmpOp, Condition, RowPredicate};
use pdm_core::rules::{ActionKind, Rule};
use pdm_core::{RuleTable, Session, SessionConfig, Strategy};
use pdm_model::response::response;
use pdm_model::{Action, KaryTree, Strategy as ModelStrategy};
use pdm_net::LinkProfile;
use pdm_workload::{build_database, TreeSpec};

const NODE: usize = 512;

/// Visibility rules matching the generator's γ marking.
fn visibility_rules() -> RuleTable {
    let mut t = RuleTable::new();
    for table in ["link", "assy", "comp"] {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    t
}

fn session(depth: u32, branching: u32, gamma: f64, strategy: Strategy) -> Session {
    let spec = TreeSpec::new(depth, branching, gamma).with_node_size(NODE);
    let (db, _) = build_database(&spec).unwrap();
    Session::new(
        db,
        SessionConfig::new("scott", strategy, LinkProfile::wan_256()),
        visibility_rules(),
    )
}

fn rel_close(measured: f64, predicted: f64, tol: f64, what: &str) {
    let rel = (measured - predicted).abs() / predicted.abs().max(1e-9);
    assert!(
        rel < tol,
        "{what}: measured {measured} vs predicted {predicted} (rel err {rel:.3})"
    );
}

/// β=5, γ=0.6 → γβ=3 exactly: deterministic visibility realizes the model's
/// expected counts, so the comparison is exact on counts.
const D: u32 = 4;
const B: u32 = 5;
const G: f64 = 0.6;

fn model_tree() -> KaryTree {
    KaryTree::new(D, B, G)
}

#[test]
fn navigational_late_mle_matches_model() {
    let mut s = session(D, B, G, Strategy::LateEval);
    let out = s.multi_level_expand(1).unwrap();
    let m = response(
        &model_tree(),
        Action::MultiLevelExpand,
        ModelStrategy::LateEval,
        &LinkProfile::wan_256(),
        NODE,
        0,
    );

    // Exact: queries, communications, latency.
    assert_eq!(out.stats.queries as f64, m.queries);
    assert_eq!(out.stats.communications as f64, m.communications);
    rel_close(out.stats.latency_time, m.latency_time, 1e-9, "latency");

    // Exact: transmitted nodes (every row is padded to 512 B).
    let measured_nodes = out.stats.response_payload_bytes as f64 / NODE as f64;
    rel_close(measured_nodes, m.transmitted_nodes, 1e-9, "n_t");

    // Volume and time within 1% (request texts are smaller than the model's
    // full first packet only via the half-packet correction convention).
    rel_close(out.stats.volume_bytes, m.volume_bytes, 0.01, "vol");
    rel_close(out.stats.response_time(), m.total(), 0.01, "T");
}

#[test]
fn navigational_early_mle_matches_model() {
    let mut s = session(D, B, G, Strategy::EarlyEval);
    let out = s.multi_level_expand(1).unwrap();
    let m = response(
        &model_tree(),
        Action::MultiLevelExpand,
        ModelStrategy::EarlyEval,
        &LinkProfile::wan_256(),
        NODE,
        0,
    );
    assert_eq!(out.stats.queries as f64, m.queries);
    let measured_nodes = out.stats.response_payload_bytes as f64 / NODE as f64;
    rel_close(measured_nodes, m.transmitted_nodes, 1e-9, "n_t early");
    rel_close(out.stats.response_time(), m.total(), 0.01, "T early");
}

#[test]
fn recursive_mle_matches_model() {
    let mut s = session(D, B, G, Strategy::Recursive);
    let out = s.multi_level_expand(1).unwrap();
    let m = response(
        &model_tree(),
        Action::MultiLevelExpand,
        ModelStrategy::Recursive,
        &LinkProfile::wan_256(),
        NODE,
        0,
    );
    assert_eq!(out.stats.queries, 1);
    assert_eq!(out.stats.communications as f64, m.communications);
    rel_close(out.stats.latency_time, m.latency_time, 1e-9, "latency rec");
    let measured_nodes = out.stats.response_payload_bytes as f64 / NODE as f64;
    rel_close(measured_nodes, m.transmitted_nodes, 1e-9, "n_t rec");
    rel_close(out.stats.response_time(), m.total(), 0.01, "T rec");
}

#[test]
fn query_action_matches_model_within_tolerance() {
    // Query rows use the bare projection (NULL link columns), so they are
    // ~7% lighter than the 512-byte average; counts stay exact.
    for (strategy, model_strategy) in [
        (Strategy::LateEval, ModelStrategy::LateEval),
        (Strategy::EarlyEval, ModelStrategy::EarlyEval),
    ] {
        let mut s = session(D, B, G, strategy);
        let out = s.query_all(1).unwrap();
        let m = response(
            &model_tree(),
            Action::Query,
            model_strategy,
            &LinkProfile::wan_256(),
            NODE,
            0,
        );
        assert_eq!(out.stats.queries as f64, m.queries, "{strategy:?} q");
        rel_close(
            out.stats.response_payload_bytes as f64 / NODE as f64,
            m.transmitted_nodes,
            0.08,
            "query n_t",
        );
        rel_close(out.stats.response_time(), m.total(), 0.08, "query T");
    }
}

#[test]
fn single_level_expand_matches_model() {
    for (strategy, model_strategy) in [
        (Strategy::LateEval, ModelStrategy::LateEval),
        (Strategy::EarlyEval, ModelStrategy::EarlyEval),
    ] {
        let mut s = session(D, B, G, strategy);
        let out = s.single_level_expand(1).unwrap();
        let m = response(
            &model_tree(),
            Action::Expand,
            model_strategy,
            &LinkProfile::wan_256(),
            NODE,
            0,
        );
        assert_eq!(out.stats.queries as f64, m.queries);
        rel_close(
            out.stats.response_payload_bytes as f64 / NODE as f64,
            m.transmitted_nodes,
            1e-9,
            "expand n_t",
        );
        rel_close(out.stats.response_time(), m.total(), 0.01, "expand T");
    }
}

#[test]
fn savings_shape_holds_in_simulation() {
    // The paper's qualitative claims, measured end-to-end:
    // early-eval MLE saves only a few percent; recursive MLE saves > 95%.
    let mut late = session(5, B, G, Strategy::LateEval);
    let mut early = session(5, B, G, Strategy::EarlyEval);
    let mut rec = session(5, B, G, Strategy::Recursive);

    let t_late = late.multi_level_expand(1).unwrap().stats.response_time();
    let t_early = early.multi_level_expand(1).unwrap().stats.response_time();
    let t_rec = rec.multi_level_expand(1).unwrap().stats.response_time();

    let early_saving = 100.0 * (t_late - t_early) / t_late;
    let rec_saving = 100.0 * (t_late - t_rec) / t_late;
    assert!(
        (0.5..15.0).contains(&early_saving),
        "early-eval MLE saving should be marginal, got {early_saving:.2}%"
    );
    assert!(
        rec_saving > 90.0,
        "recursive MLE saving should dominate, got {rec_saving:.2}%"
    );

    // And for the Query action early evaluation is the big win (>90%).
    let mut late = session(5, B, G, Strategy::LateEval);
    let mut early = session(5, B, G, Strategy::EarlyEval);
    let q_late = late.query_all(1).unwrap().stats.response_time();
    let q_early = early.query_all(1).unwrap().stats.response_time();
    let q_saving = 100.0 * (q_late - q_early) / q_late;
    assert!(q_saving > 85.0, "query saving {q_saving:.2}%");
}

#[test]
fn random_visibility_tracks_model_in_expectation() {
    use pdm_workload::VisibilityMode;
    // With random γ the measured counts should track expectations loosely.
    let spec = TreeSpec::new(5, 4, 0.6)
        .with_node_size(NODE)
        .with_visibility(VisibilityMode::Random { seed: 2065 });
    let (db, data) = build_database(&spec).unwrap();
    let mut s = Session::new(
        db,
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_256()),
        visibility_rules(),
    );
    let out = s.multi_level_expand(1).unwrap();
    // Simulation returns exactly the realized visible set.
    assert_eq!(out.tree.len() as u64, 1 + data.visible_nodes());
    // Which is within sampling noise of the model's expectation.
    let expected: f64 = KaryTree::new(5, 4, 0.6).visible_nodes();
    let got = data.visible_nodes() as f64;
    assert!(
        (got - expected).abs() / expected < 0.5,
        "sampled {got} vs expected {expected}"
    );
}
