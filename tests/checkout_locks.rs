#![allow(clippy::unwrap_used)]

//! Check-out lock-table edge cases (§6 semantics under real concurrency).
//!
//! * a re-entrant idempotency token under contention executes AT MOST once
//!   and every caller observes the one recorded outcome;
//! * check-in releases the lock entries, making the tree re-checkoutable;
//! * a lock wait that exceeds the session's `RetryPolicy` deadline
//!   surfaces as `SessionError::Timeout`, not a hang;
//! * a conflict with a COMPLETED check-out refuses immediately (∀rows
//!   semantics) instead of waiting.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use pdm_core::query::recursive;
use pdm_core::{PdmServer, RetryPolicy, RuleTable, Session, SessionConfig, SessionError, Strategy};
use pdm_net::LinkProfile;
use pdm_workload::{build_database, TreeSpec};

fn fresh_server() -> PdmServer {
    let spec = TreeSpec::new(2, 3, 1.0).with_node_size(128);
    let (db, _) = build_database(&spec).unwrap();
    PdmServer::new(db)
}

fn session_on(server: &PdmServer, user: &str) -> Session {
    Session::attach(
        server.clone(),
        SessionConfig::new(user, Strategy::Recursive, LinkProfile::wan_256()),
        RuleTable::new(),
    )
}

/// Number of flagged objects across both object tables.
fn flagged(server: &PdmServer) -> usize {
    ["assy", "comp"]
        .iter()
        .map(|t| {
            server
                .query(&format!("SELECT obid FROM {t} WHERE checkedout = TRUE"))
                .unwrap()
                .len()
        })
        .sum()
}

/// Four threads race the SAME idempotency token (a client retry racing its
/// own original request). The procedure must execute at most once: every
/// caller gets the identical recorded outcome and the flags flip exactly
/// once.
#[test]
fn reentrant_token_executes_at_most_once() {
    let server = fresh_server();
    let sql = recursive::mle_query(1).to_string();
    let token = server.shared().next_token();
    let barrier = Arc::new(Barrier::new(4));

    let mut handles = Vec::new();
    for _ in 0..4 {
        let server = server.clone();
        let sql = sql.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            server
                .checkout_procedure_with_deadline(1, &sql, token, None)
                .unwrap()
        }));
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // One recorded outcome, observed by everyone.
    for r in &results[1..] {
        assert_eq!(
            r.rows, results[0].rows,
            "same token must yield one recorded outcome"
        );
    }
    let rows = results[0].rows.as_ref().expect("uncontended tree: success");
    // Flags flipped exactly once: subtree (rows) plus the root itself.
    assert_eq!(flagged(&server), rows.len() + 1);
    assert!(server.checkout_recorded(token));
    assert_eq!(server.shared().lock_table().holder(1), Some(token));
}

/// A sequential replay of a recorded token (the lost-confirmation retry)
/// returns the recorded outcome without re-executing or re-flipping.
#[test]
fn recorded_token_replays_without_reexecution() {
    let server = fresh_server();
    let sql = recursive::mle_query(1).to_string();
    let token = server.shared().next_token();

    let first = server
        .checkout_procedure_with_deadline(1, &sql, token, None)
        .unwrap();
    assert!(first.rows.is_some());
    let flags_after_first = flagged(&server);
    let version_after_first = server.shared().version();

    let replay = server
        .checkout_procedure_with_deadline(1, &sql, token, None)
        .unwrap();
    assert_eq!(replay.rows, first.rows);
    assert_eq!(flagged(&server), flags_after_first, "no second flag flip");
    assert_eq!(
        server.shared().version(),
        version_after_first,
        "replay must not write"
    );
}

/// Check-in clears the flags AND the lock entries: the same subtree can be
/// checked out again afterwards (by someone else).
#[test]
fn checkin_releases_lock_entries() {
    let server = fresh_server();
    let mut alice = session_on(&server, "alice");
    let mut bob = session_on(&server, "bob");

    let out = alice.check_out_function_shipping(1).unwrap();
    let tree = out.tree.expect("first check-out succeeds");
    assert!(!server.shared().lock_table().is_empty());

    // While held: bob is refused.
    assert!(bob.check_out_function_shipping(1).unwrap().tree.is_none());

    alice.check_in(&tree).unwrap();
    assert!(
        server.shared().lock_table().is_empty(),
        "check-in must release every lock entry"
    );
    assert_eq!(flagged(&server), 0);

    // Released: bob now wins.
    assert!(bob.check_out_function_shipping(1).unwrap().tree.is_some());
}

/// An in-flight conflict that outlives the session's RetryPolicy deadline
/// surfaces as `SessionError::Timeout` (with the wait accounted), and the
/// check-out succeeds once the stalled procedure aborts.
#[test]
fn lock_wait_past_deadline_is_session_timeout() {
    let server = fresh_server();
    let stalled_token = 0xDEAD;
    // Simulate a check-out stalled mid-procedure on another thread: the
    // root id sits in-flight, so competitors WAIT rather than refuse.
    server
        .shared()
        .lock_table()
        .acquire_in_flight(&[1], stalled_token, None)
        .unwrap();

    let mut s = session_on(&server, "scott");
    s.set_retry_policy(RetryPolicy::none().with_deadline(0.05));
    let err = s.check_out_function_shipping(1).unwrap_err();
    match err {
        SessionError::Timeout {
            elapsed, context, ..
        } => {
            assert!(elapsed >= 0.05, "the lock wait must be accounted");
            // The context distinguishes WHERE the deadline expired: in the
            // server-side lock wait, not in a network stall.
            assert_eq!(context.expired_in, "locks.wait");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert_eq!(flagged(&server), 0, "a timed-out check-out changes nothing");

    // The stalled procedure aborts — the very same session succeeds now.
    server.shared().lock_table().abort(&[1], stalled_token);
    assert!(s.check_out_function_shipping(1).unwrap().tree.is_some());
}

/// Conflicts with a COMPLETED check-out refuse immediately — they must not
/// burn the waiter's deadline (refusal is resolved by check-in, not time).
#[test]
fn held_conflict_refuses_without_waiting() {
    let server = fresh_server();
    let mut alice = session_on(&server, "alice");
    alice.check_out_function_shipping(1).unwrap().tree.unwrap();

    let mut bob = session_on(&server, "bob");
    bob.set_retry_policy(RetryPolicy::none().with_deadline(30.0));
    let started = std::time::Instant::now();
    let out = bob.check_out_function_shipping(1).unwrap();
    assert!(out.tree.is_none(), "held conflict must refuse");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "refusal must not wait out the deadline"
    );
}
