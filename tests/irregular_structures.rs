#![allow(clippy::unwrap_used)]

//! Irregular product structures end-to-end: real bills of material are not
//! complete β-ary trees, so this suite checks that (a) the three strategies
//! still agree on arbitrary-shaped structures and (b) the profile-based
//! cost model predicts the measured traffic *exactly* from the realized
//! counts — the model generalizes beyond the paper's complete-tree algebra.

use pdm_bench::{realized_profile, to_model_strategy, visibility_rules, SimAction};
use pdm_core::{Session, SessionConfig, Strategy};
use pdm_model::response::response_from_profile;
use pdm_net::LinkProfile;
use pdm_workload::{build_irregular_database, IrregularSpec};

fn session(spec: &IrregularSpec, strategy: Strategy) -> (Session, pdm_workload::ProductData) {
    let (db, data) = build_irregular_database(spec).unwrap();
    (
        Session::new(
            db,
            SessionConfig::new("scott", strategy, LinkProfile::wan_256()),
            visibility_rules(),
        ),
        data,
    )
}

#[test]
fn strategies_agree_on_irregular_structures() {
    for seed in [1u64, 7, 42, 99] {
        let spec = IrregularSpec::new(4, (1, 5), 0.7, seed).with_node_size(256);
        let mut ids = Vec::new();
        for strategy in Strategy::ALL {
            let (mut s, _) = session(&spec, strategy);
            let out = s.multi_level_expand(1).unwrap();
            ids.push(out.tree.node_ids().collect::<Vec<_>>());
        }
        assert_eq!(ids[0], ids[1], "late vs early (seed {seed})");
        assert_eq!(ids[0], ids[2], "late vs recursive (seed {seed})");
    }
}

#[test]
fn profile_model_predicts_irregular_mle_exactly() {
    for seed in [3u64, 17, 2024] {
        let spec = IrregularSpec::new(5, (2, 4), 0.6, seed).with_node_size(512);
        for (strategy, model_strategy) in [
            (Strategy::LateEval, pdm_model::Strategy::LateEval),
            (Strategy::EarlyEval, pdm_model::Strategy::EarlyEval),
            (Strategy::Recursive, pdm_model::Strategy::Recursive),
        ] {
            let (mut s, data) = session(&spec, strategy);
            let out = s.multi_level_expand(1).unwrap();
            let profile = realized_profile(&data);
            let predicted = response_from_profile(
                &profile,
                pdm_model::Action::MultiLevelExpand,
                model_strategy,
                &LinkProfile::wan_256(),
                512,
                0,
            );
            assert_eq!(
                out.stats.queries as f64, predicted.queries,
                "queries, seed {seed}, {strategy:?}"
            );
            let measured_nodes = out.stats.response_payload_bytes as f64 / 512.0;
            assert!(
                (measured_nodes - predicted.transmitted_nodes).abs() < 1e-9,
                "n_t seed {seed} {strategy:?}: measured {measured_nodes} vs {}",
                predicted.transmitted_nodes
            );
            let t = out.stats.response_time();
            assert!(
                (t - predicted.total()).abs() / predicted.total() < 0.01,
                "T seed {seed} {strategy:?}: {t} vs {}",
                predicted.total()
            );
        }
    }
}

#[test]
fn recursion_handles_varying_depth_branches() {
    // Heavy early bottom-out: many single-component branches next to deep
    // ones — the recursive query must still return exactly the visible set.
    let spec = IrregularSpec::new(6, (1, 6), 0.8, 5)
        .with_leaf_probability(0.5)
        .with_node_size(128);
    let (mut s, data) = session(&spec, Strategy::Recursive);
    let out = s.multi_level_expand(1).unwrap();
    assert_eq!(out.tree.len() as u64, 1 + data.visible_nodes());
    assert_eq!(out.stats.queries, 1);
    // tree reassembly is complete: every transferred node reachable
    assert_eq!(out.tree.reachable_from_root(), out.tree.len());
}

#[test]
fn expand_action_ships_realized_root_children() {
    let spec = IrregularSpec::new(3, (2, 6), 1.0, 77).with_node_size(512);
    let (mut s, data) = session(&spec, Strategy::LateEval);
    let out = s.single_level_expand(1).unwrap();
    let shipped = out.stats.response_payload_bytes as f64 / 512.0;
    assert_eq!(shipped as u64, data.root_children);
}

#[test]
fn exists_structure_rule_on_irregular_tree() {
    use pdm_core::rules::condition::Condition;
    use pdm_core::rules::{ActionKind, Rule};
    let spec = IrregularSpec::new(4, (2, 3), 1.0, 13).with_node_size(128);
    let mut spec = spec;
    spec.specified_fraction = 0.5;
    let (db, data) = build_irregular_database(&spec).unwrap();
    let mut rules = visibility_rules();
    rules.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "comp",
        Condition::ExistsStructure {
            object_table: "comp".into(),
            relation_table: "specified_by".into(),
            related_table: "spec".into(),
        },
    ));
    let mut s = Session::new(
        db,
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_512()),
        rules,
    );
    let out = s.multi_level_expand(1).unwrap();
    let specified: std::collections::HashSet<i64> =
        data.specified_by.iter().map(|(c, _)| *c).collect();
    for n in out.tree.nodes().filter(|n| n.is_component()) {
        assert!(specified.contains(&n.obid));
    }
}

#[test]
fn sim_action_harness_covers_irregular() {
    // Smoke the shared bench harness mapping on an irregular session too.
    let spec = IrregularSpec::new(3, (2, 3), 0.9, 21).with_node_size(128);
    let (mut s, _) = session(&spec, Strategy::EarlyEval);
    for action in SimAction::ALL {
        let stats = pdm_bench::run_action(&mut s, action);
        assert!(stats.queries >= 1);
        let _ = to_model_strategy(Strategy::EarlyEval);
    }
}
