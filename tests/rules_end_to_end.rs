#![allow(clippy::unwrap_used)]

//! End-to-end rule semantics across the full stack: rule table → condition
//! translation → query modification → recursive SQL → engine → reassembled
//! tree. Exercises all four condition classes of Figure 1 on generated
//! product structures.

use pdm_core::rules::condition::{AggFunc, CmpOp, Condition, RowPredicate};
use pdm_core::rules::{ActionKind, Rule, UserPattern};
use pdm_core::{RuleTable, Session, SessionConfig, Strategy};
use pdm_net::LinkProfile;
use pdm_workload::{build_database, TreeSpec};

fn base_rules() -> RuleTable {
    let mut t = RuleTable::new();
    for table in ["link", "assy", "comp"] {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    t
}

fn session_with(spec: &TreeSpec, rules: RuleTable, strategy: Strategy) -> Session {
    let (db, _) = build_database(spec).unwrap();
    Session::new(
        db,
        SessionConfig::new("scott", strategy, LinkProfile::wan_512()),
        rules,
    )
}

#[test]
fn forall_rows_all_or_nothing() {
    // Rule: every assembly in the retrieved tree must be decomposable.
    let mut rules = base_rules();
    rules.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "assy",
        Condition::ForAllRows {
            object_type: Some("assy".into()),
            predicate: RowPredicate::compare("dec", CmpOp::Eq, "+"),
        },
    ));

    // All assemblies decomposable → full tree comes back.
    let spec = TreeSpec::new(3, 3, 1.0).with_node_size(256);
    let mut s = session_with(&spec, rules.clone(), Strategy::Recursive);
    let out = s.multi_level_expand(1).unwrap();
    assert_eq!(out.tree.len(), 1 + 3 + 9 + 27);

    // One non-decomposable assembly → EMPTY result (all-or-nothing, §5.3.1).
    let spec = TreeSpec::new(3, 3, 1.0)
        .with_node_size(256)
        .with_decomposable_fraction(0.5);
    let mut s = session_with(&spec, rules, Strategy::Recursive);
    let out = s.multi_level_expand(1).unwrap();
    assert_eq!(out.tree.len(), 1, "only the locally-cached root remains");
}

#[test]
fn exists_structure_filters_unspecified_components() {
    // Rule: components are visible only if they have a specification.
    let mut rules = base_rules();
    rules.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "comp",
        Condition::ExistsStructure {
            object_table: "comp".into(),
            relation_table: "specified_by".into(),
            related_table: "spec".into(),
        },
    ));

    let spec = TreeSpec::new(2, 4, 1.0)
        .with_node_size(256)
        .with_specified_fraction(0.5)
        .with_attribute_seed(7);
    let (db, data) = build_database(&spec).unwrap();
    let mut s = Session::new(
        db,
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_512()),
        rules,
    );
    let out = s.multi_level_expand(1).unwrap();

    let specified: std::collections::HashSet<i64> =
        data.specified_by.iter().map(|(c, _)| *c).collect();
    let comps_in_tree: Vec<i64> = out
        .tree
        .nodes()
        .filter(|n| n.is_component())
        .map(|n| n.obid)
        .collect();
    assert!(!comps_in_tree.is_empty());
    assert!(comps_in_tree.iter().all(|c| specified.contains(c)));
    // assemblies unaffected
    assert_eq!(out.tree.count_of_type("assy"), 1 + 4);
    // and some components were indeed filtered out
    assert!(comps_in_tree.len() < 16);
}

#[test]
fn tree_aggregate_bounds_assembly_count() {
    let mut permissive = base_rules();
    permissive.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "assy",
        Condition::TreeAggregate {
            func: AggFunc::Count,
            attr: None,
            object_type: Some("assy".into()),
            op: CmpOp::LtEq,
            value: 1000.0,
        },
    ));
    let spec = TreeSpec::new(3, 3, 1.0).with_node_size(256);
    let mut s = session_with(&spec, permissive, Strategy::Recursive);
    assert_eq!(s.multi_level_expand(1).unwrap().tree.len(), 40);

    // Tight bound: the tree has 13 assemblies, a ≤10 rule empties it.
    let mut strict = base_rules();
    strict.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "assy",
        Condition::TreeAggregate {
            func: AggFunc::Count,
            attr: None,
            object_type: Some("assy".into()),
            op: CmpOp::LtEq,
            value: 10.0,
        },
    ));
    let mut s = session_with(&spec, strict, Strategy::Recursive);
    assert_eq!(s.multi_level_expand(1).unwrap().tree.len(), 1);
}

#[test]
fn row_condition_user_specific() {
    // The paper's example 1: Scott may only expand assemblies not bought
    // from a supplier. Tiger has no such restriction. Note the rule-table
    // semantics (§5.5 step 13): qualifying conditions for the same type are
    // OR-ed, so the restriction must be the *only* assy rule — an
    // always-true visibility rule on assy would permit everything.
    let mut rules = RuleTable::new();
    rules.add(Rule::for_all_users(
        ActionKind::Access,
        "link",
        Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
    ));
    rules.add(Rule::new(
        UserPattern::Named("scott".into()),
        ActionKind::Access,
        "assy",
        Condition::Row(RowPredicate::compare("make_or_buy", CmpOp::NotEq, "buy")),
    ));

    let spec = TreeSpec::new(3, 3, 1.0)
        .with_node_size(256)
        .with_make_fraction(0.6)
        .with_attribute_seed(11);
    let (db, data) = build_database(&spec).unwrap();

    let mut scott = Session::new(
        db,
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_512()),
        rules.clone(),
    );
    let scott_tree = scott.multi_level_expand(1).unwrap().tree;

    let (db, _) = build_database(&spec).unwrap();
    let mut tiger = Session::new(
        db,
        SessionConfig::new("tiger", Strategy::Recursive, LinkProfile::wan_512()),
        rules,
    );
    let tiger_tree = tiger.multi_level_expand(1).unwrap().tree;

    // Tiger sees everything; Scott's tree prunes bought assemblies (and
    // transitively their subtrees).
    assert_eq!(tiger_tree.len(), 40);
    assert!(scott_tree.len() < tiger_tree.len());
    let bought: std::collections::HashSet<i64> = data
        .nodes
        .iter()
        .filter(|n| n.kind == pdm_workload::NodeKind::Assembly && !n.make && n.level > 0)
        .map(|n| n.obid)
        .collect();
    assert!(scott_tree.nodes().all(|n| !bought.contains(&n.obid)));
}

#[test]
fn effectivity_rule_with_stored_function() {
    // §3.1 example 3 as a stored-function row condition on the relation:
    // links must be effective for the user-selected unit range [4, 6].
    use pdm_core::rules::condition::FnArg;
    // One conjunctive traversal rule on the relation: the link must carry
    // the user's structure option AND be effective for units [4, 6]
    // (separate rules would be OR-ed per §5.5 and permit too much).
    let mut rules = RuleTable::new();
    rules.add(Rule::for_all_users(
        ActionKind::Access,
        "link",
        Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA").and(
            RowPredicate::StoredFn {
                name: "overlaps_interval".into(),
                args: vec![
                    FnArg::Attr("eff_from".into()),
                    FnArg::Attr("eff_to".into()),
                    FnArg::Const(pdm_sql::Value::Int(4)),
                    FnArg::Const(pdm_sql::Value::Int(6)),
                ],
            },
        )),
    ));

    let spec = TreeSpec::new(2, 4, 1.0)
        .with_node_size(256)
        .with_expired_effectivity_fraction(0.5)
        .with_attribute_seed(3);
    let (db, data) = build_database(&spec).unwrap();
    let expired_targets: std::collections::HashSet<i64> = data
        .links
        .iter()
        .filter(|l| l.eff_to < 4)
        .map(|l| l.right)
        .collect();
    assert!(!expired_targets.is_empty());

    // Early evaluation: the stored function runs at the server.
    let mut s = Session::new(
        db,
        SessionConfig::new("scott", Strategy::EarlyEval, LinkProfile::wan_512()),
        rules.clone(),
    );
    let tree = s.multi_level_expand(1).unwrap().tree;
    assert!(tree.nodes().all(|n| !expired_targets.contains(&n.obid)));

    // Late evaluation: the same function runs at the client — same tree.
    let (db, _) = build_database(&spec).unwrap();
    let mut s_late = Session::new(
        db,
        SessionConfig::new("scott", Strategy::LateEval, LinkProfile::wan_512()),
        rules,
    );
    let tree_late = s_late.multi_level_expand(1).unwrap().tree;
    assert_eq!(
        tree.node_ids().collect::<Vec<_>>(),
        tree_late.node_ids().collect::<Vec<_>>()
    );
}

#[test]
fn view_hides_structure_from_modificator() {
    // §5.5 caveat: once the server wraps `assy` access in a view and the
    // client builds queries against it, modification must fail loudly.
    let rules = base_rules();
    let spec = TreeSpec::new(2, 2, 1.0).with_node_size(128);
    let (db, _) = build_database(&spec).unwrap();
    let mut s = Session::new(
        db,
        SessionConfig::new("scott", Strategy::Recursive, LinkProfile::wan_512()),
        rules.clone(),
    );
    // Rename the real table away and install a view in its place, then
    // re-open the session so it learns the server's view set.
    s.server_mut()
        .execute("CREATE VIEW assy_view AS SELECT * FROM assy")
        .unwrap();
    let views = s.server().view_names();
    assert!(views.contains("assy_view"));

    use pdm_core::query::modificator::{ModError, Modificator};
    use pdm_sql::parser::parse_query;
    let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
    let mut q = parse_query(
        "WITH RECURSIVE rtbl (obid) AS (SELECT obid FROM assy_view WHERE obid = 1 \
         UNION SELECT link.right FROM rtbl JOIN link ON rtbl.obid = link.left) \
         SELECT obid FROM rtbl",
    )
    .unwrap();
    assert_eq!(
        m.modify_recursive(&mut q).unwrap_err(),
        ModError::HiddenInView("assy_view".into())
    );
}

#[test]
fn late_and_early_agree_under_every_rule_mix() {
    // Attribute-rule soup: visibility + decomposability row rules; late and
    // early must agree exactly on the returned tree.
    let mut rules = base_rules();
    rules.add(Rule::for_all_users(
        ActionKind::Access,
        "assy",
        Condition::Row(RowPredicate::compare("dec", CmpOp::Eq, "+")),
    ));
    let spec = TreeSpec::new(4, 3, 0.7)
        .with_node_size(256)
        .with_decomposable_fraction(0.8)
        .with_visibility(pdm_workload::VisibilityMode::Random { seed: 99 })
        .with_attribute_seed(5);

    let mut late = session_with(&spec, rules.clone(), Strategy::LateEval);
    let mut early = session_with(&spec, rules.clone(), Strategy::EarlyEval);
    let mut rec = session_with(&spec, rules, Strategy::Recursive);

    let l = late.multi_level_expand(1).unwrap();
    let e = early.multi_level_expand(1).unwrap();
    let r = rec.multi_level_expand(1).unwrap();
    let ids = |o: &pdm_core::ExpandOutcome| o.tree.node_ids().collect::<Vec<_>>();
    assert_eq!(ids(&l), ids(&e));
    assert_eq!(ids(&l), ids(&r));
}
