#![allow(clippy::unwrap_used)]

//! End-to-end observability (`pdm-obs`) over the full stack.
//!
//! * a profiled function-shipping check-out on a durable server yields one
//!   span tree covering ALL instrumented subsystems — session, compile,
//!   engine, cache, locks, WAL, network;
//! * span nesting is well-formed: children live inside their parents, no
//!   orphans, nothing left open;
//! * the profile's network attributes reconcile **bit-for-bit** with the
//!   channel's `TrafficStats` (same additions in the same order), and the
//!   summed leaf virtual times reconcile with the action total;
//! * profiling off is byte-identical: same rows, same traffic;
//! * the metrics registry carries the Table-1 quantities, the cache and
//!   lock counters, and the WAL fsync histogram in one snapshot;
//! * meta: every span kind a subsystem emits is declared in `kinds::ALL`.

use std::sync::Arc;

use pdm_core::{
    DurabilityConfig, PdmServer, RuleTable, Session, SessionConfig, SharedServer, Strategy,
    Subsystem,
};
use pdm_net::LinkProfile;
use pdm_obs::{kinds, SpanRecord};
use pdm_workload::{build_database, TreeSpec};

fn spec() -> TreeSpec {
    TreeSpec::new(3, 3, 1.0).with_node_size(128)
}

fn plain_server() -> PdmServer {
    PdmServer::new(build_database(&spec()).unwrap().0)
}

/// WAL-backed server (checkpoints effectively off) so check-out exercises
/// the durability path and its WAL spans.
fn durable_server() -> PdmServer {
    let cfg = DurabilityConfig::default().with_interval(1 << 40);
    let shared = SharedServer::with_durability(build_database(&spec()).unwrap().0, &cfg).unwrap();
    PdmServer::from_shared(Arc::new(shared))
}

fn session_on(server: &PdmServer, strategy: Strategy) -> Session {
    Session::attach(
        server.clone(),
        SessionConfig::new("scott", strategy, LinkProfile::wan_256()),
        RuleTable::new(),
    )
}

/// Structural invariants every recorded span tree must satisfy.
fn assert_well_formed(spans: &[SpanRecord]) {
    assert!(!spans.is_empty());
    for (i, s) in spans.iter().enumerate() {
        assert!(!s.open, "span {i} ({}) left open", s.kind.full_name());
        assert!(s.v_start <= s.v_end, "span {i}: negative virtual width");
        match s.parent {
            None => assert_eq!(i, 0, "orphan span {i} ({})", s.kind.full_name()),
            Some(p) => {
                assert!(p < i, "span {i} recorded before its parent {p}");
                let parent = &spans[p];
                assert!(
                    parent.v_start <= s.v_start && s.v_end <= parent.v_end,
                    "span {i} ({}) [{}, {}] escapes parent {p} ({}) [{}, {}]",
                    s.kind.full_name(),
                    s.v_start,
                    s.v_end,
                    parent.kind.full_name(),
                    parent.v_start,
                    parent.v_end
                );
            }
        }
    }
}

/// The acceptance scenario: ONE profiled function-shipping check-out on a
/// durable server produces a span tree that covers every instrumented
/// subsystem and reconciles exactly with the channel's metering.
#[test]
fn profiled_checkout_covers_all_subsystems_and_reconciles() {
    let server = durable_server();
    let mut s = session_on(&server, Strategy::Recursive);
    s.enable_profiling();

    let out = s.check_out_function_shipping(1).unwrap();
    assert!(out.tree.is_some(), "uncontended check-out succeeds");

    let profile = s.last_profile().expect("profiling on: profile available");
    assert_well_formed(&profile.spans);

    // One action, one root.
    let root = profile.root().unwrap();
    assert_eq!(root.kind, kinds::ACTION);
    assert_eq!(root.label, "check_out_function_shipping");

    // The tree spans ALL seven instrumented subsystems.
    let subsystems = profile.subsystems();
    for sub in [
        Subsystem::Session,
        Subsystem::Compile,
        Subsystem::Engine,
        Subsystem::Cache,
        Subsystem::Locks,
        Subsystem::Wal,
        Subsystem::Network,
    ] {
        assert!(subsystems.contains(&sub), "missing subsystem {sub:?}");
    }

    // Only declared kinds are ever emitted.
    for s in &profile.spans {
        assert!(
            kinds::ALL.contains(&s.kind),
            "undeclared span kind {}",
            s.kind.full_name()
        );
    }

    // The latency/transfer split matches TrafficStats BIT-FOR-BIT: the
    // profile sums the per-exchange attributes in record order, the same
    // order the channel accumulated them.
    let latency = profile.sum_attr(Subsystem::Network, "latency_s");
    let transfer = profile.sum_attr(Subsystem::Network, "transfer_s");
    let volume = profile.sum_attr(Subsystem::Network, "volume_bytes");
    assert_eq!(latency.to_bits(), out.stats.latency_time.to_bits());
    assert_eq!(transfer.to_bits(), out.stats.transfer_time.to_bits());
    assert_eq!(volume.to_bits(), out.stats.volume_bytes.to_bits());

    // Leaf virtual times reconcile with the action total: only the network
    // advances the virtual clock, and network spans are leaves.
    let total = profile.virtual_total();
    assert!(total > 0.0, "a WAN check-out takes virtual time");
    assert!(
        (profile.leaf_virtual_sum() - total).abs() <= 1e-9 * total.max(1.0),
        "leaf sum {} vs total {total}",
        profile.leaf_virtual_sum()
    );

    // The rendered report mentions the load-bearing operators.
    let report = profile.render();
    for needle in ["locks.wait", "wal.append", "cache.probe", "net.exchange"] {
        assert!(report.contains(needle), "render missing {needle}");
    }
}

/// The metrics registry unifies Table-1 traffic, cache, lock, WAL and
/// engine counters in ONE snapshot, with no double counting of the
/// network quantities.
#[test]
fn registry_unifies_traffic_cache_locks_and_wal() {
    let server = durable_server();
    let mut s = session_on(&server, Strategy::Recursive);
    s.enable_profiling();

    let out = s.check_out_function_shipping(1).unwrap();
    assert!(out.tree.is_some());

    let snap = s.metrics().snapshot();
    // Table-1 quantities: folded ONCE per action by the single writer.
    assert_eq!(
        snap.counter("net.queries"),
        out.stats.queries as u64,
        "net.queries must equal the action's q exactly (no double fold)"
    );
    assert_eq!(
        snap.counter("net.communications"),
        out.stats.communications as u64
    );
    assert_eq!(
        snap.gauge("net.volume_bytes").to_bits(),
        out.stats.volume_bytes.to_bits()
    );
    // Cache: the procedure's retrieval query misses the cross-session
    // cache (first execution), and the root fetch adds traffic.
    assert!(snap.counter("cache.misses") >= 1);
    // Locks: the uncontended check-out acquires and promotes its grant.
    assert_eq!(snap.counter("locks.grants"), 1);
    assert_eq!(snap.counter("locks.refusals"), 0);
    // WAL: token + grant + the procedure's commit all append.
    assert!(snap.counter("wal.appends") >= 3);
    let fsync = snap
        .histograms
        .get("wal.fsync_ns")
        .expect("fsync histogram");
    assert_eq!(fsync.count, snap.counter("wal.appends"));
    // Engine work flowed into the registry too.
    assert!(snap.counter("engine.rows_scanned") > 0);

    // And the JSON snapshot carries all three sections.
    let json = snap.to_json(2);
    for key in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "net.queries",
    ] {
        assert!(json.contains(key), "snapshot JSON missing {key}");
    }
}

/// Profiling must not perturb results: the same action with profiling on
/// and off returns byte-identical rows and identical traffic.
#[test]
fn profiling_is_byte_identical_to_plain_run() {
    // Two identical servers so cross-session cache state cannot differ.
    let mut plain = session_on(&plain_server(), Strategy::Recursive);
    let mut profiled = session_on(&plain_server(), Strategy::Recursive);
    profiled.enable_profiling();

    let a = plain.multi_level_expand(1).unwrap();
    let b = profiled.multi_level_expand(1).unwrap();
    let nodes_a: Vec<_> = a.tree.nodes().collect();
    let nodes_b: Vec<_> = b.tree.nodes().collect();
    assert_eq!(nodes_a, nodes_b, "profiling changed expand results");
    assert_eq!(a.stats, b.stats, "profiling changed the traffic");

    let a = plain.query_all(1).unwrap();
    let b = profiled.query_all(1).unwrap();
    assert_eq!(a.nodes, b.nodes, "profiling changed query_all results");
    assert_eq!(a.stats, b.stats);

    // The profiled session actually produced a profile; the plain one not.
    assert!(profiled.last_profile().is_some());
    assert!(plain.last_profile().is_none());
}

/// Late-rule strategies surface the paper's γ through the session span
/// tree and the rows_filtered_late counters; early strategies don't pay it.
#[test]
fn late_filtering_is_visible_in_profile_and_registry() {
    let server = plain_server();
    let mut s = session_on(&server, Strategy::LateEval);
    s.enable_profiling();
    let out = s.multi_level_expand(1).unwrap();
    assert!(!out.tree.is_empty());

    let profile = s.last_profile().unwrap();
    assert!(
        profile.spans.iter().any(|sp| sp.kind == kinds::LATE_FILTER),
        "late strategy must record late_filter spans"
    );
    let snap = s.metrics().snapshot();
    let kept = snap.counter("session.rows_kept");
    assert!(kept > 0, "late filtering kept some rows");

    // Early evaluation records no late-filter spans at all.
    let mut early = session_on(&server, Strategy::EarlyEval);
    early.enable_profiling();
    early.multi_level_expand(1).unwrap();
    let profile = early.last_profile().unwrap();
    assert!(profile.spans.iter().all(|sp| sp.kind != kinds::LATE_FILTER));
}

/// Meta-test: the declared kind registry is consistent — every subsystem
/// is represented, full names are unique, and prefixes match.
#[test]
fn declared_kind_registry_is_consistent() {
    let mut names = std::collections::BTreeSet::new();
    let mut subsystems = std::collections::BTreeSet::new();
    for kind in kinds::ALL {
        assert!(
            names.insert(kind.full_name()),
            "duplicate kind {}",
            kind.full_name()
        );
        assert!(
            kind.full_name()
                .starts_with(&format!("{}.", kind.subsystem.prefix())),
            "kind {} not under its subsystem prefix",
            kind.full_name()
        );
        subsystems.insert(kind.subsystem);
    }
    assert_eq!(
        subsystems.len(),
        10,
        "every instrumented subsystem declares at least one kind"
    );
}
