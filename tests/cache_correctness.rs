#![allow(clippy::unwrap_used)]

//! Cache-correctness differential tests.
//!
//! The cross-session result cache must be INVISIBLE except in the traffic
//! stats: every result served from cache must be byte-identical to a cold
//! re-execution against current storage, and a DML bump must invalidate
//! exactly the affected epoch — entries written before the bump never
//! serve again, entries written after it serve until the next bump.
//!
//! The session-local uncorrelated-subquery cache (§5.3.1) gets the same
//! treatment: it may change statistics, never results.

use std::collections::HashMap;

use pdm_core::query::recursive;
use pdm_core::{PdmServer, SharedServer};
use pdm_prng::Prng;
use pdm_sql::{Database, ExecConfig};
use pdm_workload::{build_database, TreeSpec};

fn fresh_shared() -> PdmServer {
    let spec = TreeSpec::new(3, 2, 1.0).with_node_size(64);
    let (db, _) = build_database(&spec).unwrap();
    PdmServer::new(db)
}

/// A battery covering the query shapes the PDM workload actually issues:
/// scans, filters, aggregates, IN-subqueries, and the recursive MLE query.
fn battery() -> Vec<String> {
    vec![
        "SELECT * FROM assy ORDER BY obid".into(),
        "SELECT obid, name FROM comp WHERE checkedout = FALSE ORDER BY obid".into(),
        "SELECT COUNT(*) FROM link".into(),
        "SELECT obid FROM assy WHERE obid IN (SELECT left FROM link) ORDER BY obid".into(),
        recursive::mle_query(1).to_string(),
    ]
}

/// Every warm result equals a cold re-execution, byte for byte (both by
/// `PartialEq` and by rendered text).
#[test]
fn cached_results_are_byte_identical_to_cold_execution() {
    let server = fresh_shared();
    let shared: &SharedServer = server.shared();
    for sql in battery() {
        let cold = shared.query_uncached(&sql).unwrap();
        let warm_miss = shared.query_cached(&sql).unwrap();
        let warm_hit = shared.query_cached(&sql).unwrap();
        assert_eq!(*warm_miss, cold, "first (filling) read diverged: {sql}");
        assert_eq!(*warm_hit, cold, "cache hit diverged: {sql}");
        assert_eq!(warm_hit.to_string(), cold.to_string());
    }
    let stats = shared.cache_stats();
    assert_eq!(stats.hits, battery().len() as u64);
    assert_eq!(stats.misses, battery().len() as u64);
}

/// The cache key is the CANONICAL query text: lexically different spellings
/// of the same query share one entry.
#[test]
fn cache_key_is_canonical_sql() {
    let server = fresh_shared();
    let shared = server.shared();
    shared
        .query_cached("SELECT obid FROM assy WHERE obid = 1")
        .unwrap();
    let before = shared.cache_stats();
    let rs = shared
        .query_cached("select   obid\nfrom ASSY where obid=1")
        .unwrap();
    let after = shared.cache_stats();
    assert_eq!(after.hits, before.hits + 1, "reformatted query must hit");
    assert_eq!(after.misses, before.misses);
    assert_eq!(rs.len(), 1);
}

/// Property test: under a random interleaving of DML and queries, a repeat
/// query is a hit IFF the storage version is unchanged since its last
/// execution — and hit or miss, the result always equals cold execution.
#[test]
fn dml_invalidates_exactly_the_dependent_epoch() {
    let server = fresh_shared();
    let shared = server.shared();
    let queries = battery();
    let mut prng = Prng::seed_from_u64(0xCAC4E);
    // sql -> storage version at which it was last executed
    let mut last_run: HashMap<String, u64> = HashMap::new();

    for step in 0..400 {
        if prng.next_u64().is_multiple_of(4) {
            // DML: flip a random flag — bumps the version/epoch.
            let obid = 1 + (prng.next_u64() % 7) as i64;
            let flag = if prng.next_u64().is_multiple_of(2) {
                "TRUE"
            } else {
                "FALSE"
            };
            let before = shared.version();
            server
                .execute(&format!(
                    "UPDATE assy SET checkedout = {flag} WHERE obid = {obid}"
                ))
                .unwrap();
            assert_eq!(shared.version(), before + 1, "DML must bump the epoch");
        } else {
            let sql = &queries[(prng.next_u64() % queries.len() as u64) as usize];
            let version = shared.version();
            let before = shared.cache_stats();
            let warm = shared.query_cached(sql).unwrap();
            let after = shared.cache_stats();

            let expect_hit = last_run.get(sql) == Some(&version);
            if expect_hit {
                assert_eq!(
                    (after.hits, after.misses),
                    (before.hits + 1, before.misses),
                    "step {step}: same-epoch repeat must hit: {sql}"
                );
            } else {
                assert_eq!(
                    (after.hits, after.misses),
                    (before.hits, before.misses + 1),
                    "step {step}: first read after an epoch bump must miss: {sql}"
                );
            }
            // Hit or miss, the result equals cold execution NOW.
            let cold = shared.query_uncached(sql).unwrap();
            assert_eq!(*warm, cold, "step {step}: stale result served: {sql}");
            last_run.insert(sql.clone(), version);
        }
    }
    let stats = shared.cache_stats();
    assert!(stats.hits > 0, "interleaving never exercised a hit");
    assert!(stats.misses > 0, "interleaving never exercised a miss");
}

/// Queries do NOT bump the epoch: read-only traffic never invalidates.
#[test]
fn queries_do_not_invalidate() {
    let server = fresh_shared();
    let shared = server.shared();
    let v = shared.version();
    for sql in battery() {
        shared.query_cached(&sql).unwrap();
    }
    for sql in battery() {
        shared.query_cached(&sql).unwrap();
    }
    assert_eq!(shared.version(), v);
    assert_eq!(shared.cache_stats().hits, battery().len() as u64);
}

/// The session-local uncorrelated-subquery cache changes statistics only:
/// results with it on equal results with it off, before and after DML.
#[test]
fn subquery_cache_is_result_invisible() {
    let spec = TreeSpec::new(3, 2, 1.0).with_node_size(64);
    let (mut with_cache, _) = build_database(&spec).unwrap();
    let (mut without_cache, _) = build_database(&spec).unwrap();
    assert!(ExecConfig::default().subquery_cache);
    without_cache.config.subquery_cache = false;

    let sql = "SELECT obid FROM assy WHERE obid IN (SELECT left FROM link) ORDER BY obid";
    let check = |a: &Database, b: &Database| {
        let (rs_on, stats_on) = a.query_with_stats(sql).unwrap();
        let (rs_off, stats_off) = b.query_with_stats(sql).unwrap();
        assert_eq!(rs_on, rs_off, "subquery cache changed a result");
        assert!(stats_on.subquery_cache_hits > 0, "cache never engaged");
        assert_eq!(stats_off.subquery_cache_hits, 0);
        (stats_on.subquery_evals, stats_off.subquery_evals)
    };
    let (evals_on, evals_off) = check(&with_cache, &without_cache);
    assert!(
        evals_on < evals_off,
        "caching must reduce evaluations ({evals_on} >= {evals_off})"
    );

    // After DML the cached plan must re-evaluate — same differential holds.
    for db in [&mut with_cache, &mut without_cache] {
        db.execute("DELETE FROM link WHERE left = 1").unwrap();
    }
    check(&with_cache, &without_cache);
}
