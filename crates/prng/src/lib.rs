#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # pdm-prng — deterministic randomness without external dependencies
//!
//! The build environment is fully offline, so the workspace cannot pull
//! `rand` or `proptest` from a registry. Everything that needs randomness —
//! the workload generator, the fault-injection layer, and the property
//! tests — uses this crate instead: a [splitmix64] seeder feeding a
//! xoshiro256** generator ([`Prng`]), plus a tiny property-testing harness
//! ([`check`]) that replaces the proptest macros with explicit generator
//! loops.
//!
//! Determinism is a feature, not a workaround: the simulator's whole
//! methodology is bit-reproducible accounting, and every consumer seeds
//! its own generator so results never depend on draw interleaving.

pub mod check;

/// One step of the splitmix64 sequence: maps any 64-bit value to a
/// well-mixed successor. Used for seeding and for cheap stateless
/// "hash this tuple into a uniform u64" derivations (e.g. retry jitter).
#[inline]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** — a small, fast, high-quality generator (Blackman/Vigna).
/// Not cryptographic; exactly what a simulator needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Seed the full 256-bit state from one u64 via splitmix64 (the
    /// initialization the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(x);
        }
        // All-zero state would be a fixed point; splitmix64 of distinct
        // inputs cannot produce four zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Prng { s }
    }

    /// Next uniform u64.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)` using the top 53 bits.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform index in `0..n`. Panics if `n == 0`.
    /// Uses Lemire's multiply-shift with rejection for unbiased results.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let (hi, lo) = mul_u64(x, n);
            if lo >= n.wrapping_neg() % n {
                return hi as usize;
            }
            // Tiny rejection zone; loop again for unbiasedness.
        }
    }

    /// Uniform u64 in the inclusive range `lo..=hi`.
    pub fn u64_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.index((hi - lo + 1) as usize) as u64
    }

    /// Uniform u32 in the inclusive range `lo..=hi`.
    pub fn u32_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_inclusive(lo as u64, hi as u64) as u32
    }

    /// Uniform usize in the inclusive range `lo..=hi`.
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_inclusive(lo as u64, hi as u64) as usize
    }

    /// Uniform i64 in the inclusive range `lo..=hi`.
    pub fn i64_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        lo.wrapping_add(self.index((hi.wrapping_sub(lo) as u64 + 1) as usize) as i64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// A lowercase ASCII identifier-ish string of length in `len_lo..=len_hi`.
    pub fn ident(&mut self, len_lo: usize, len_hi: usize) -> String {
        let len = self.usize_inclusive(len_lo, len_hi);
        let mut s = String::with_capacity(len);
        for i in 0..len {
            let c = if i == 0 {
                b'a' + self.index(26) as u8
            } else {
                const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
                // lint:allow(unchecked-index): index(n) < n by contract.
                TAIL[self.index(TAIL.len())]
            };
            s.push(c as char);
        }
        s
    }
}

#[inline]
fn mul_u64(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(43);
        assert_ne!(Prng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Prng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Prng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn index_covers_range_uniformly() {
        let mut r = Prng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.index(10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket {c}");
        }
    }

    #[test]
    fn inclusive_ranges_hit_bounds() {
        let mut r = Prng::seed_from_u64(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match r.u32_inclusive(3, 5) {
                3 => saw_lo = true,
                5 => saw_hi = true,
                4 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Prng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn splitmix_is_pure() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn ident_shape() {
        let mut r = Prng::seed_from_u64(5);
        for _ in 0..100 {
            let s = r.ident(1, 6);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }
}
