//! A minimal property-testing harness: run a closure over many seeded
//! generators and report the failing case seed so a failure reproduces with
//! a one-line unit test. Replaces the proptest macros the offline build
//! cannot fetch; properties stay explicit generator loops.

use crate::{splitmix64, Prng};

/// Run `property` for `cases` deterministic cases derived from `seed`.
///
/// Each case gets a fresh [`Prng`] seeded from `splitmix64(seed + case)`,
/// so any failure is reproducible in isolation:
///
/// ```
/// use pdm_prng::check::cases;
/// cases("sum_is_commutative", 64, 0xC0FFEE, |rng| {
///     let (a, b) = (rng.i64_inclusive(-100, 100), rng.i64_inclusive(-100, 100));
///     assert_eq!(a + b, b + a);
/// });
/// ```
pub fn cases(name: &str, cases: u64, seed: u64, mut property: impl FnMut(&mut Prng)) {
    for case in 0..cases {
        let case_seed = splitmix64(seed.wrapping_add(case));
        let mut rng = Prng::seed_from_u64(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "property '{name}' failed on case {case}/{cases} \
                 (reproduce with case seed {case_seed:#x})"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Default case count for moderately expensive properties.
pub const DEFAULT_CASES: u64 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u64);
        cases("counter", 10, 1, |_| counter.set(counter.get() + 1));
        assert_eq!(counter.get(), 10);
    }

    #[test]
    fn failing_property_panics_and_names_the_case() {
        let result = std::panic::catch_unwind(|| {
            cases("always_fails", 3, 2, |_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        cases("record", 5, 99, |rng| first.push(rng.next_u64()));
        let mut second: Vec<u64> = Vec::new();
        cases("record", 5, 99, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }
}
