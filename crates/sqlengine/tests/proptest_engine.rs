//! Property-based tests on the engine's core invariants: value ordering
//! laws, parser round-trips, set-operation algebra, and recursive-CTE
//! reachability against an independent Rust-side traversal.

use proptest::prelude::*;

use pdm_sql::ast::{BinOp, Expr};
use pdm_sql::parser::{parse_expr, parse_query};
use pdm_sql::{Database, Value};

// ---------------------------------------------------------------------------
// Value ordering laws
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1e9f64..1e9f64).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::Text),
    ]
}

proptest! {
    #[test]
    fn total_cmp_is_reflexive_and_antisymmetric(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
    }

    #[test]
    fn total_cmp_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        let mut v = [a, b, c];
        v.sort_by(|x, y| x.total_cmp(y));
        // sorted order must be internally consistent
        prop_assert_ne!(v[0].total_cmp(&v[1]), Greater);
        prop_assert_ne!(v[1].total_cmp(&v[2]), Greater);
        prop_assert_ne!(v[0].total_cmp(&v[2]), Greater);
    }

    #[test]
    fn dedup_eq_implies_equal_hash(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a.dedup_eq(&b) {
            let mut ha = DefaultHasher::new();
            a.hash(&mut ha);
            let mut hb = DefaultHasher::new();
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    #[test]
    fn sql_eq_agrees_with_dedup_eq_for_non_null(a in arb_value(), b in arb_value()) {
        // wherever SQL equality is defined, it matches the dedup relation
        if let Some(eq) = a.sql_eq(&b) {
            prop_assert_eq!(eq, a.dedup_eq(&b));
        }
    }
}

// ---------------------------------------------------------------------------
// Parser round-trips over generated expressions
// ---------------------------------------------------------------------------

fn arb_literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        any::<i32>().prop_map(|i| Expr::Literal(Value::Int(i as i64))),
        "[a-z]{0,6}".prop_map(|s| Expr::Literal(Value::Text(s))),
        any::<bool>().prop_map(|b| Expr::Literal(Value::Bool(b))),
        Just(Expr::Literal(Value::Null)),
    ]
}

fn arb_column() -> impl Strategy<Value = Expr> {
    ("[a-z][a-z0-9_]{0,5}", proptest::option::of("[a-z][a-z0-9_]{0,5}")).prop_map(
        |(name, qualifier)| Expr::Column { qualifier, name },
    )
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![arb_literal(), arb_column()];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| {
                Expr::BinaryOp { left: Box::new(l), op, right: Box::new(r) }
            }),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), any::<bool>())
                .prop_map(|(e, n)| Expr::IsNull { expr: Box::new(e), negated: n }),
            (inner.clone(), proptest::collection::vec(inner.clone(), 1..3), any::<bool>())
                .prop_map(|(e, list, n)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: n
                }),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::NotEq),
        Just(BinOp::Lt),
        Just(BinOp::LtEq),
        Just(BinOp::Gt),
        Just(BinOp::GtEq),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Plus),
        Just(BinOp::Minus),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Concat),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Rendering an AST to SQL and re-parsing must reproduce the AST — the
    /// property the query modificator's whole workflow relies on.
    #[test]
    fn expr_round_trips_through_parser(e in arb_expr()) {
        let sql = e.to_string();
        let reparsed = parse_expr(&sql)
            .unwrap_or_else(|err| panic!("'{sql}' failed to parse: {err}"));
        prop_assert_eq!(e, reparsed, "round-trip mismatch for {}", sql);
    }
}

// ---------------------------------------------------------------------------
// Set-operation algebra on materialized tables
// ---------------------------------------------------------------------------

fn db_with_sets(a: &[i64], b: &[i64]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE a (x INTEGER)").unwrap();
    db.execute("CREATE TABLE b (x INTEGER)").unwrap();
    for v in a {
        db.execute(&format!("INSERT INTO a VALUES ({v})")).unwrap();
    }
    for v in b {
        db.execute(&format!("INSERT INTO b VALUES ({v})")).unwrap();
    }
    db
}

fn ints(db: &Database, sql: &str) -> Vec<i64> {
    let mut out: Vec<i64> = db
        .query(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| match r.get(0) {
            Value::Int(i) => *i,
            other => panic!("unexpected {other}"),
        })
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_is_commutative_and_dedups(
        a in proptest::collection::vec(-20i64..20, 0..12),
        b in proptest::collection::vec(-20i64..20, 0..12),
    ) {
        let db = db_with_sets(&a, &b);
        let ab = ints(&db, "SELECT x FROM a UNION SELECT x FROM b");
        let ba = ints(&db, "SELECT x FROM b UNION SELECT x FROM a");
        prop_assert_eq!(&ab, &ba);
        // dedup: no adjacent duplicates after sort
        prop_assert!(ab.windows(2).all(|w| w[0] != w[1]));
        // reference semantics
        let mut expected: Vec<i64> = a.iter().chain(&b).copied().collect();
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(ab, expected);
    }

    #[test]
    fn intersect_and_except_reference_semantics(
        a in proptest::collection::vec(-10i64..10, 0..12),
        b in proptest::collection::vec(-10i64..10, 0..12),
    ) {
        use std::collections::BTreeSet;
        let db = db_with_sets(&a, &b);
        let sa: BTreeSet<i64> = a.iter().copied().collect();
        let sb: BTreeSet<i64> = b.iter().copied().collect();

        let inter = ints(&db, "SELECT x FROM a INTERSECT SELECT x FROM b");
        prop_assert_eq!(inter, sa.intersection(&sb).copied().collect::<Vec<_>>());

        let diff = ints(&db, "SELECT x FROM a EXCEPT SELECT x FROM b");
        prop_assert_eq!(diff, sa.difference(&sb).copied().collect::<Vec<_>>());
    }

    #[test]
    fn union_all_preserves_cardinality(
        a in proptest::collection::vec(-5i64..5, 0..10),
        b in proptest::collection::vec(-5i64..5, 0..10),
    ) {
        let db = db_with_sets(&a, &b);
        let rs = db.query("SELECT x FROM a UNION ALL SELECT x FROM b").unwrap();
        prop_assert_eq!(rs.len(), a.len() + b.len());
    }
}

// ---------------------------------------------------------------------------
// Recursive CTE reachability vs independent traversal
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Build a random directed graph of `n` nodes, compute reachability from
    /// node 0 with WITH RECURSIVE, and compare against a Rust BFS.
    #[test]
    fn recursive_cte_computes_reachability(
        n in 2usize..14,
        edges in proptest::collection::vec((0usize..14, 0usize..14), 0..40),
    ) {
        let edges: Vec<(usize, usize)> =
            edges.into_iter().filter(|(a, b)| *a < n && *b < n).collect();

        let mut db = Database::new();
        db.execute("CREATE TABLE e (src INTEGER, dst INTEGER)").unwrap();
        for (a, b) in &edges {
            db.execute(&format!("INSERT INTO e VALUES ({a}, {b})")).unwrap();
        }

        let rs = db.query(
            "WITH RECURSIVE r (node) AS (\
               SELECT 0 \
               UNION SELECT e.dst FROM r JOIN e ON r.node = e.src) \
             SELECT node FROM r ORDER BY 1",
        ).unwrap();
        let via_sql: Vec<i64> = rs
            .rows
            .iter()
            .map(|row| match row.get(0) {
                Value::Int(i) => *i,
                other => panic!("unexpected {other}"),
            })
            .collect();

        // Independent BFS.
        let mut adj = vec![Vec::new(); n];
        for (a, b) in &edges {
            adj[*a].push(*b);
        }
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut stack = vec![0usize];
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        let expected: Vec<i64> =
            (0..n).filter(|&i| seen[i]).map(|i| i as i64).collect();

        prop_assert_eq!(via_sql, expected);
    }
}

// ---------------------------------------------------------------------------
// Query-level sanity on arbitrary predicates
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// WHERE filtering never invents rows: |σ(T)| ≤ |T|, and appending the
    /// same predicate twice (AND p AND p) changes nothing.
    #[test]
    fn where_is_contractive_and_idempotent(
        vals in proptest::collection::vec(-50i64..50, 0..20),
        bound in -50i64..50,
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INTEGER)").unwrap();
        for v in &vals {
            db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let once = db.query(&format!("SELECT x FROM t WHERE x < {bound}")).unwrap();
        let twice = db
            .query(&format!("SELECT x FROM t WHERE x < {bound} AND x < {bound}"))
            .unwrap();
        prop_assert!(once.len() <= vals.len());
        prop_assert_eq!(once.rows, twice.rows);
    }
}

// Sanity that the generated-query test above also accepts a handcrafted
// query (guards against the generator hiding a broken parser).
#[test]
fn parse_query_smoke() {
    parse_query("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY 2 DESC")
        .unwrap();
}
