#![allow(clippy::unwrap_used)]

//! Property-based tests on the engine's core invariants: value ordering
//! laws, parser round-trips, set-operation algebra, and recursive-CTE
//! reachability against an independent Rust-side traversal.
//!
//! Uses the in-repo `pdm_prng::check` harness (explicit generator loops)
//! instead of proptest, which the offline build cannot fetch.

use pdm_prng::check::cases;
use pdm_prng::Prng;

use pdm_sql::ast::{BinOp, Expr};
use pdm_sql::parser::{parse_expr, parse_query};
use pdm_sql::{Database, Value};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn arb_value(rng: &mut Prng) -> Value {
    match rng.index(5) {
        0 => Value::Null,
        1 => Value::Bool(rng.bool()),
        2 => Value::Int(rng.i64_inclusive(i32::MIN as i64, i32::MAX as i64)),
        3 => Value::Float(rng.f64_range(-1e9, 1e9)),
        _ => {
            const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
            let len = rng.usize_inclusive(0, 12);
            let s: String = (0..len)
                .map(|_| CHARS[rng.index(CHARS.len())] as char)
                .collect();
            Value::Text(s)
        }
    }
}

/// SQL keywords a generated column name must avoid to keep rendered SQL
/// re-parsable.
const KEYWORDS: &[&str] = &[
    "select",
    "from",
    "where",
    "and",
    "or",
    "not",
    "in",
    "is",
    "null",
    "true",
    "false",
    "as",
    "on",
    "join",
    "union",
    "all",
    "except",
    "intersect",
    "group",
    "by",
    "order",
    "having",
    "with",
    "recursive",
    "case",
    "when",
    "then",
    "else",
    "end",
    "like",
    "between",
    "exists",
    "distinct",
    "limit",
    "asc",
    "desc",
];

fn arb_ident(rng: &mut Prng) -> String {
    loop {
        let s = rng.ident(1, 6);
        if !KEYWORDS.contains(&s.as_str()) {
            return s;
        }
    }
}

fn arb_literal(rng: &mut Prng) -> Expr {
    match rng.index(4) {
        0 => Expr::Literal(Value::Int(
            rng.i64_inclusive(i32::MIN as i64, i32::MAX as i64),
        )),
        1 => {
            let len = rng.usize_inclusive(0, 6);
            let s: String = (0..len)
                .map(|_| (b'a' + rng.index(26) as u8) as char)
                .collect();
            Expr::Literal(Value::Text(s))
        }
        2 => Expr::Literal(Value::Bool(rng.bool())),
        _ => Expr::Literal(Value::Null),
    }
}

fn arb_column(rng: &mut Prng) -> Expr {
    let qualifier = if rng.bool() {
        Some(arb_ident(rng))
    } else {
        None
    };
    Expr::Column {
        qualifier,
        name: arb_ident(rng),
    }
}

fn arb_binop(rng: &mut Prng) -> BinOp {
    const OPS: &[BinOp] = &[
        BinOp::Eq,
        BinOp::NotEq,
        BinOp::Lt,
        BinOp::LtEq,
        BinOp::Gt,
        BinOp::GtEq,
        BinOp::And,
        BinOp::Or,
        BinOp::Plus,
        BinOp::Minus,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Concat,
    ];
    OPS[rng.index(OPS.len())]
}

fn arb_expr(rng: &mut Prng, depth: u32) -> Expr {
    if depth == 0 || rng.index(4) == 0 {
        return if rng.bool() {
            arb_literal(rng)
        } else {
            arb_column(rng)
        };
    }
    match rng.index(4) {
        0 => Expr::BinaryOp {
            left: Box::new(arb_expr(rng, depth - 1)),
            op: arb_binop(rng),
            right: Box::new(arb_expr(rng, depth - 1)),
        },
        1 => Expr::Not(Box::new(arb_expr(rng, depth - 1))),
        2 => Expr::IsNull {
            expr: Box::new(arb_expr(rng, depth - 1)),
            negated: rng.bool(),
        },
        _ => {
            let n = rng.usize_inclusive(1, 2);
            Expr::InList {
                expr: Box::new(arb_expr(rng, depth - 1)),
                list: (0..n).map(|_| arb_expr(rng, depth - 1)).collect(),
                negated: rng.bool(),
            }
        }
    }
}

fn int_vec(rng: &mut Prng, lo: i64, hi: i64, max_len: usize) -> Vec<i64> {
    let len = rng.usize_inclusive(0, max_len);
    (0..len).map(|_| rng.i64_inclusive(lo, hi)).collect()
}

// ---------------------------------------------------------------------------
// Value ordering laws
// ---------------------------------------------------------------------------

#[test]
fn total_cmp_is_reflexive_and_antisymmetric() {
    cases("total_cmp_reflexive_antisymmetric", 512, 0x01, |rng| {
        use std::cmp::Ordering;
        let a = arb_value(rng);
        let b = arb_value(rng);
        assert_eq!(a.total_cmp(&a), Ordering::Equal);
        assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
    });
}

#[test]
fn total_cmp_is_transitive() {
    cases("total_cmp_transitive", 512, 0x02, |rng| {
        use std::cmp::Ordering::Greater;
        let mut v = [arb_value(rng), arb_value(rng), arb_value(rng)];
        v.sort_by(|x, y| x.total_cmp(y));
        assert_ne!(v[0].total_cmp(&v[1]), Greater);
        assert_ne!(v[1].total_cmp(&v[2]), Greater);
        assert_ne!(v[0].total_cmp(&v[2]), Greater);
    });
}

#[test]
fn dedup_eq_implies_equal_hash() {
    cases("dedup_eq_equal_hash", 512, 0x03, |rng| {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = arb_value(rng);
        let b = arb_value(rng);
        if a.dedup_eq(&b) {
            let mut ha = DefaultHasher::new();
            a.hash(&mut ha);
            let mut hb = DefaultHasher::new();
            b.hash(&mut hb);
            assert_eq!(ha.finish(), hb.finish());
        }
    });
}

#[test]
fn sql_eq_agrees_with_dedup_eq_for_non_null() {
    cases("sql_eq_vs_dedup_eq", 512, 0x04, |rng| {
        let a = arb_value(rng);
        let b = arb_value(rng);
        if let Some(eq) = a.sql_eq(&b) {
            assert_eq!(eq, a.dedup_eq(&b));
        }
    });
}

// ---------------------------------------------------------------------------
// Parser round-trips over generated expressions
// ---------------------------------------------------------------------------

/// Rendering an AST to SQL and re-parsing must reproduce the AST — the
/// property the query modificator's whole workflow relies on.
#[test]
fn expr_round_trips_through_parser() {
    cases("expr_round_trip", 256, 0x05, |rng| {
        let e = arb_expr(rng, 4);
        let sql = e.to_string();
        let reparsed =
            parse_expr(&sql).unwrap_or_else(|err| panic!("'{sql}' failed to parse: {err}"));
        assert_eq!(e, reparsed, "round-trip mismatch for {sql}");
    });
}

// ---------------------------------------------------------------------------
// Set-operation algebra on materialized tables
// ---------------------------------------------------------------------------

fn db_with_sets(a: &[i64], b: &[i64]) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE a (x INTEGER)").unwrap();
    db.execute("CREATE TABLE b (x INTEGER)").unwrap();
    for v in a {
        db.execute(&format!("INSERT INTO a VALUES ({v})")).unwrap();
    }
    for v in b {
        db.execute(&format!("INSERT INTO b VALUES ({v})")).unwrap();
    }
    db
}

fn ints(db: &Database, sql: &str) -> Vec<i64> {
    let mut out: Vec<i64> = db
        .query(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| match r.get(0) {
            Value::Int(i) => *i,
            other => panic!("unexpected {other}"),
        })
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn union_is_commutative_and_dedups() {
    cases("union_commutative", 64, 0x06, |rng| {
        let a = int_vec(rng, -20, 19, 11);
        let b = int_vec(rng, -20, 19, 11);
        let db = db_with_sets(&a, &b);
        let ab = ints(&db, "SELECT x FROM a UNION SELECT x FROM b");
        let ba = ints(&db, "SELECT x FROM b UNION SELECT x FROM a");
        assert_eq!(ab, ba);
        // dedup: no adjacent duplicates after sort
        assert!(ab.windows(2).all(|w| w[0] != w[1]));
        // reference semantics
        let mut expected: Vec<i64> = a.iter().chain(&b).copied().collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(ab, expected);
    });
}

#[test]
fn intersect_and_except_reference_semantics() {
    cases("intersect_except_reference", 64, 0x07, |rng| {
        use std::collections::BTreeSet;
        let a = int_vec(rng, -10, 9, 11);
        let b = int_vec(rng, -10, 9, 11);
        let db = db_with_sets(&a, &b);
        let sa: BTreeSet<i64> = a.iter().copied().collect();
        let sb: BTreeSet<i64> = b.iter().copied().collect();

        let inter = ints(&db, "SELECT x FROM a INTERSECT SELECT x FROM b");
        assert_eq!(inter, sa.intersection(&sb).copied().collect::<Vec<_>>());

        let diff = ints(&db, "SELECT x FROM a EXCEPT SELECT x FROM b");
        assert_eq!(diff, sa.difference(&sb).copied().collect::<Vec<_>>());
    });
}

#[test]
fn union_all_preserves_cardinality() {
    cases("union_all_cardinality", 64, 0x08, |rng| {
        let a = int_vec(rng, -5, 4, 9);
        let b = int_vec(rng, -5, 4, 9);
        let db = db_with_sets(&a, &b);
        let rs = db
            .query("SELECT x FROM a UNION ALL SELECT x FROM b")
            .unwrap();
        assert_eq!(rs.len(), a.len() + b.len());
    });
}

// ---------------------------------------------------------------------------
// Recursive CTE reachability vs independent traversal
// ---------------------------------------------------------------------------

/// Build a random directed graph of `n` nodes, compute reachability from
/// node 0 with WITH RECURSIVE, and compare against a Rust BFS.
#[test]
fn recursive_cte_computes_reachability() {
    cases("recursive_cte_reachability", 48, 0x09, |rng| {
        let n = rng.usize_inclusive(2, 13);
        let edge_count = rng.usize_inclusive(0, 39);
        let edges: Vec<(usize, usize)> = (0..edge_count)
            .map(|_| (rng.index(14), rng.index(14)))
            .filter(|(a, b)| *a < n && *b < n)
            .collect();

        let mut db = Database::new();
        db.execute("CREATE TABLE e (src INTEGER, dst INTEGER)")
            .unwrap();
        for (a, b) in &edges {
            db.execute(&format!("INSERT INTO e VALUES ({a}, {b})"))
                .unwrap();
        }

        let rs = db
            .query(
                "WITH RECURSIVE r (node) AS (\
                   SELECT 0 \
                   UNION SELECT e.dst FROM r JOIN e ON r.node = e.src) \
                 SELECT node FROM r ORDER BY 1",
            )
            .unwrap();
        let via_sql: Vec<i64> = rs
            .rows
            .iter()
            .map(|row| match row.get(0) {
                Value::Int(i) => *i,
                other => panic!("unexpected {other}"),
            })
            .collect();

        // Independent BFS.
        let mut adj = vec![Vec::new(); n];
        for (a, b) in &edges {
            adj[*a].push(*b);
        }
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut stack = vec![0usize];
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        let expected: Vec<i64> = (0..n).filter(|&i| seen[i]).map(|i| i as i64).collect();

        assert_eq!(via_sql, expected);
    });
}

// ---------------------------------------------------------------------------
// Query-level sanity on arbitrary predicates
// ---------------------------------------------------------------------------

/// WHERE filtering never invents rows: |σ(T)| ≤ |T|, and appending the
/// same predicate twice (AND p AND p) changes nothing.
#[test]
fn where_is_contractive_and_idempotent() {
    cases("where_contractive_idempotent", 64, 0x0A, |rng| {
        let vals = int_vec(rng, -50, 49, 19);
        let bound = rng.i64_inclusive(-50, 49);
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INTEGER)").unwrap();
        for v in &vals {
            db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let once = db
            .query(&format!("SELECT x FROM t WHERE x < {bound}"))
            .unwrap();
        let twice = db
            .query(&format!(
                "SELECT x FROM t WHERE x < {bound} AND x < {bound}"
            ))
            .unwrap();
        assert!(once.len() <= vals.len());
        assert_eq!(once.rows, twice.rows);
    });
}

// Sanity that the generated-query test above also accepts a handcrafted
// query (guards against the generator hiding a broken parser).
#[test]
fn parse_query_smoke() {
    parse_query("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY 2 DESC")
        .unwrap();
}
