#![allow(clippy::unwrap_used)]

//! End-to-end engine tests against the paper's worked example (Figures 2
//! and 3) and the §5.3 condition queries, using the exact SQL printed in the
//! paper (modulo whitespace).

use pdm_sql::{Database, Value};

/// Build the tables of Figure 2: 8 assemblies, 7 components, 8 links, and
/// (for §5.3.2) specifications with a `specified_by` relation.
fn figure2_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE assy (type VARCHAR NOT NULL, obid INTEGER NOT NULL, name VARCHAR, dec VARCHAR)")
        .unwrap();
    db.execute("CREATE TABLE comp (type VARCHAR NOT NULL, obid INTEGER NOT NULL, name VARCHAR)")
        .unwrap();
    db.execute(
        "CREATE TABLE link (type VARCHAR NOT NULL, obid INTEGER NOT NULL, left INTEGER, right INTEGER, \
         eff_from INTEGER, eff_to INTEGER)",
    )
    .unwrap();
    db.execute("CREATE TABLE spec (type VARCHAR NOT NULL, obid INTEGER NOT NULL, name VARCHAR)")
        .unwrap();
    db.execute("CREATE TABLE specified_by (obid INTEGER NOT NULL, left INTEGER, right INTEGER)")
        .unwrap();

    for i in 1..=8 {
        let dec = if i <= 4 { "+" } else { "-" };
        db.execute(&format!(
            "INSERT INTO assy VALUES ('assy', {i}, 'Assy{i}', '{dec}')"
        ))
        .unwrap();
    }
    for i in 1..=7 {
        db.execute(&format!(
            "INSERT INTO comp VALUES ('comp', {}, 'Comp{i}')",
            100 + i
        ))
        .unwrap();
    }
    let links = [
        (1001, 1, 2, 1, 3),
        (1002, 1, 3, 4, 10),
        (1003, 2, 4, 1, 10),
        (1004, 2, 5, 1, 10),
        (1005, 4, 101, 6, 10),
        (1006, 4, 102, 1, 5),
        (1007, 5, 103, 1, 10),
        (1008, 5, 104, 1, 10),
    ];
    for (obid, l, r, f, t) in links {
        db.execute(&format!(
            "INSERT INTO link VALUES ('link', {obid}, {l}, {r}, {f}, {t})"
        ))
        .unwrap();
    }
    // Specifications: components 101 and 103 are specified.
    db.execute("INSERT INTO spec VALUES ('spec', 9001, 'Spec-A'), ('spec', 9002, 'Spec-B')")
        .unwrap();
    db.execute("INSERT INTO specified_by VALUES (8001, 101, 9001), (8002, 103, 9002)")
        .unwrap();
    db
}

/// The §5.2 recursive query, verbatim.
const SECTION_5_2_QUERY: &str = r#"
WITH RECURSIVE rtbl (type, obid, name, dec) AS
(SELECT type, obid, name, dec
   FROM assy
  WHERE assy.obid = 1
 UNION
 SELECT assy.type, assy.obid, assy.name, assy.dec
   FROM rtbl JOIN link ON rtbl.obid=link.left
             JOIN assy ON link.right=assy.obid
 UNION
 SELECT comp.type, comp.obid, comp.name, ''
   FROM rtbl JOIN link ON rtbl.obid=link.left
             JOIN comp ON link.right=comp.obid
)
SELECT type, obid, name, dec AS "DEC",
       cast (NULL AS integer) AS "LEFT",
       cast (NULL AS integer) AS "RIGHT",
       cast (NULL AS integer) AS "EFF_FROM",
       cast (NULL AS integer) AS "EFF_TO"
  FROM rtbl
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC",
       left, right, eff_from, eff_to
  FROM link
 WHERE (left IN (SELECT obid FROM rtbl)
   AND right IN (SELECT obid FROM rtbl))
ORDER BY 1,2
"#;

#[test]
fn figure3_result_matches_paper() {
    let db = figure2_db();
    let rs = db.query(SECTION_5_2_QUERY).unwrap();

    // Figure 3: 5 assemblies (1,2,3,4,5), 4 components (101..104),
    // 8 links (1001..1008) — 17 rows total, ordered by (type, obid).
    assert_eq!(rs.len(), 17);

    let types = rs.column_values("type").unwrap();
    let obids = rs.column_values("obid").unwrap();
    let expected: Vec<(&str, i64)> = vec![
        ("assy", 1),
        ("assy", 2),
        ("assy", 3),
        ("assy", 4),
        ("assy", 5),
        ("comp", 101),
        ("comp", 102),
        ("comp", 103),
        ("comp", 104),
        ("link", 1001),
        ("link", 1002),
        ("link", 1003),
        ("link", 1004),
        ("link", 1005),
        ("link", 1006),
        ("link", 1007),
        ("link", 1008),
    ];
    for (i, (ty, id)) in expected.iter().enumerate() {
        assert_eq!(types[i], Value::Text(ty.to_string()), "row {i} type");
        assert_eq!(obids[i], Value::Int(*id), "row {i} obid");
    }

    // Spot-check the homogenized columns of Figure 3: assembly rows carry
    // NULL link fields, link rows carry NULL-ish name/dec and real
    // left/right/effectivity values.
    let schema_names = rs.schema.names();
    assert_eq!(
        schema_names,
        vec!["type", "obid", "name", "dec", "left", "right", "eff_from", "eff_to"]
    );
    let lefts = rs.column_values("left").unwrap();
    assert!(lefts[0].is_null()); // assy 1
    assert_eq!(lefts[9], Value::Int(1)); // link 1001
    let names = rs.column_values("name").unwrap();
    assert_eq!(names[0], Value::Text("Assy1".into()));
    assert_eq!(names[9], Value::Text("".into()));
}

#[test]
fn forall_rows_condition_empties_tree_when_violated() {
    // §5.3.1: all assemblies in the tree must be decomposable; Assy5 is not,
    // so the result is empty.
    let db = figure2_db();
    let sql = r#"
WITH RECURSIVE rtbl (type, obid, name, dec) AS
(SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
 UNION
 SELECT assy.type, assy.obid, assy.name, assy.dec
   FROM rtbl JOIN link ON rtbl.obid=link.left
             JOIN assy ON link.right=assy.obid
 UNION
 SELECT comp.type, comp.obid, comp.name, ''
   FROM rtbl JOIN link ON rtbl.obid=link.left
             JOIN comp ON link.right=comp.obid
)
SELECT type, obid, name, dec AS "DEC",
       cast (NULL AS integer) AS "LEFT",
       cast (NULL AS integer) AS "RIGHT",
       cast (NULL AS integer) AS "EFF_FROM",
       cast (NULL AS integer) AS "EFF_TO"
  FROM rtbl
 WHERE NOT EXISTS (SELECT * FROM rtbl
       WHERE (type='assy' AND dec!='+'))
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC",
       left, right, eff_from, eff_to
  FROM link
 WHERE (left IN (SELECT obid FROM rtbl)
   AND right IN (SELECT obid FROM rtbl))
   AND NOT EXISTS (SELECT * FROM rtbl
       WHERE (type='assy' AND dec!='+'))
ORDER BY 1,2
"#;
    let rs = db.query(sql).unwrap();
    assert!(rs.is_empty(), "Assy5 is not decomposable → empty result");
}

#[test]
fn forall_rows_condition_returns_all_when_satisfied() {
    // Same query over the subtree rooted at Assy4 (4 -> 101, 102): Assy4 is
    // decomposable, so the whole subtree comes back.
    let db = figure2_db();
    let sql = r#"
WITH RECURSIVE rtbl (type, obid, name, dec) AS
(SELECT type, obid, name, dec FROM assy WHERE assy.obid = 4
 UNION
 SELECT assy.type, assy.obid, assy.name, assy.dec
   FROM rtbl JOIN link ON rtbl.obid=link.left
             JOIN assy ON link.right=assy.obid
 UNION
 SELECT comp.type, comp.obid, comp.name, ''
   FROM rtbl JOIN link ON rtbl.obid=link.left
             JOIN comp ON link.right=comp.obid
)
SELECT type, obid FROM rtbl
 WHERE NOT EXISTS (SELECT * FROM rtbl WHERE (type='assy' AND dec!='+'))
ORDER BY 1,2
"#;
    let rs = db.query(sql).unwrap();
    assert_eq!(rs.len(), 3); // assy 4, comp 101, comp 102
}

#[test]
fn exists_structure_condition_filters_unspecified_components() {
    // §5.3.2: components are visible only if specified by a document.
    // In the Figure-2 tree only Comp1 (101) and Comp3 (103) are specified.
    let db = figure2_db();
    let sql = r#"
WITH RECURSIVE rtbl (type, obid, name, dec) AS
(SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
 UNION
 SELECT assy.type, assy.obid, assy.name, assy.dec
   FROM rtbl JOIN link ON rtbl.obid=link.left
             JOIN assy ON link.right=assy.obid
 UNION
 SELECT comp.type, comp.obid, comp.name, ''
   FROM rtbl JOIN link ON rtbl.obid=link.left
             JOIN comp ON link.right=comp.obid
  WHERE EXISTS (SELECT * FROM specified_by AS s JOIN spec
        ON s.right = spec.obid WHERE s.left = comp.obid)
)
SELECT type, obid FROM rtbl ORDER BY 1,2
"#;
    let rs = db.query(sql).unwrap();
    let obids = rs.column_values("obid").unwrap();
    assert_eq!(
        obids,
        vec![
            Value::Int(1),
            Value::Int(2),
            Value::Int(3),
            Value::Int(4),
            Value::Int(5),
            Value::Int(101),
            Value::Int(103),
        ]
    );
}

#[test]
fn tree_aggregate_condition_count_of_assemblies() {
    // §5.3.3: tree is returned only if it contains at most ten assemblies;
    // the example tree has five, so everything comes back.
    let db = figure2_db();
    let sql = r#"
WITH RECURSIVE rtbl (type, obid, name, dec) AS
(SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
 UNION
 SELECT assy.type, assy.obid, assy.name, assy.dec
   FROM rtbl JOIN link ON rtbl.obid=link.left
             JOIN assy ON link.right=assy.obid
 UNION
 SELECT comp.type, comp.obid, comp.name, ''
   FROM rtbl JOIN link ON rtbl.obid=link.left
             JOIN comp ON link.right=comp.obid
)
SELECT type, obid, name, dec AS "DEC",
       cast (NULL AS integer) AS "LEFT",
       cast (NULL AS integer) AS "RIGHT",
       cast (NULL AS integer) AS "EFF_FROM",
       cast (NULL AS integer) AS "EFF_TO"
  FROM rtbl
 WHERE (SELECT COUNT(*) FROM rtbl WHERE type='assy')<=10
UNION
SELECT type, obid, '' AS "NAME", '' AS "DEC",
       left, right, eff_from, eff_to
  FROM link
 WHERE (left IN (SELECT obid FROM rtbl)
   AND right IN (SELECT obid FROM rtbl))
   AND (SELECT COUNT(*) FROM rtbl WHERE type='assy')<=10
ORDER BY 1,2
"#;
    let rs = db.query(sql).unwrap();
    assert_eq!(rs.len(), 17);

    // Tightening the bound below five empties the result.
    let tightened = sql.replace("<=10", "<=4");
    let rs = db.query(&tightened).unwrap();
    assert!(rs.is_empty());
}

#[test]
fn uncorrelated_subqueries_evaluated_once() {
    // The §5.3.1 remark: rtbl appears in outer and inner clause, but the
    // inner clause is uncorrelated and must be evaluated only once.
    let db = figure2_db();
    let sql = r#"
WITH RECURSIVE rtbl (type, obid, name, dec) AS
(SELECT type, obid, name, dec FROM assy WHERE assy.obid = 1
 UNION
 SELECT assy.type, assy.obid, assy.name, assy.dec
   FROM rtbl JOIN link ON rtbl.obid=link.left
             JOIN assy ON link.right=assy.obid
)
SELECT type, obid FROM rtbl
 WHERE NOT EXISTS (SELECT * FROM rtbl WHERE dec!='+')
"#;
    let (_, stats) = db.query_with_stats(sql).unwrap();
    // 5 outer rows would mean 5 evaluations without the cache; with it the
    // NOT EXISTS body runs once and hits the cache for the remaining rows.
    assert!(stats.subquery_evals <= 1 + stats.subquery_cache_hits);
    assert!(stats.subquery_cache_hits >= 1);
}

#[test]
fn navigational_single_level_expand_queries() {
    // The navigational access pattern: one query per node, children of one
    // assembly at a time (the paper's single-level expand building block).
    let mut db = figure2_db();
    db.execute("CREATE INDEX ON link (left)").unwrap();

    let rs = db
        .query(
            "SELECT assy.obid, assy.name FROM link JOIN assy ON link.right = assy.obid \
             WHERE link.left = 1 ORDER BY 1",
        )
        .unwrap();
    assert_eq!(
        rs.column_values("obid").unwrap(),
        vec![Value::Int(2), Value::Int(3)]
    );

    let rs = db
        .query(
            "SELECT comp.obid FROM link JOIN comp ON link.right = comp.obid \
             WHERE link.left = 4 ORDER BY 1",
        )
        .unwrap();
    assert_eq!(
        rs.column_values("obid").unwrap(),
        vec![Value::Int(101), Value::Int(102)]
    );
}

#[test]
fn effectivity_filter_on_links() {
    // Effectivities (§3.1 example 3): only links whose [eff_from, eff_to]
    // overlaps the user's selected effectivity are traversed.
    let db = figure2_db();
    // User effectivity: unit 4..5. Link 1001 (1..3) drops out, 1006 (1..5)
    // stays.
    let rs = db
        .query("SELECT obid FROM link WHERE eff_from <= 5 AND eff_to >= 4 ORDER BY 1")
        .unwrap();
    let obids = rs.column_values("obid").unwrap();
    assert!(!obids.contains(&Value::Int(1001)));
    assert!(obids.contains(&Value::Int(1002)));
    assert!(obids.contains(&Value::Int(1006)));
}

#[test]
fn checkout_flag_update_roundtrip() {
    // §6: check-out needs a separate UPDATE — exercise the flag flip.
    let mut db = figure2_db();
    db.execute("CREATE TABLE flags (obid INTEGER NOT NULL, checkedout BOOLEAN)")
        .unwrap();
    for i in 1..=8 {
        db.execute(&format!("INSERT INTO flags VALUES ({i}, FALSE)"))
            .unwrap();
    }
    let out = db
        .execute("UPDATE flags SET checkedout = TRUE WHERE obid IN (SELECT right FROM link WHERE left = 2)")
        .unwrap();
    assert_eq!(
        out,
        pdm_sql::ExecOutcome::Dml(pdm_sql::DmlOutcome::Updated(2))
    );
    let rs = db
        .query("SELECT obid FROM flags WHERE checkedout = TRUE ORDER BY 1")
        .unwrap();
    assert_eq!(
        rs.column_values("obid").unwrap(),
        vec![Value::Int(4), Value::Int(5)]
    );
}
