#![allow(clippy::unwrap_used)]

//! Broad SQL-surface coverage: every feature the engine exposes, exercised
//! through SQL text on small fixtures with hand-computed expectations.

use pdm_sql::{Database, DmlOutcome, Error, ExecOutcome, Value};

fn fixture() -> Database {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE part (id INTEGER NOT NULL, name VARCHAR, kind VARCHAR, \
         weight DOUBLE, qty INTEGER)",
    )
    .unwrap();
    let rows = [
        (1, "bolt", "fastener", 0.05, 100),
        (2, "nut", "fastener", 0.03, 200),
        (3, "panel", "body", 12.5, 4),
        (4, "door", "body", 25.0, 2),
        (5, "engine", "power", 180.0, 1),
        (6, "washer", "fastener", 0.01, 500),
    ];
    for (id, name, kind, weight, qty) in rows {
        db.execute(&format!(
            "INSERT INTO part VALUES ({id}, '{name}', '{kind}', {weight}, {qty})"
        ))
        .unwrap();
    }
    db.execute("CREATE TABLE bin (part_id INTEGER, shelf VARCHAR)")
        .unwrap();
    for (pid, shelf) in [(1, "A"), (2, "A"), (3, "B"), (5, "C")] {
        db.execute(&format!("INSERT INTO bin VALUES ({pid}, '{shelf}')"))
            .unwrap();
    }
    db
}

fn int(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        other => panic!("expected int, got {other}"),
    }
}

fn f64_of(v: &Value) -> f64 {
    match v {
        Value::Float(f) => *f,
        Value::Int(i) => *i as f64,
        other => panic!("expected number, got {other}"),
    }
}

#[test]
fn group_by_with_aggregates() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT kind, COUNT(*) AS n, SUM(qty) AS total, MIN(weight) AS lightest \
             FROM part GROUP BY kind ORDER BY kind",
        )
        .unwrap();
    assert_eq!(rs.len(), 3);
    assert_eq!(rs.schema.names(), vec!["kind", "n", "total", "lightest"]);
    // body: 2 parts, qty 6, min weight 12.5
    assert_eq!(rs.rows[0].get(0), &Value::Text("body".into()));
    assert_eq!(int(rs.rows[0].get(1)), 2);
    assert_eq!(int(rs.rows[0].get(2)), 6);
    assert!((f64_of(rs.rows[0].get(3)) - 12.5).abs() < 1e-9);
    // fastener: 3 parts, qty 800
    assert_eq!(int(rs.rows[1].get(1)), 3);
    assert_eq!(int(rs.rows[1].get(2)), 800);
}

#[test]
fn having_filters_groups() {
    let db = fixture();
    let rs = db
        .query("SELECT kind FROM part GROUP BY kind HAVING COUNT(*) >= 2 ORDER BY kind")
        .unwrap();
    assert_eq!(rs.len(), 2); // body, fastener
}

#[test]
fn global_aggregates_and_empty_input() {
    let db = fixture();
    let rs = db
        .query("SELECT COUNT(*), AVG(weight), MAX(qty) FROM part")
        .unwrap();
    assert_eq!(int(rs.rows[0].get(0)), 6);
    assert!((f64_of(rs.rows[0].get(1)) - 36.265).abs() < 1e-3);
    assert_eq!(int(rs.rows[0].get(2)), 500);

    // empty input: COUNT = 0, others NULL
    let rs = db
        .query("SELECT COUNT(*), SUM(qty), AVG(weight) FROM part WHERE id > 99")
        .unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(int(rs.rows[0].get(0)), 0);
    assert!(rs.rows[0].get(1).is_null());
    assert!(rs.rows[0].get(2).is_null());
}

#[test]
fn count_skips_nulls_but_count_star_does_not() {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (x INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (NULL), (3), (NULL)")
        .unwrap();
    let rs = db
        .query("SELECT COUNT(*), COUNT(x), SUM(x) FROM t")
        .unwrap();
    assert_eq!(int(rs.rows[0].get(0)), 4);
    assert_eq!(int(rs.rows[0].get(1)), 2);
    assert_eq!(int(rs.rows[0].get(2)), 4);
}

#[test]
fn left_join_pads_unmatched() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT part.name, bin.shelf FROM part LEFT JOIN bin \
             ON part.id = bin.part_id ORDER BY 1",
        )
        .unwrap();
    assert_eq!(rs.len(), 6);
    let shelves = rs.column_values("shelf").unwrap();
    let nulls = shelves.iter().filter(|v| v.is_null()).count();
    assert_eq!(nulls, 2); // door, washer unbinned
}

#[test]
fn inner_join_with_post_filter() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT part.name FROM part JOIN bin ON part.id = bin.part_id \
             WHERE bin.shelf = 'A' ORDER BY 1",
        )
        .unwrap();
    assert_eq!(
        rs.column_values("name").unwrap(),
        vec![Value::Text("bolt".into()), Value::Text("nut".into())]
    );
}

#[test]
fn cross_join_via_comma() {
    let db = fixture();
    let rs = db.query("SELECT COUNT(*) FROM part, bin").unwrap();
    assert_eq!(int(rs.rows[0].get(0)), 24);
}

#[test]
fn derived_tables() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT d.kind, d.n FROM \
             (SELECT kind, COUNT(*) AS n FROM part GROUP BY kind) AS d \
             WHERE d.n > 1 ORDER BY 1",
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
}

#[test]
fn scalar_subquery_in_projection_and_where() {
    let db = fixture();
    let rs = db
        .query("SELECT name FROM part WHERE weight > (SELECT AVG(weight) FROM part)")
        .unwrap();
    assert_eq!(rs.len(), 1); // engine (180 > 36.265)
    let rs = db
        .query("SELECT name, (SELECT MAX(qty) FROM part) AS peak FROM part WHERE id = 1")
        .unwrap();
    assert_eq!(int(rs.rows[0].get(1)), 500);
}

#[test]
fn correlated_exists_and_not_exists() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT name FROM part WHERE EXISTS \
             (SELECT * FROM bin WHERE bin.part_id = part.id) ORDER BY 1",
        )
        .unwrap();
    assert_eq!(rs.len(), 4);
    let rs = db
        .query(
            "SELECT name FROM part WHERE NOT EXISTS \
             (SELECT * FROM bin WHERE bin.part_id = part.id) ORDER BY 1",
        )
        .unwrap();
    assert_eq!(
        rs.column_values("name").unwrap(),
        vec![Value::Text("door".into()), Value::Text("washer".into())]
    );
}

#[test]
fn correlated_exists_decorrelates_to_semijoin() {
    let db = fixture();
    let (rs, stats) = db
        .query_with_stats(
            "SELECT name FROM part WHERE EXISTS \
             (SELECT * FROM bin WHERE bin.part_id = part.id)",
        )
        .unwrap();
    assert_eq!(rs.len(), 4);
    assert_eq!(stats.decorrelated_semijoins, 1);
    // inner query ran at most twice (detection + set build), not once per row
    assert!(
        stats.subquery_evals <= 2,
        "evals = {}",
        stats.subquery_evals
    );
}

#[test]
fn in_subquery_and_not_in() {
    let db = fixture();
    let rs = db
        .query("SELECT name FROM part WHERE id IN (SELECT part_id FROM bin) ORDER BY 1")
        .unwrap();
    assert_eq!(rs.len(), 4);
    let rs = db
        .query("SELECT name FROM part WHERE id NOT IN (SELECT part_id FROM bin) ORDER BY 1")
        .unwrap();
    assert_eq!(rs.len(), 2);
}

#[test]
fn not_in_with_null_in_set_is_empty() {
    let mut db = fixture();
    db.execute("INSERT INTO bin VALUES (NULL, 'Z')").unwrap();
    // NOT IN against a set containing NULL is never true (three-valued logic)
    let rs = db
        .query("SELECT name FROM part WHERE id NOT IN (SELECT part_id FROM bin)")
        .unwrap();
    assert!(rs.is_empty());
}

#[test]
fn distinct_and_order_and_limit() {
    let db = fixture();
    let rs = db
        .query("SELECT DISTINCT kind FROM part ORDER BY 1")
        .unwrap();
    assert_eq!(rs.len(), 3);
    let rs = db
        .query("SELECT name FROM part ORDER BY weight DESC LIMIT 2")
        .unwrap();
    assert_eq!(
        rs.column_values("name").unwrap(),
        vec![Value::Text("engine".into()), Value::Text("door".into())]
    );
}

#[test]
fn order_by_output_column_name() {
    let db = fixture();
    let rs = db
        .query("SELECT name AS n, qty FROM part ORDER BY qty DESC LIMIT 1")
        .unwrap();
    assert_eq!(rs.rows[0].get(0), &Value::Text("washer".into()));
}

#[test]
fn case_expression_in_projection() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT name, CASE WHEN weight > 100 THEN 'heavy' \
             WHEN weight > 1 THEN 'medium' ELSE 'light' END AS class \
             FROM part ORDER BY id",
        )
        .unwrap();
    let classes = rs.column_values("class").unwrap();
    assert_eq!(classes[0], Value::Text("light".into())); // bolt
    assert_eq!(classes[2], Value::Text("medium".into())); // panel
    assert_eq!(classes[4], Value::Text("heavy".into())); // engine
}

#[test]
fn views_compose_with_queries() {
    let mut db = fixture();
    db.execute("CREATE VIEW fasteners AS SELECT * FROM part WHERE kind = 'fastener'")
        .unwrap();
    let rs = db.query("SELECT COUNT(*) FROM fasteners").unwrap();
    assert_eq!(int(rs.rows[0].get(0)), 3);
    // view joined with a base table
    let rs = db
        .query(
            "SELECT fasteners.name FROM fasteners JOIN bin \
             ON fasteners.id = bin.part_id ORDER BY 1",
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
    // view of a view
    db.execute("CREATE VIEW light_fasteners AS SELECT * FROM fasteners WHERE weight < 0.04")
        .unwrap();
    let rs = db.query("SELECT COUNT(*) FROM light_fasteners").unwrap();
    assert_eq!(int(rs.rows[0].get(0)), 2);
}

#[test]
fn union_of_different_tables_homogenized() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT name AS label FROM part WHERE kind = 'power' \
             UNION SELECT shelf FROM bin ORDER BY 1",
        )
        .unwrap();
    // engine + shelves A, B, C (deduped)
    assert_eq!(rs.len(), 4);
}

#[test]
fn between_and_in_list_filters() {
    let db = fixture();
    let rs = db
        .query("SELECT name FROM part WHERE qty BETWEEN 2 AND 100 ORDER BY 1")
        .unwrap();
    assert_eq!(rs.len(), 3); // bolt 100, panel 4, door 2
    let rs = db
        .query("SELECT name FROM part WHERE kind IN ('body', 'power') ORDER BY 1")
        .unwrap();
    assert_eq!(rs.len(), 3);
}

#[test]
fn string_concat_and_functions() {
    let db = fixture();
    let rs = db
        .query("SELECT UPPER(name) || '-' || kind AS tag FROM part WHERE id = 1")
        .unwrap();
    assert_eq!(rs.rows[0].get(0), &Value::Text("BOLT-fastener".into()));
}

#[test]
fn arithmetic_in_projection_and_where() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT name, weight * qty AS total_weight FROM part \
                WHERE weight * qty > 100 ORDER BY 2 DESC",
        )
        .unwrap();
    assert_eq!(rs.rows[0].get(0), &Value::Text("engine".into()));
}

#[test]
fn delete_and_drop() {
    let mut db = fixture();
    let out = db.execute("DELETE FROM bin WHERE shelf = 'A'").unwrap();
    assert_eq!(out, ExecOutcome::Dml(DmlOutcome::Deleted(2)));
    let rs = db.query("SELECT COUNT(*) FROM bin").unwrap();
    assert_eq!(int(rs.rows[0].get(0)), 2);
    db.execute("DROP TABLE bin").unwrap();
    assert!(matches!(db.query("SELECT * FROM bin"), Err(Error::Bind(_))));
}

#[test]
fn update_with_arithmetic_and_predicate() {
    let mut db = fixture();
    db.execute("UPDATE part SET qty = qty * 2 WHERE kind = 'fastener'")
        .unwrap();
    let rs = db
        .query("SELECT SUM(qty) FROM part WHERE kind = 'fastener'")
        .unwrap();
    assert_eq!(int(rs.rows[0].get(0)), 1600);
}

#[test]
fn multi_cte_with_clause() {
    let db = fixture();
    let rs = db
        .query(
            "WITH heavy AS (SELECT * FROM part WHERE weight > 10), \
                  binned AS (SELECT part_id FROM bin) \
             SELECT heavy.name FROM heavy \
             WHERE heavy.id IN (SELECT part_id FROM binned) ORDER BY 1",
        )
        .unwrap();
    assert_eq!(
        rs.column_values("name").unwrap(),
        vec![Value::Text("engine".into()), Value::Text("panel".into())]
    );
}

#[test]
fn cte_referencing_earlier_cte() {
    let db = fixture();
    let rs = db
        .query(
            "WITH f AS (SELECT * FROM part WHERE kind = 'fastener'), \
                  cheap AS (SELECT * FROM f WHERE weight < 0.04) \
             SELECT COUNT(*) FROM cheap",
        )
        .unwrap();
    assert_eq!(int(rs.rows[0].get(0)), 2);
}

#[test]
fn recursive_cte_union_all_counts_paths() {
    // A small DAG where node 3 is reachable via two paths: UNION ALL keeps
    // both derivations, UNION collapses them.
    let mut db = Database::new();
    db.execute("CREATE TABLE e (src INTEGER, dst INTEGER)")
        .unwrap();
    for (a, b) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
        db.execute(&format!("INSERT INTO e VALUES ({a}, {b})"))
            .unwrap();
    }
    let rs = db
        .query(
            "WITH RECURSIVE r (n) AS (SELECT 0 UNION ALL \
             SELECT e.dst FROM r JOIN e ON r.n = e.src) SELECT n FROM r",
        )
        .unwrap();
    assert_eq!(rs.len(), 5); // 0, 1, 2, 3, 3
    let rs = db
        .query(
            "WITH RECURSIVE r (n) AS (SELECT 0 UNION \
             SELECT e.dst FROM r JOIN e ON r.n = e.src) SELECT n FROM r",
        )
        .unwrap();
    assert_eq!(rs.len(), 4);
}

#[test]
fn recursive_cycle_terminates_with_union_and_errors_with_all() {
    let mut db = Database::new();
    db.execute("CREATE TABLE e (src INTEGER, dst INTEGER)")
        .unwrap();
    db.execute("INSERT INTO e VALUES (0, 1), (1, 0)").unwrap();
    // UNION dedup closes the cycle
    let rs = db
        .query(
            "WITH RECURSIVE r (n) AS (SELECT 0 UNION \
             SELECT e.dst FROM r JOIN e ON r.n = e.src) SELECT n FROM r ORDER BY 1",
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
    // UNION ALL on a cycle hits the iteration guard
    let mut db2 = Database::new();
    db2.config.recursion_limit = 50;
    db2.execute("CREATE TABLE e (src INTEGER, dst INTEGER)")
        .unwrap();
    db2.execute("INSERT INTO e VALUES (0, 1), (1, 0)").unwrap();
    let err = db2
        .query(
            "WITH RECURSIVE r (n) AS (SELECT 0 UNION ALL \
             SELECT e.dst FROM r JOIN e ON r.n = e.src) SELECT n FROM r",
        )
        .unwrap_err();
    assert!(matches!(err, Error::RecursionLimit(50)));
}

#[test]
fn error_reporting_quality() {
    let db = fixture();
    // unknown column names the column
    let err = db.query("SELECT nope FROM part").unwrap_err();
    assert!(err.to_string().contains("nope"));
    // unknown table names the table
    let err = db.query("SELECT * FROM missing").unwrap_err();
    assert!(err.to_string().contains("missing"));
    // ambiguous column reported as such
    let err = db
        .query("SELECT id FROM part JOIN part AS p2 ON part.id = p2.id")
        .unwrap_err();
    assert!(err.to_string().contains("ambiguous"));
    // scalar subquery with two rows
    let err = db
        .query("SELECT (SELECT id FROM part WHERE kind = 'body') FROM part")
        .unwrap_err();
    assert!(err.to_string().contains("2 rows"));
    // union arity mismatch
    let err = db
        .query("SELECT id FROM part UNION SELECT id, name FROM part")
        .unwrap_err();
    assert!(err.to_string().contains("arity"));
}

#[test]
fn self_join_with_aliases() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT a.name, b.name FROM part AS a JOIN part AS b \
             ON a.kind = b.kind WHERE a.id < b.id ORDER BY 1, 2",
        )
        .unwrap();
    // fastener pairs: (bolt,nut), (bolt,washer), (nut,washer); body: (panel,door)
    assert_eq!(rs.len(), 4);
}

#[test]
fn is_null_filters() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT part.name FROM part LEFT JOIN bin ON part.id = bin.part_id \
             WHERE bin.shelf IS NULL ORDER BY 1",
        )
        .unwrap();
    assert_eq!(rs.len(), 2);
}

#[test]
fn insert_multi_row_and_select_star_shapes() {
    let mut db = fixture();
    let out = db
        .execute("INSERT INTO bin VALUES (4, 'D'), (6, 'D')")
        .unwrap();
    assert_eq!(out, ExecOutcome::Dml(DmlOutcome::Inserted(2)));
    let rs = db.query("SELECT * FROM bin WHERE shelf = 'D'").unwrap();
    assert_eq!(rs.schema.names(), vec!["part_id", "shelf"]);
    assert_eq!(rs.len(), 2);
}

#[test]
fn qualified_wildcard_projection() {
    let db = fixture();
    let rs = db
        .query(
            "SELECT bin.*, part.name FROM part JOIN bin ON part.id = bin.part_id \
             WHERE bin.shelf = 'C'",
        )
        .unwrap();
    assert_eq!(rs.schema.names(), vec!["part_id", "shelf", "name"]);
    assert_eq!(rs.rows[0].get(2), &Value::Text("engine".into()));
}

#[test]
fn aggregate_of_expression_and_group_by_expression() {
    let db = fixture();
    let rs = db
        .query("SELECT SUM(weight * qty) FROM part WHERE kind = 'fastener'")
        .unwrap();
    // 0.05*100 + 0.03*200 + 0.01*500 = 5 + 6 + 5 = 16
    assert!((f64_of(rs.rows[0].get(0)) - 16.0).abs() < 1e-9);
}

#[test]
fn like_pattern_matching() {
    let db = fixture();
    let rs = db
        .query("SELECT name FROM part WHERE name LIKE '%ol%' ORDER BY 1")
        .unwrap();
    assert_eq!(rs.len(), 1); // bolt
    let rs = db
        .query("SELECT name FROM part WHERE name LIKE '_ut' ORDER BY 1")
        .unwrap();
    assert_eq!(
        rs.column_values("name").unwrap(),
        vec![Value::Text("nut".into())]
    );
    let rs = db
        .query("SELECT COUNT(*) FROM part WHERE kind NOT LIKE 'fast%'")
        .unwrap();
    assert_eq!(int(rs.rows[0].get(0)), 3);
    // NULL propagates
    let mut db2 = pdm_sql::Database::new();
    db2.execute("CREATE TABLE t (s VARCHAR)").unwrap();
    db2.execute("INSERT INTO t VALUES (NULL)").unwrap();
    let rs = db2.query("SELECT * FROM t WHERE s LIKE '%'").unwrap();
    assert!(rs.is_empty());
}

#[test]
fn like_edge_patterns() {
    use pdm_sql::exec::expr::like_match;
    assert!(like_match("", ""));
    assert!(like_match("", "%"));
    assert!(!like_match("", "_"));
    assert!(like_match("abc", "abc"));
    assert!(like_match("abc", "a%"));
    assert!(like_match("abc", "%c"));
    assert!(like_match("abc", "a_c"));
    assert!(like_match("abc", "%%%"));
    assert!(!like_match("abc", "a_"));
    assert!(like_match("aXbXc", "a%b%c"));
    assert!(!like_match("abc", "abcd%e"));
    assert!(like_match("N00000012", "N0000001_"));
}

#[test]
fn results_invariant_under_executor_ablations() {
    // Flipping the optimizer switches must never change results — only how
    // they are computed (the ablation binaries rely on this).
    let queries = [
        "SELECT name FROM part WHERE EXISTS (SELECT * FROM bin WHERE bin.part_id = part.id) ORDER BY 1",
        "SELECT kind, COUNT(*) AS n FROM part GROUP BY kind ORDER BY 1",
        "SELECT part.name FROM part JOIN bin ON part.id = bin.part_id WHERE bin.shelf = 'A' ORDER BY 1",
        "SELECT name FROM part WHERE weight > (SELECT AVG(weight) FROM part) ORDER BY 1",
    ];
    let reference = fixture();
    for (cache, semijoin, pushdown) in [
        (false, true, true),
        (true, false, true),
        (true, true, false),
        (false, false, false),
    ] {
        let mut db = fixture();
        db.config.subquery_cache = cache;
        db.config.semijoin_decorrelation = semijoin;
        db.config.index_pushdown = pushdown;
        for q in queries {
            assert_eq!(
                reference.query(q).unwrap().rows,
                db.query(q).unwrap().rows,
                "ablation ({cache},{semijoin},{pushdown}) changed results of {q}"
            );
        }
    }
}
