#![allow(clippy::unwrap_used)]

//! Regression tests pinning the storage-sharing hazards found while
//! migrating the executor from `Rc`/`RefCell` to `Arc` snapshots.
//!
//! The executor shares materialized relations (`Arc<RelRows>` for CTEs,
//! views, derived tables; `Arc<Table>` for base storage) freely *within*
//! one statement. The invariant these tests pin is that none of that
//! sharing escapes a statement boundary: every statement sees exactly the
//! catalog state published before it, and nothing a statement returned can
//! be mutated by a later one.

use pdm_sql::{Database, SharedDatabase, Value};

fn db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        .unwrap();
    db
}

/// Hazard 1: a returned `ResultSet` borrowing table storage would be
/// corrupted by later DML. Results must be value-independent of storage.
#[test]
fn returned_rows_survive_later_dml() {
    let mut d = db();
    let before = d.query("SELECT a, b FROM t ORDER BY a").unwrap();
    d.execute("UPDATE t SET b = 'clobbered'").unwrap();
    d.execute("DELETE FROM t WHERE a >= 2").unwrap();
    assert_eq!(before.len(), 3);
    assert_eq!(before.rows[1].get(1), &Value::Text("y".into()));
}

/// Hazard 2: `Database` clones share `Arc<Table>` storage; a write through
/// one clone must copy-on-write, never mutate the shared rows.
#[test]
fn cloned_database_is_isolated() {
    let mut original = db();
    let mut clone = original.clone();

    clone
        .execute("UPDATE t SET b = 'theirs' WHERE a = 1")
        .unwrap();
    original
        .execute("UPDATE t SET b = 'mine' WHERE a = 1")
        .unwrap();

    let theirs = clone.query("SELECT b FROM t WHERE a = 1").unwrap();
    let mine = original.query("SELECT b FROM t WHERE a = 1").unwrap();
    assert_eq!(theirs.rows[0].get(0), &Value::Text("theirs".into()));
    assert_eq!(mine.rows[0].get(0), &Value::Text("mine".into()));
}

/// Hazard 2b: index builds are writes too — `CREATE INDEX` through a clone
/// must not install the index into the shared table of the original.
#[test]
fn index_creation_copies_on_write() {
    let original = db();
    let mut clone = original.clone();
    clone.execute("CREATE INDEX ON t (a)").unwrap();

    let (_, stats) = clone
        .query_with_stats("SELECT * FROM t WHERE a = 2")
        .unwrap();
    assert_eq!(stats.index_probes, 1, "clone uses its new index");
    let (_, stats) = original
        .query_with_stats("SELECT * FROM t WHERE a = 2")
        .unwrap();
    assert_eq!(stats.index_probes, 0, "original must not see the index");
}

/// Hazard 3: a CTE binding (`Arc<RelRows>`) must not shadow catalog names
/// past its own statement.
#[test]
fn cte_binding_does_not_leak_across_statements() {
    let mut d = db();
    let rs = d
        .query("WITH shadow AS (SELECT a FROM t WHERE a = 1) SELECT * FROM shadow")
        .unwrap();
    assert_eq!(rs.len(), 1);
    // The binding is gone: 'shadow' is now resolvable as a fresh table.
    d.execute("CREATE TABLE shadow (a INTEGER)").unwrap();
    d.execute("INSERT INTO shadow VALUES (41), (42)").unwrap();
    let rs = d.query("SELECT * FROM shadow ORDER BY a").unwrap();
    assert_eq!(rs.len(), 2);
    assert_eq!(rs.rows[1].get(0), &Value::Int(42));
}

/// Hazard 4: the uncorrelated-subquery cache is per-execution. Re-running
/// a statement must re-evaluate its subqueries against current storage —
/// a cache entry surviving the statement would serve stale rows after DML.
#[test]
fn subquery_cache_does_not_survive_the_statement() {
    let mut d = db();
    d.execute("CREATE TABLE s (v INTEGER)").unwrap();
    d.execute("INSERT INTO s VALUES (1)").unwrap();

    let sql = "SELECT a FROM t WHERE a IN (SELECT v FROM s) ORDER BY a";
    let (rs, stats) = d.query_with_stats(sql).unwrap();
    assert_eq!(rs.len(), 1);
    assert!(stats.subquery_evals >= 1);

    d.execute("INSERT INTO s VALUES (2), (3)").unwrap();
    let (rs, stats) = d.query_with_stats(sql).unwrap();
    assert_eq!(rs.len(), 3, "second run must see the new subquery rows");
    assert!(
        stats.subquery_evals >= 1,
        "subquery re-evaluated, not reused"
    );
}

/// Hazard 5: a view materialization (`Arc<RelRows>`) captured during one
/// statement must not be reused by the next — views re-evaluate against
/// current storage every time.
#[test]
fn view_rows_reevaluate_per_statement() {
    let mut d = db();
    d.execute("CREATE VIEW big AS SELECT a FROM t WHERE a >= 2")
        .unwrap();
    assert_eq!(d.query("SELECT * FROM big").unwrap().len(), 2);
    d.execute("INSERT INTO t VALUES (9, 'new')").unwrap();
    assert_eq!(d.query("SELECT * FROM big").unwrap().len(), 3);
}

/// Hazard 6: an old snapshot's hash indexes must keep matching the old
/// rows after the current version rebuilt them (index + rows move
/// together under copy-on-write).
#[test]
fn snapshot_index_stays_consistent_with_its_rows() {
    let mut d = db();
    d.execute("CREATE INDEX ON t (b)").unwrap();
    let shared = SharedDatabase::new(d);

    let old = shared.snapshot();
    shared
        .execute("UPDATE t SET b = 'moved' WHERE a = 1")
        .unwrap();

    // Old snapshot: index probe for the old value still finds the row.
    let rs = old.query("SELECT a FROM t WHERE b = 'x'").unwrap();
    assert_eq!(rs.len(), 1);
    assert_eq!(rs.rows[0].get(0), &Value::Int(1));
    // Current snapshot: the row moved.
    let rs = shared.query("SELECT a FROM t WHERE b = 'x'").unwrap();
    assert_eq!(rs.len(), 0);
    let rs = shared.query("SELECT a FROM t WHERE b = 'moved'").unwrap();
    assert_eq!(rs.len(), 1);
}
