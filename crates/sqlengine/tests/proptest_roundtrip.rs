#![allow(clippy::unwrap_used)]

//! Query-level print→parse round-trip property: for any generated [`Query`]
//! AST, `parse_query(q.to_string()) == q`.
//!
//! The expression-level round-trip lives in `proptest_engine.rs`; this file
//! exercises the *structural* SQL surface the PDM generators and the query
//! modificator emit: set operations, joins, derived tables, (recursive)
//! CTEs, DISTINCT, GROUP BY / HAVING, ORDER BY ordinals, and LIMIT. The
//! modificator edits ASTs that are later rendered, shipped, and re-parsed
//! server-side, so any asymmetry here silently corrupts rule predicates in
//! transit.

use pdm_prng::check::cases;
use pdm_prng::Prng;

use pdm_sql::ast::{
    BinOp, Cte, Expr, Join, JoinKind, OrderItem, Query, Select, SelectItem, SetExpr, SetOp,
    TableFactor, TableWithJoins, With,
};
use pdm_sql::parser::parse_query;
use pdm_sql::Value;

/// Every parser-reserved word, plus tokens that are contextual keywords in
/// some positions — generated identifiers must avoid all of them for the
/// rendered SQL to tokenize back the same way.
const AVOID: &[&str] = &[
    "select",
    "distinct",
    "from",
    "where",
    "group",
    "having",
    "order",
    "limit",
    "union",
    "intersect",
    "except",
    "join",
    "left",
    "inner",
    "on",
    "as",
    "and",
    "or",
    "not",
    "in",
    "exists",
    "between",
    "is",
    "null",
    "true",
    "false",
    "cast",
    "case",
    "when",
    "then",
    "else",
    "end",
    "set",
    "values",
    "desc",
    "asc",
    "by",
    "with",
    "recursive",
    "insert",
    "into",
    "like",
    "update",
    "delete",
    "create",
    "table",
    "view",
    "index",
    "drop",
    "all",
];

fn arb_ident(rng: &mut Prng) -> String {
    loop {
        let s = rng.ident(1, 6);
        if !AVOID.contains(&s.as_str()) {
            return s;
        }
    }
}

fn arb_literal(rng: &mut Prng) -> Expr {
    match rng.index(4) {
        0 => Expr::Literal(Value::Int(rng.i64_inclusive(-10_000, 10_000))),
        1 => {
            let len = rng.usize_inclusive(0, 5);
            let s: String = (0..len)
                .map(|_| (b'a' + rng.index(26) as u8) as char)
                .collect();
            Expr::Literal(Value::Text(s))
        }
        2 => Expr::Literal(Value::Bool(rng.bool())),
        _ => Expr::Literal(Value::Null),
    }
}

fn arb_column(rng: &mut Prng) -> Expr {
    Expr::Column {
        qualifier: rng.bool().then(|| arb_ident(rng)),
        name: arb_ident(rng),
    }
}

/// Scalar expressions restricted to comparison/boolean structure — the
/// shapes rule translation produces.
fn arb_expr(rng: &mut Prng, depth: u32) -> Expr {
    if depth == 0 || rng.index(3) == 0 {
        return if rng.bool() {
            arb_literal(rng)
        } else {
            arb_column(rng)
        };
    }
    const OPS: &[BinOp] = &[
        BinOp::Eq,
        BinOp::NotEq,
        BinOp::Lt,
        BinOp::LtEq,
        BinOp::Gt,
        BinOp::GtEq,
        BinOp::And,
        BinOp::Or,
    ];
    match rng.index(3) {
        0 => Expr::BinaryOp {
            left: Box::new(arb_expr(rng, depth - 1)),
            op: OPS[rng.index(OPS.len())],
            right: Box::new(arb_expr(rng, depth - 1)),
        },
        1 => Expr::Not(Box::new(arb_expr(rng, depth - 1))),
        _ => Expr::IsNull {
            expr: Box::new(arb_expr(rng, depth - 1)),
            negated: rng.bool(),
        },
    }
}

fn arb_factor(rng: &mut Prng, depth: u32) -> TableFactor {
    if depth > 0 && rng.index(4) == 0 {
        TableFactor::Derived {
            subquery: Box::new(arb_query(rng, depth - 1, false)),
            alias: arb_ident(rng),
        }
    } else {
        TableFactor::Table {
            name: arb_ident(rng),
            alias: rng.bool().then(|| arb_ident(rng)),
        }
    }
}

fn arb_select(rng: &mut Prng, depth: u32) -> Select {
    let mut sel = Select::new();
    sel.distinct = rng.index(4) == 0;

    if rng.index(8) == 0 {
        sel.projection = vec![SelectItem::Wildcard];
    } else {
        let n = rng.usize_inclusive(1, 3);
        sel.projection = (0..n)
            .map(|_| {
                let e = arb_expr(rng, 1);
                if rng.bool() {
                    SelectItem::aliased(e, arb_ident(rng))
                } else {
                    SelectItem::expr(e)
                }
            })
            .collect();
    }

    let mut twj = TableWithJoins {
        base: arb_factor(rng, depth),
        joins: Vec::new(),
    };
    for _ in 0..rng.usize_inclusive(0, 2) {
        twj.joins.push(Join {
            kind: if rng.bool() {
                JoinKind::Inner
            } else {
                JoinKind::Left
            },
            factor: arb_factor(rng, 0),
            on: Some(arb_expr(rng, 1)),
        });
    }
    sel.from.push(twj);

    if rng.bool() {
        sel.where_clause = Some(arb_expr(rng, 2));
    }
    if rng.index(4) == 0 {
        let n = rng.usize_inclusive(1, 2);
        sel.group_by = (0..n).map(|_| arb_column(rng)).collect();
        if rng.bool() {
            sel.having = Some(arb_expr(rng, 1));
        }
    }
    sel
}

fn arb_setexpr(rng: &mut Prng, depth: u32) -> SetExpr {
    if depth > 0 && rng.index(3) == 0 {
        let op = match rng.index(3) {
            0 => SetOp::Union,
            1 => SetOp::Intersect,
            _ => SetOp::Except,
        };
        SetExpr::SetOp {
            op,
            all: op == SetOp::Union && rng.bool(),
            left: Box::new(arb_setexpr(rng, depth - 1)),
            right: Box::new(arb_setexpr(rng, depth - 1)),
        }
    } else {
        SetExpr::Select(Box::new(arb_select(rng, depth)))
    }
}

fn arb_query(rng: &mut Prng, depth: u32, allow_with: bool) -> Query {
    let with = (allow_with && rng.index(3) == 0).then(|| {
        let n_cols = rng.usize_inclusive(0, 3);
        With {
            recursive: rng.bool(),
            ctes: vec![Cte {
                name: arb_ident(rng),
                columns: (0..n_cols).map(|_| arb_ident(rng)).collect(),
                query: arb_query(rng, depth.saturating_sub(1), false),
            }],
        }
    });
    let order_by = if rng.index(4) == 0 {
        (0..rng.usize_inclusive(1, 2))
            .map(|_| OrderItem {
                expr: Expr::Literal(Value::Int(rng.i64_inclusive(1, 3))),
                desc: rng.bool(),
            })
            .collect()
    } else {
        Vec::new()
    };
    Query {
        with,
        body: arb_setexpr(rng, depth),
        order_by,
        limit: (rng.index(4) == 0).then(|| rng.i64_inclusive(0, 1000) as u64),
    }
}

#[test]
fn query_round_trips_through_parser() {
    cases("query_round_trip", 384, 0x51, |rng| {
        let q = arb_query(rng, 2, true);
        let sql = q.to_string();
        let reparsed =
            parse_query(&sql).unwrap_or_else(|err| panic!("'{sql}' failed to parse: {err}"));
        assert_eq!(q, reparsed, "round-trip mismatch for: {sql}");
    });
}
