//! Recursive-descent parser for the supported SQL subset.
//!
//! Covers everything the paper's queries need: `WITH RECURSIVE`, `UNION
//! [ALL]`, joins with `ON`, `EXISTS` / `NOT EXISTS` / `IN` subqueries, scalar
//! subqueries, aggregates, `CAST`, `CASE`, `ORDER BY`, plus the DML/DDL used
//! by the PDM server (INSERT / UPDATE / DELETE / CREATE TABLE / CREATE VIEW /
//! CREATE INDEX / DROP TABLE).

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::{tokenize, Token};
use crate::value::{DataType, Value};

/// Keywords that terminate an expression or cannot serve as implicit aliases.
const RESERVED: &[&str] = &[
    "select",
    "distinct",
    "from",
    "where",
    "group",
    "having",
    "order",
    "limit",
    "union",
    "intersect",
    "except",
    "join",
    "left",
    "inner",
    "on",
    "as",
    "and",
    "or",
    "not",
    "in",
    "exists",
    "between",
    "is",
    "null",
    "true",
    "false",
    "cast",
    "case",
    "when",
    "then",
    "else",
    "end",
    "set",
    "values",
    "desc",
    "asc",
    "by",
    "with",
    "recursive",
    "insert",
    "into",
    "like",
    "update",
    "delete",
    "create",
    "table",
    "view",
    "index",
    "drop",
];

/// Parse a single SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.eat_symbol(&Token::Semicolon);
    if !p.at_end() {
        return Err(Error::Parse(format!(
            "unexpected trailing input at token {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

/// Parse a query (SELECT / WITH ...), rejecting DML/DDL.
pub fn parse_query(sql: &str) -> Result<Query> {
    match parse_statement(sql)? {
        Statement::Query(q) => Ok(q),
        other => Err(Error::Parse(format!("expected a query, got {other}"))),
    }
}

/// Parse a standalone scalar/boolean expression (used by tests and the rule
/// translator round-trip checks).
pub fn parse_expr(sql: &str) -> Result<Expr> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_expr()?;
    if !p.at_end() {
        return Err(Error::Parse("trailing input after expression".into()));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(t) if t.is_kw(kw))
    }

    /// Consume keyword `kw` if present; report whether it was.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected keyword {} but found {:?}",
                kw.to_uppercase(),
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, tok: &Token) -> Result<()> {
        if self.eat_symbol(tok) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {tok:?} but found {:?}",
                self.peek()
            )))
        }
    }

    /// Any identifier (quoted or not); errors otherwise.
    fn expect_ident(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::QuotedIdent(s)) => Ok(s.to_ascii_lowercase()),
            other => Err(Error::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    // -- statements ---------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.peek_kw("select") || self.peek_kw("with") || self.peek() == Some(&Token::LParen) {
            return Ok(Statement::Query(self.parse_query()?));
        }
        if self.eat_kw("insert") {
            return self.parse_insert();
        }
        if self.eat_kw("update") {
            return self.parse_update();
        }
        if self.eat_kw("delete") {
            return self.parse_delete();
        }
        if self.eat_kw("create") {
            return self.parse_create();
        }
        if self.eat_kw("drop") {
            self.expect_kw("table")?;
            let name = self.expect_ident()?;
            return Ok(Statement::DropTable { name });
        }
        Err(Error::Parse(format!(
            "unrecognized statement start: {:?}",
            self.peek()
        )))
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.expect_ident()?;
        let columns = if self.peek() == Some(&Token::LParen) {
            self.expect_symbol(&Token::LParen)?;
            let mut cols = vec![self.expect_ident()?];
            while self.eat_symbol(&Token::Comma) {
                cols.push(self.expect_ident()?);
            }
            self.expect_symbol(&Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(&Token::LParen)?;
            let mut row = vec![self.parse_expr()?];
            while self.eat_symbol(&Token::Comma) {
                row.push(self.parse_expr()?);
            }
            self.expect_symbol(&Token::RParen)?;
            rows.push(row);
            if !self.eat_symbol(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn parse_update(&mut self) -> Result<Statement> {
        let table = self.expect_ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_symbol(&Token::Eq)?;
            let e = self.parse_expr()?;
            assignments.push((col, e));
            if !self.eat_symbol(&Token::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            predicate,
        })
    }

    fn parse_delete(&mut self) -> Result<Statement> {
        self.expect_kw("from")?;
        let table = self.expect_ident()?;
        let predicate = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    fn parse_create(&mut self) -> Result<Statement> {
        if self.eat_kw("table") {
            let name = self.expect_ident()?;
            self.expect_symbol(&Token::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col_name = self.expect_ident()?;
                let dtype = self.parse_data_type()?;
                let mut nullable = true;
                if self.eat_kw("not") {
                    self.expect_kw("null")?;
                    nullable = false;
                }
                columns.push(ColumnDef {
                    name: col_name,
                    dtype,
                    nullable,
                });
                if !self.eat_symbol(&Token::Comma) {
                    break;
                }
            }
            self.expect_symbol(&Token::RParen)?;
            Ok(Statement::CreateTable { name, columns })
        } else if self.eat_kw("view") {
            let name = self.expect_ident()?;
            self.expect_kw("as")?;
            let query = self.parse_query()?;
            Ok(Statement::CreateView { name, query })
        } else if self.eat_kw("index") {
            self.expect_kw("on")?;
            let table = self.expect_ident()?;
            self.expect_symbol(&Token::LParen)?;
            let column = self.expect_ident()?;
            self.expect_symbol(&Token::RParen)?;
            Ok(Statement::CreateIndex { table, column })
        } else {
            Err(Error::Parse(
                "expected TABLE, VIEW, or INDEX after CREATE".into(),
            ))
        }
    }

    fn parse_data_type(&mut self) -> Result<DataType> {
        let name = self.expect_ident()?;
        let dt = match name.as_str() {
            "int" | "integer" | "bigint" | "smallint" => DataType::Int,
            "double" | "float" | "real" | "decimal" | "numeric" => DataType::Float,
            "varchar" | "char" | "text" | "string" => DataType::Text,
            "boolean" | "bool" => DataType::Bool,
            other => return Err(Error::Parse(format!("unknown data type '{other}'"))),
        };
        // swallow optional length like VARCHAR(40)
        if self.eat_symbol(&Token::LParen) {
            while !self.eat_symbol(&Token::RParen) {
                if self.advance().is_none() {
                    return Err(Error::Parse("unterminated type parameter list".into()));
                }
            }
        }
        Ok(dt)
    }

    // -- queries ------------------------------------------------------------

    fn parse_query(&mut self) -> Result<Query> {
        let with = if self.eat_kw("with") {
            let recursive = self.eat_kw("recursive");
            let mut ctes = Vec::new();
            loop {
                let name = self.expect_ident()?;
                let mut columns = Vec::new();
                if self.eat_symbol(&Token::LParen) {
                    columns.push(self.expect_ident()?);
                    while self.eat_symbol(&Token::Comma) {
                        columns.push(self.expect_ident()?);
                    }
                    self.expect_symbol(&Token::RParen)?;
                }
                self.expect_kw("as")?;
                self.expect_symbol(&Token::LParen)?;
                let query = self.parse_query()?;
                self.expect_symbol(&Token::RParen)?;
                ctes.push(Cte {
                    name,
                    columns,
                    query,
                });
                if !self.eat_symbol(&Token::Comma) {
                    break;
                }
            }
            Some(With { recursive, ctes })
        } else {
            None
        };

        let body = self.parse_set_expr()?;

        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_symbol(&Token::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("limit") {
            match self.advance() {
                Some(Token::Int(n)) if n >= 0 => Some(n as u64),
                other => return Err(Error::Parse(format!("expected LIMIT count, got {other:?}"))),
            }
        } else {
            None
        };

        Ok(Query {
            with,
            body,
            order_by,
            limit,
        })
    }

    /// Set expressions are left-associative:
    /// `a UNION b UNION c` == `(a UNION b) UNION c`.
    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_set_term()?;
        loop {
            let op = if self.peek_kw("union") {
                SetOp::Union
            } else if self.peek_kw("intersect") {
                SetOp::Intersect
            } else if self.peek_kw("except") {
                SetOp::Except
            } else {
                break;
            };
            self.pos += 1;
            let all = self.eat_kw("all");
            let right = self.parse_set_term()?;
            left = SetExpr::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_set_term(&mut self) -> Result<SetExpr> {
        if self.peek() == Some(&Token::LParen) {
            // Parenthesized query body: (SELECT ... UNION ...)
            let checkpoint = self.pos;
            self.pos += 1;
            if self.peek_kw("select") || self.peek_kw("with") || self.peek() == Some(&Token::LParen)
            {
                let inner = self.parse_query()?;
                self.expect_symbol(&Token::RParen)?;
                if inner.with.is_none() && inner.order_by.is_empty() && inner.limit.is_none() {
                    return Ok(inner.body);
                }
                // Keep full query semantics by wrapping as derived table.
                let mut sel = Select::new();
                sel.projection.push(SelectItem::Wildcard);
                sel.from.push(TableWithJoins {
                    base: TableFactor::Derived {
                        subquery: Box::new(inner),
                        alias: "__q".into(),
                    },
                    joins: Vec::new(),
                });
                return Ok(SetExpr::Select(Box::new(sel)));
            }
            self.pos = checkpoint;
        }
        self.expect_kw("select")?;
        Ok(SetExpr::Select(Box::new(self.parse_select_after_kw()?)))
    }

    /// Parse the remainder of a SELECT after the SELECT keyword itself.
    fn parse_select_after_kw(&mut self) -> Result<Select> {
        let mut sel = Select::new();
        sel.distinct = self.eat_kw("distinct");
        if sel.distinct {
            self.eat_kw("all");
        }

        // projection list
        loop {
            if self.eat_symbol(&Token::Star) {
                sel.projection.push(SelectItem::Wildcard);
            } else if let (Some(Token::Ident(q)), Some(Token::Dot), Some(Token::Star)) =
                (self.peek(), self.peek_at(1), self.peek_at(2))
            {
                let q = q.clone();
                self.pos += 3;
                sel.projection.push(SelectItem::QualifiedWildcard(q));
            } else {
                let expr = self.parse_expr()?;
                let alias = self.parse_optional_alias()?;
                sel.projection.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(&Token::Comma) {
                break;
            }
        }

        if self.eat_kw("from") {
            loop {
                sel.from.push(self.parse_table_with_joins()?);
                if !self.eat_symbol(&Token::Comma) {
                    break;
                }
            }
        }

        if self.eat_kw("where") {
            sel.where_clause = Some(self.parse_expr()?);
        }

        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                sel.group_by.push(self.parse_expr()?);
                if !self.eat_symbol(&Token::Comma) {
                    break;
                }
            }
        }

        if self.eat_kw("having") {
            sel.having = Some(self.parse_expr()?);
        }

        Ok(sel)
    }

    fn parse_optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            return Ok(Some(self.expect_ident()?));
        }
        match self.peek() {
            Some(Token::Ident(s)) if !RESERVED.contains(&s.as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Ok(Some(s))
            }
            Some(Token::QuotedIdent(s)) => {
                let s = s.to_ascii_lowercase();
                self.pos += 1;
                Ok(Some(s))
            }
            _ => Ok(None),
        }
    }

    fn parse_table_with_joins(&mut self) -> Result<TableWithJoins> {
        let base = self.parse_table_factor()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.peek_kw("join") || self.peek_kw("inner") {
                self.eat_kw("inner");
                self.expect_kw("join")?;
                JoinKind::Inner
            } else if self.peek_kw("left") {
                self.pos += 1;
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Left
            } else {
                break;
            };
            let factor = self.parse_table_factor()?;
            let on = if self.eat_kw("on") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            joins.push(Join { kind, factor, on });
        }
        Ok(TableWithJoins { base, joins })
    }

    fn parse_table_factor(&mut self) -> Result<TableFactor> {
        if self.eat_symbol(&Token::LParen) {
            let subquery = self.parse_query()?;
            self.expect_symbol(&Token::RParen)?;
            let alias = self
                .parse_optional_alias()?
                .ok_or_else(|| Error::Parse("derived table requires an alias".into()))?;
            return Ok(TableFactor::Derived {
                subquery: Box::new(subquery),
                alias,
            });
        }
        let name = self.expect_ident()?;
        let alias = self.parse_optional_alias()?;
        Ok(TableFactor::Table { name, alias })
    }

    // -- expressions --------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.parse_not()?;
            Ok(Expr::Not(Box::new(inner)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // [NOT] IN / [NOT] BETWEEN / [NOT] LIKE
        let negated = if self.peek_kw("not")
            && matches!(self.peek_at(1), Some(t) if t.is_kw("in") || t.is_kw("between") || t.is_kw("like"))
        {
            self.pos += 1;
            true
        } else {
            false
        };

        if self.eat_kw("in") {
            self.expect_symbol(&Token::LParen)?;
            if self.peek_kw("select") || self.peek_kw("with") {
                let query = self.parse_query()?;
                self.expect_symbol(&Token::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = vec![self.parse_expr()?];
            while self.eat_symbol(&Token::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_symbol(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }

        if self.eat_kw("between") {
            let low = self.parse_additive()?;
            self.expect_kw("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }

        if self.eat_kw("like") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }

        if negated {
            return Err(Error::Parse(
                "expected IN, BETWEEN, or LIKE after NOT".into(),
            ));
        }

        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::NotEq) => BinOp::NotEq,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::LtEq) => BinOp::LtEq,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::GtEq) => BinOp::GtEq,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.parse_additive()?;
        Ok(Expr::binary(left, op, right))
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Plus,
                Some(Token::Minus) => BinOp::Minus,
                Some(Token::Concat) => BinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(&Token::Minus) {
            let inner = self.parse_unary()?;
            // fold negation of numeric literals
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(x)) => Expr::Literal(Value::Float(-x)),
                other => Expr::Negate(Box::new(other)),
            });
        }
        self.eat_symbol(&Token::Plus);
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(n)))
            }
            Some(Token::Float(x)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(x)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.peek_kw("select") || self.peek_kw("with") {
                    let q = self.parse_query()?;
                    self.expect_symbol(&Token::RParen)?;
                    Ok(Expr::ScalarSubquery(Box::new(q)))
                } else {
                    let e = self.parse_expr()?;
                    self.expect_symbol(&Token::RParen)?;
                    Ok(e)
                }
            }
            Some(Token::Ident(word)) => match word.as_str() {
                "null" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Value::Null))
                }
                "true" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Value::Bool(true)))
                }
                "false" => {
                    self.pos += 1;
                    Ok(Expr::Literal(Value::Bool(false)))
                }
                "exists" => {
                    self.pos += 1;
                    self.expect_symbol(&Token::LParen)?;
                    let q = self.parse_query()?;
                    self.expect_symbol(&Token::RParen)?;
                    Ok(Expr::Exists {
                        query: Box::new(q),
                        negated: false,
                    })
                }
                "cast" => {
                    self.pos += 1;
                    self.expect_symbol(&Token::LParen)?;
                    let e = self.parse_expr()?;
                    self.expect_kw("as")?;
                    let dtype = self.parse_data_type()?;
                    self.expect_symbol(&Token::RParen)?;
                    Ok(Expr::Cast {
                        expr: Box::new(e),
                        dtype,
                    })
                }
                "case" => {
                    self.pos += 1;
                    let mut branches = Vec::new();
                    while self.eat_kw("when") {
                        let cond = self.parse_expr()?;
                        self.expect_kw("then")?;
                        let result = self.parse_expr()?;
                        branches.push((cond, result));
                    }
                    if branches.is_empty() {
                        return Err(Error::Parse("CASE requires at least one WHEN".into()));
                    }
                    let else_expr = if self.eat_kw("else") {
                        Some(Box::new(self.parse_expr()?))
                    } else {
                        None
                    };
                    self.expect_kw("end")?;
                    Ok(Expr::Case {
                        branches,
                        else_expr,
                    })
                }
                _ => self.parse_ident_expr(),
            },
            Some(Token::QuotedIdent(_)) => self.parse_ident_expr(),
            other => Err(Error::Parse(format!("unexpected token {other:?}"))),
        }
    }

    /// Identifier-led expression: function call, qualified column, or bare
    /// column.
    fn parse_ident_expr(&mut self) -> Result<Expr> {
        let first = self.expect_ident()?;
        // function call?
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            if self.eat_symbol(&Token::Star) {
                self.expect_symbol(&Token::RParen)?;
                return Ok(Expr::Function {
                    name: first,
                    args: vec![],
                    star: true,
                });
            }
            // COUNT(DISTINCT x) is normalized to COUNT(x) — the engine's
            // UNION-heavy workloads never produce duplicates we care about,
            // and accepting the syntax keeps paper-style queries parseable.
            self.eat_kw("distinct");
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                args.push(self.parse_expr()?);
                while self.eat_symbol(&Token::Comma) {
                    args.push(self.parse_expr()?);
                }
            }
            self.expect_symbol(&Token::RParen)?;
            return Ok(Expr::Function {
                name: first,
                args,
                star: false,
            });
        }
        // qualified column?
        if self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let name = self.expect_ident()?;
            return Ok(Expr::Column {
                qualifier: Some(first),
                name,
            });
        }
        Ok(Expr::Column {
            qualifier: None,
            name: first,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_select() {
        let q = parse_query("SELECT name FROM assy WHERE assy.obid = 1").unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert_eq!(sel.projection.len(), 1);
        assert_eq!(sel.from_table_names(), vec!["assy"]);
        assert!(sel.where_clause.is_some());
    }

    #[test]
    fn select_star_and_qualified_star() {
        let q = parse_query("SELECT *, a.* FROM a").unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert!(matches!(sel.projection[0], SelectItem::Wildcard));
        assert!(matches!(&sel.projection[1], SelectItem::QualifiedWildcard(q) if q == "a"));
    }

    #[test]
    fn joins_with_on() {
        let q = parse_query(
            "SELECT assy.name FROM rtbl JOIN link ON rtbl.obid=link.left \
             JOIN assy ON link.right=assy.obid",
        )
        .unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert_eq!(sel.from.len(), 1);
        assert_eq!(sel.from[0].joins.len(), 2);
        assert_eq!(sel.from_table_names(), vec!["rtbl", "link", "assy"]);
    }

    #[test]
    fn left_join() {
        let q = parse_query("SELECT * FROM a LEFT JOIN b ON a.x = b.y").unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        assert_eq!(sel.from[0].joins[0].kind, JoinKind::Left);
    }

    #[test]
    fn with_recursive_full_paper_query_parses() {
        // Verbatim (modulo whitespace) from Section 5.2 of the paper.
        let sql = r#"
            WITH RECURSIVE rtbl (type, obid, name, dec) AS
            (SELECT type, obid, name, dec
               FROM assy
              WHERE assy.obid = 1
             UNION
             SELECT assy.type, assy.obid, assy.name, assy.dec
               FROM rtbl JOIN link ON rtbl.obid=link.left
                         JOIN assy ON link.right=assy.obid
             UNION
             SELECT comp.type, comp.obid, comp.name, ''
               FROM rtbl JOIN link ON rtbl.obid=link.left
                         JOIN comp ON link.right=comp.obid
            )
            SELECT type, obid, name, dec AS "DEC",
                   cast (NULL AS integer) AS "LEFT",
                   cast (NULL AS integer) AS "RIGHT",
                   cast (NULL AS integer) AS "EFF_FROM",
                   cast (NULL AS integer) AS "EFF_TO"
              FROM rtbl
            UNION
            SELECT type, obid, '' AS "NAME", '' AS "DEC",
                   left, right, eff_from, eff_to
              FROM link
             WHERE (left IN (SELECT obid FROM rtbl)
               AND right IN (SELECT obid FROM rtbl))
            ORDER BY 1,2
        "#;
        let q = parse_query(sql).unwrap();
        let with = q.with.as_ref().unwrap();
        assert!(with.recursive);
        assert_eq!(with.ctes.len(), 1);
        assert_eq!(with.ctes[0].name, "rtbl");
        assert_eq!(with.ctes[0].columns, vec!["type", "obid", "name", "dec"]);
        // CTE body is a two-deep UNION chain = 3 terms
        assert_eq!(with.ctes[0].query.body.flatten_setop(SetOp::Union).len(), 3);
        assert_eq!(q.order_by.len(), 2);
    }

    #[test]
    fn not_exists_subquery() {
        let e =
            parse_expr("NOT EXISTS (SELECT * FROM rtbl WHERE (type='assy' AND dec!='+'))").unwrap();
        let Expr::Not(inner) = e else {
            panic!("expected NOT")
        };
        assert!(matches!(*inner, Expr::Exists { negated: false, .. }));
    }

    #[test]
    fn scalar_subquery_comparison() {
        let e = parse_expr("(SELECT COUNT(*) FROM rtbl WHERE type='assy') <= 10").unwrap();
        let Expr::BinaryOp { left, op, .. } = e else {
            panic!()
        };
        assert_eq!(op, BinOp::LtEq);
        assert!(matches!(*left, Expr::ScalarSubquery(_)));
    }

    #[test]
    fn in_list_and_in_subquery() {
        let e = parse_expr("x IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: false, .. }));
        let e = parse_expr("x NOT IN (SELECT y FROM t)").unwrap();
        assert!(matches!(e, Expr::InSubquery { negated: true, .. }));
    }

    #[test]
    fn between() {
        let e = parse_expr("eff BETWEEN 1 AND 10").unwrap();
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = parse_expr("eff NOT BETWEEN 1 AND 10").unwrap();
        assert!(matches!(e, Expr::Between { negated: true, .. }));
    }

    #[test]
    fn precedence_or_and() {
        let e = parse_expr("a = 1 OR b = 2 AND c = 3").unwrap();
        // AND binds tighter: a=1 OR (b=2 AND c=3)
        let Expr::BinaryOp { op, right, .. } = e else {
            panic!()
        };
        assert_eq!(op, BinOp::Or);
        assert!(matches!(*right, Expr::BinaryOp { op: BinOp::And, .. }));
    }

    #[test]
    fn arithmetic_precedence() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        let Expr::BinaryOp { op, right, .. } = e else {
            panic!()
        };
        assert_eq!(op, BinOp::Plus);
        assert!(matches!(*right, Expr::BinaryOp { op: BinOp::Mul, .. }));
    }

    #[test]
    fn negative_literals_folded() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::Literal(Value::Int(-5)));
        assert_eq!(
            parse_expr("-2.5").unwrap(),
            Expr::Literal(Value::Float(-2.5))
        );
    }

    #[test]
    fn aliases_with_and_without_as() {
        let q = parse_query("SELECT a AS x, b y FROM t AS u").unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        let SelectItem::Expr { alias, .. } = &sel.projection[0] else {
            panic!()
        };
        assert_eq!(alias.as_deref(), Some("x"));
        let SelectItem::Expr { alias, .. } = &sel.projection[1] else {
            panic!()
        };
        assert_eq!(alias.as_deref(), Some("y"));
        let TableFactor::Table { alias, .. } = &sel.from[0].base else {
            panic!()
        };
        assert_eq!(alias.as_deref(), Some("u"));
    }

    #[test]
    fn reserved_word_not_taken_as_alias() {
        let q = parse_query("SELECT a FROM t WHERE a = 1").unwrap();
        let SetExpr::Select(sel) = &q.body else {
            panic!()
        };
        // WHERE must not have been swallowed as an alias of `t`
        assert!(sel.where_clause.is_some());
    }

    #[test]
    fn insert_update_delete_parse() {
        assert!(matches!(
            parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap(),
            Statement::Insert { .. }
        ));
        assert!(matches!(
            parse_statement("UPDATE t SET a = 1 WHERE b = 2").unwrap(),
            Statement::Update { .. }
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete { .. }
        ));
    }

    #[test]
    fn create_table_and_view_and_index() {
        let st = parse_statement(
            "CREATE TABLE assy (type VARCHAR(8) NOT NULL, obid INTEGER NOT NULL, name VARCHAR, dec VARCHAR)",
        )
        .unwrap();
        let Statement::CreateTable { name, columns } = st else {
            panic!()
        };
        assert_eq!(name, "assy");
        assert_eq!(columns.len(), 4);
        assert!(!columns[0].nullable);
        assert!(columns[2].nullable);

        assert!(matches!(
            parse_statement("CREATE VIEW v AS SELECT * FROM t").unwrap(),
            Statement::CreateView { .. }
        ));
        assert!(matches!(
            parse_statement("CREATE INDEX ON link (left)").unwrap(),
            Statement::CreateIndex { .. }
        ));
    }

    #[test]
    fn case_expression() {
        let e = parse_expr("CASE WHEN a = 1 THEN 'one' ELSE 'other' END").unwrap();
        let Expr::Case {
            branches,
            else_expr,
        } = e
        else {
            panic!()
        };
        assert_eq!(branches.len(), 1);
        assert!(else_expr.is_some());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_query("SELECT 1 garbage junk +").is_err());
        assert!(parse_statement("SELECT 1; SELECT 2").is_err());
    }

    #[test]
    fn union_all_vs_union() {
        let q = parse_query("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3").unwrap();
        let SetExpr::SetOp { all, left, .. } = &q.body else {
            panic!()
        };
        assert!(!all);
        assert!(matches!(**left, SetExpr::SetOp { all: true, .. }));
    }

    #[test]
    fn rendered_sql_round_trips() {
        let sources = [
            "SELECT a, b FROM t WHERE a = 1 AND (b = 2 OR c = 3)",
            "SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2",
            "SELECT * FROM a JOIN b ON a.x = b.y WHERE EXISTS (SELECT * FROM c WHERE c.z = a.x)",
            "SELECT CAST (NULL AS integer) AS \"LEFT\" FROM t ORDER BY 1 DESC",
            "SELECT x FROM t WHERE x BETWEEN 1 AND 10 OR x IS NOT NULL",
        ];
        for src in sources {
            let q1 = parse_query(src).unwrap();
            let rendered = q1.to_string();
            let q2 = parse_query(&rendered)
                .unwrap_or_else(|e| panic!("re-parse of '{rendered}' failed: {e}"));
            assert_eq!(q1, q2, "round-trip mismatch for {src}");
        }
    }

    #[test]
    fn limit_clause() {
        let q = parse_query("SELECT * FROM t LIMIT 5").unwrap();
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn derived_table_requires_alias() {
        assert!(parse_query("SELECT * FROM (SELECT 1)").is_err());
        assert!(parse_query("SELECT * FROM (SELECT 1) AS d").is_ok());
    }
}
