//! Binary serialization of storage state for the durability layer.
//!
//! The WAL crate checkpoints a [`Snapshot`] (the immutable published image
//! of [`crate::SharedDatabase`]) to a simulated device and reloads it on
//! recovery. The format here is a deliberately simple length-prefixed
//! little-endian encoding — no self-description, no varint compression —
//! because the property the crash harness needs is *byte-determinism*: the
//! same logical state must always encode to the same bytes, so "recovered
//! state is byte-identical to a serial replay" is checkable by comparing
//! two byte strings. Tables and views are therefore emitted in sorted name
//! order, and rows in their storage order (which DML replay reproduces
//! exactly: INSERT appends, UPDATE mutates in place, DELETE compacts
//! preserving order).
//!
//! What is NOT serialized:
//! * **functions** — a [`FunctionRegistry`](crate::functions::FunctionRegistry)
//!   holds code, not data. Decoding rebuilds the builtin registry; the PDM
//!   layer re-registers its stored functions on recovery.
//! * **hash indexes** — only the indexed column *names* are stored; the
//!   index payload is rebuilt from the rows on load.

use std::sync::Arc;

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::exec::ExecConfig;
use crate::row::{ResultSet, Row};
use crate::schema::{Column, Schema};
use crate::shared::Snapshot;
use crate::storage::Table;
use crate::value::{DataType, Value};

/// Format version stamped at the front of every snapshot blob.
const SNAPSHOT_FORMAT: u32 = 1;

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Primitive readers — a cursor that reports the offset of any malformation
// ---------------------------------------------------------------------------

/// A bounds-checked read cursor. Every failure carries the byte offset so
/// recovery diagnostics can point at the damage.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub fn offset(&self) -> usize {
        self.pos
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn short(&self, what: &str, need: usize) -> Error {
        Error::Persist(format!(
            "truncated {what} at offset {}: need {need} bytes, {} remain",
            self.pos,
            self.remaining()
        ))
    }

    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.short(what, n));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub fn i64(&mut self, what: &str) -> Result<i64> {
        Ok(self.u64(what)? as i64)
    }

    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub fn str(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Persist(format!("non-UTF-8 {what} at offset {}", self.pos - len)))
    }
}

// ---------------------------------------------------------------------------
// Values, rows, schemas, result sets
// ---------------------------------------------------------------------------

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
    }
}

fn dtype_from_tag(tag: u8, at: usize) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Bool,
        other => {
            return Err(Error::Persist(format!(
                "invalid data-type tag {other} at offset {at}"
            )))
        }
    })
}

pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Int(i) => {
            put_u8(out, 1);
            put_i64(out, *i);
        }
        Value::Float(f) => {
            put_u8(out, 2);
            put_f64(out, *f);
        }
        Value::Text(s) => {
            put_u8(out, 3);
            put_str(out, s);
        }
        Value::Bool(b) => {
            put_u8(out, 4);
            put_u8(out, *b as u8);
        }
    }
}

pub fn read_value(cur: &mut Cursor<'_>) -> Result<Value> {
    let at = cur.offset();
    Ok(match cur.u8("value tag")? {
        0 => Value::Null,
        1 => Value::Int(cur.i64("int value")?),
        2 => Value::Float(cur.f64("float value")?),
        3 => Value::Text(cur.str("text value")?),
        4 => Value::Bool(cur.u8("bool value")? != 0),
        other => {
            return Err(Error::Persist(format!(
                "invalid value tag {other} at offset {at}"
            )))
        }
    })
}

pub fn put_row(out: &mut Vec<u8>, row: &Row) {
    put_u32(out, row.len() as u32);
    for v in row.values() {
        put_value(out, v);
    }
}

pub fn read_row(cur: &mut Cursor<'_>) -> Result<Row> {
    let n = cur.u32("row arity")? as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(read_value(cur)?);
    }
    Ok(Row::new(values))
}

pub fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_u32(out, schema.len() as u32);
    for col in schema.columns() {
        put_str(out, &col.name);
        put_u8(out, dtype_tag(col.dtype));
        put_u8(out, col.nullable as u8);
    }
}

pub fn read_schema(cur: &mut Cursor<'_>) -> Result<Schema> {
    let n = cur.u32("schema arity")? as usize;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = cur.str("column name")?;
        let at = cur.offset();
        let dtype = dtype_from_tag(cur.u8("column type")?, at)?;
        let nullable = cur.u8("column nullability")? != 0;
        let mut col = Column::new(name, dtype);
        if !nullable {
            col = col.not_null();
        }
        cols.push(col);
    }
    Ok(Schema::new(cols))
}

/// Encode a result set (used by the WAL to record idempotency-token
/// outcomes so a replayed token returns its rows without re-executing).
pub fn encode_result_set(rs: &ResultSet) -> Vec<u8> {
    let mut out = Vec::new();
    put_schema(&mut out, &rs.schema);
    put_u32(&mut out, rs.rows.len() as u32);
    for row in &rs.rows {
        put_row(&mut out, row);
    }
    out
}

pub fn decode_result_set(bytes: &[u8]) -> Result<ResultSet> {
    let mut cur = Cursor::new(bytes);
    let rs = read_result_set(&mut cur)?;
    if !cur.is_empty() {
        return Err(Error::Persist(format!(
            "{} trailing bytes after result set",
            cur.remaining()
        )));
    }
    Ok(rs)
}

pub fn read_result_set(cur: &mut Cursor<'_>) -> Result<ResultSet> {
    let schema = read_schema(cur)?;
    let n = cur.u32("row count")? as usize;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(read_row(cur)?);
    }
    Ok(ResultSet::new(schema, rows))
}

pub fn put_result_set(out: &mut Vec<u8>, rs: &ResultSet) {
    put_schema(out, &rs.schema);
    put_u32(out, rs.rows.len() as u32);
    for row in &rs.rows {
        put_row(out, row);
    }
}

// ---------------------------------------------------------------------------
// Tables, catalogs, snapshots
// ---------------------------------------------------------------------------

fn put_table(out: &mut Vec<u8>, table: &Table) {
    put_str(out, &table.name);
    put_schema(out, &table.schema);
    let mut indexed = table.indexed_columns();
    indexed.sort_unstable();
    put_u32(out, indexed.len() as u32);
    for col in indexed {
        put_str(out, &col);
    }
    put_u32(out, table.len() as u32);
    for row in table.rows() {
        put_row(out, row);
    }
}

fn read_table(cur: &mut Cursor<'_>) -> Result<Table> {
    let name = cur.str("table name")?;
    let schema = read_schema(cur)?;
    let n_indexed = cur.u32("index count")? as usize;
    let mut indexed = Vec::with_capacity(n_indexed);
    for _ in 0..n_indexed {
        indexed.push(cur.str("indexed column")?);
    }
    let n_rows = cur.u32("table row count")? as usize;
    let mut table = Table::new(name, schema);
    for _ in 0..n_rows {
        table.insert(read_row(cur)?)?;
    }
    // Indexes are rebuilt from the rows, not stored.
    for col in indexed {
        table.create_index(&col)?;
    }
    Ok(table)
}

/// Serialize the data-bearing parts of a catalog: tables (schema + rows +
/// indexed column names) and view definitions (SQL text). Deterministic:
/// names are sorted.
pub fn encode_catalog(catalog: &Catalog) -> Vec<u8> {
    let mut out = Vec::new();
    let names = catalog.table_names();
    put_u32(&mut out, names.len() as u32);
    for name in names {
        if let Ok(t) = catalog.table(name) {
            put_table(&mut out, t);
        }
    }
    let views = catalog.view_names();
    put_u32(&mut out, views.len() as u32);
    for name in views {
        if let Some(v) = catalog.view(name) {
            put_str(&mut out, &v.name);
            put_str(&mut out, &v.sql);
        }
    }
    out
}

pub fn read_catalog(cur: &mut Cursor<'_>) -> Result<Catalog> {
    let mut catalog = Catalog::new();
    let n_tables = cur.u32("table count")? as usize;
    for _ in 0..n_tables {
        let table = read_table(cur)?;
        let name = table.name.clone();
        catalog.create_table(&name, table.schema.clone())?;
        let dst = catalog.table_mut(&name)?;
        *dst = table;
    }
    let n_views = cur.u32("view count")? as usize;
    for _ in 0..n_views {
        let name = cur.str("view name")?;
        let sql = cur.str("view sql")?;
        let query = crate::parser::parse_query(&sql)?;
        catalog.create_view(&name, query)?;
    }
    Ok(catalog)
}

/// Serialize a published snapshot: format version, storage version,
/// executor configuration, catalog.
pub fn encode_snapshot(snapshot: &Snapshot) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, SNAPSHOT_FORMAT);
    put_u64(&mut out, snapshot.version);
    put_u8(&mut out, snapshot.config.subquery_cache as u8);
    put_u8(&mut out, snapshot.config.semijoin_decorrelation as u8);
    put_u8(&mut out, snapshot.config.index_pushdown as u8);
    put_u64(&mut out, snapshot.config.recursion_limit as u64);
    out.extend_from_slice(&encode_catalog(&snapshot.catalog));
    out
}

/// Reload a snapshot. The function registry comes back as builtins only —
/// callers that registered custom functions must re-register them.
pub fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot> {
    let mut cur = Cursor::new(bytes);
    let format = cur.u32("snapshot format")?;
    if format != SNAPSHOT_FORMAT {
        return Err(Error::Persist(format!(
            "unsupported snapshot format {format} (expected {SNAPSHOT_FORMAT})"
        )));
    }
    let version = cur.u64("snapshot version")?;
    let config = ExecConfig {
        subquery_cache: cur.u8("config.subquery_cache")? != 0,
        semijoin_decorrelation: cur.u8("config.semijoin_decorrelation")? != 0,
        index_pushdown: cur.u8("config.index_pushdown")? != 0,
        recursion_limit: cur.u64("config.recursion_limit")? as usize,
    };
    let catalog = read_catalog(&mut cur)?;
    if !cur.is_empty() {
        return Err(Error::Persist(format!(
            "{} trailing bytes after snapshot",
            cur.remaining()
        )));
    }
    Ok(Snapshot {
        catalog,
        config,
        version,
    })
}

/// Canonical byte image of the *data* in a snapshot (tables only, sorted) —
/// the equality witness the crash harness compares. Two states are "byte-
/// identical" exactly when their fingerprints are equal.
pub fn state_fingerprint(snapshot: &Snapshot) -> Vec<u8> {
    encode_catalog(&snapshot.catalog)
}

/// Convenience: fingerprint of a shared database's current state.
pub fn database_fingerprint(db: &crate::SharedDatabase) -> Vec<u8> {
    state_fingerprint(Arc::as_ref(&db.snapshot()))
}

/// Compact 64-bit digest (FNV-1a) of a fingerprint byte image — cheap
/// enough to ride in every replication ship ack for cross-site state
/// comparison without shipping the full catalog image back.
pub fn fingerprint_digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of a shared database's current state, for watermark acks.
pub fn database_digest(db: &crate::SharedDatabase) -> u64 {
    fingerprint_digest(&database_fingerprint(db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR, c DOUBLE, d BOOLEAN)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x', 1.5, TRUE), (2, NULL, -0.25, FALSE)")
            .unwrap();
        db.execute("CREATE INDEX ON t (a)").unwrap();
        db.execute("CREATE VIEW v AS SELECT a, b FROM t WHERE a > 1")
            .unwrap();
        db
    }

    #[test]
    fn snapshot_round_trip_preserves_state_and_queries() {
        let db = sample_db();
        let snap = Snapshot {
            catalog: db.catalog.clone(),
            config: db.config.clone(),
            version: 7,
        };
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back.version, 7);
        assert_eq!(state_fingerprint(&snap), state_fingerprint(&back));
        // The reloaded snapshot answers queries identically, views included.
        assert_eq!(
            snap.query("SELECT * FROM v ORDER BY a").unwrap(),
            back.query("SELECT * FROM v ORDER BY a").unwrap()
        );
        // Indexes were rebuilt.
        let t = back.catalog.table("t").unwrap();
        let a_idx = t.schema.index_of("a").unwrap();
        assert!(t.has_index(a_idx));
    }

    #[test]
    fn encoding_is_deterministic() {
        let db = sample_db();
        let snap = Snapshot {
            catalog: db.catalog.clone(),
            config: db.config.clone(),
            version: 0,
        };
        assert_eq!(encode_snapshot(&snap), encode_snapshot(&snap));
    }

    #[test]
    fn result_set_round_trip() {
        let db = sample_db();
        let rs = db.query("SELECT * FROM t ORDER BY a").unwrap();
        let bytes = encode_result_set(&rs);
        assert_eq!(decode_result_set(&bytes).unwrap(), rs);
    }

    #[test]
    fn truncation_is_reported_with_offset() {
        let db = sample_db();
        let snap = Snapshot {
            catalog: db.catalog.clone(),
            config: db.config.clone(),
            version: 0,
        };
        let bytes = encode_snapshot(&snap);
        let err = decode_snapshot(&bytes[..bytes.len() / 2]).unwrap_err();
        match err {
            Error::Persist(m) => assert!(m.contains("offset"), "{m}"),
            other => panic!("expected Persist error, got {other:?}"),
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut bytes = Vec::new();
        put_u8(&mut bytes, 9);
        let mut cur = Cursor::new(&bytes);
        assert!(read_value(&mut cur).is_err());
    }
}
