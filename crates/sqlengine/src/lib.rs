#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # pdm-sql — in-memory relational engine with SQL:1999 recursion
//!
//! The database substrate for the reproduction of *"Tuning an SQL-Based PDM
//! System in a Worldwide Client/Server Environment"* (Müller, Dadam,
//! Enderle, Feltes — ICDE 2001). The paper's techniques need a server that
//! speaks the SQL:1999 surface its queries use: `WITH RECURSIVE`, `UNION`,
//! joins, `EXISTS`/`NOT EXISTS`/`IN` subqueries, scalar aggregate
//! subqueries, `CAST`, stored functions, views, and `UPDATE`. This crate
//! provides exactly that, plus the one optimizer property the paper calls
//! out (§5.3.1): uncorrelated subqueries are evaluated once per query.
//!
//! ```
//! use pdm_sql::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE assy (obid INTEGER NOT NULL, name VARCHAR, dec VARCHAR)").unwrap();
//! db.execute("INSERT INTO assy VALUES (1, 'Assy1', '+'), (2, 'Assy2', '-')").unwrap();
//! let rs = db.query("SELECT name FROM assy WHERE dec = '+'").unwrap();
//! assert_eq!(rs.len(), 1);
//! ```

pub mod ast;
pub mod catalog;
pub mod error;
pub mod exec;
pub mod functions;
pub mod lexer;
pub mod parser;
pub mod persist;
pub mod row;
pub mod schema;
pub mod shared;
pub mod storage;
pub mod update;
pub mod value;

use std::cell::RefCell;

pub use ast::{Expr, Query, Select, Statement};
pub use catalog::Catalog;
pub use error::{Error, Result};
pub use exec::{ExecConfig, ExecStats};
pub use row::{ResultSet, Row};
pub use schema::{Column, Schema};
pub use shared::{SharedDatabase, Snapshot};
pub use update::DmlOutcome;
pub use value::{DataType, Value};

/// Result of [`Database::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// The statement was a query.
    Rows(ResultSet),
    /// The statement was DML/DDL.
    Dml(DmlOutcome),
}

impl ExecOutcome {
    /// Unwrap a query result; panics on DML outcomes (test convenience).
    pub fn rows(self) -> ResultSet {
        match self {
            ExecOutcome::Rows(rs) => rs,
            ExecOutcome::Dml(d) => panic!("expected rows, got {d:?}"),
        }
    }
}

/// An in-memory SQL database: catalog + executor configuration.
///
/// Cloning is cheap (tables are `Arc`ed copy-on-write, see [`Catalog`]);
/// for genuinely concurrent access wrap it in a [`SharedDatabase`].
#[derive(Debug, Default, Clone)]
pub struct Database {
    pub catalog: Catalog,
    pub config: ExecConfig,
}

impl Database {
    pub fn new() -> Self {
        Database::default()
    }

    pub fn with_config(config: ExecConfig) -> Self {
        Database {
            catalog: Catalog::new(),
            config,
        }
    }

    /// Execute any single SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = parser::parse_statement(sql)?;
        match stmt {
            Statement::Query(q) => Ok(ExecOutcome::Rows(self.query_ast(&q)?)),
            other => Ok(ExecOutcome::Dml(update::execute_statement(
                &mut self.catalog,
                &self.config,
                &other,
            )?)),
        }
    }

    /// Run a query given as SQL text.
    pub fn query(&self, sql: &str) -> Result<ResultSet> {
        let q = parser::parse_query(sql)?;
        self.query_ast(&q)
    }

    /// Run a query given as SQL text, returning execution statistics too.
    pub fn query_with_stats(&self, sql: &str) -> Result<(ResultSet, ExecStats)> {
        let q = parser::parse_query(sql)?;
        self.query_ast_with_stats(&q)
    }

    /// Render the executor's plan for a query without running it (the
    /// decisions EXPLAIN would show: index scans/joins, pushdowns, hash vs
    /// nested-loop joins, recursion strategy, subquery caching).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let q = parser::parse_query(sql)?;
        exec::explain::explain_query(&self.catalog, &self.config, &q)
    }

    /// Run an already-parsed query.
    pub fn query_ast(&self, query: &Query) -> Result<ResultSet> {
        Ok(self.query_ast_with_stats(query)?.0)
    }

    /// Run an already-parsed query, returning execution statistics.
    pub fn query_ast_with_stats(&self, query: &Query) -> Result<(ResultSet, ExecStats)> {
        let stats = RefCell::new(ExecStats::default());
        let result = {
            let ctx = exec::ExecContext::new(&self.catalog, &self.config, &stats);
            exec::eval_query(&ctx, query, None)?
        };
        Ok((result, stats.into_inner()))
    }

    /// Execute a parsed DML/DDL statement.
    pub fn execute_ast(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        match stmt {
            Statement::Query(q) => Ok(ExecOutcome::Rows(self.query_ast(q)?)),
            other => Ok(ExecOutcome::Dml(update::execute_statement(
                &mut self.catalog,
                &self.config,
                other,
            )?)),
        }
    }

    /// Register a stored (user-defined) scalar function.
    pub fn register_function(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.catalog.functions.register(name, f);
    }

    /// Programmatic bulk load (used by the workload generator): insert rows
    /// without going through the SQL parser.
    pub fn insert_rows(&mut self, table: &str, rows: Vec<Row>) -> Result<usize> {
        let t = self.catalog.table_mut(table)?;
        let n = rows.len();
        for row in rows {
            t.insert(row)?;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_fixture() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, NULL)")
            .unwrap();
        db
    }

    #[test]
    fn execute_query_and_dml() {
        let mut db = db_with_fixture();
        let out = db.execute("SELECT a FROM t WHERE b IS NOT NULL").unwrap();
        assert_eq!(out.rows().len(), 2);
        let out = db.execute("UPDATE t SET b = 'z' WHERE a = 3").unwrap();
        assert_eq!(out, ExecOutcome::Dml(DmlOutcome::Updated(1)));
        let out = db.execute("DELETE FROM t WHERE a = 1").unwrap();
        assert_eq!(out, ExecOutcome::Dml(DmlOutcome::Deleted(1)));
        assert_eq!(db.query("SELECT * FROM t").unwrap().len(), 2);
    }

    #[test]
    fn update_expression_references_row() {
        let mut db = db_with_fixture();
        db.execute("UPDATE t SET a = a + 10").unwrap();
        let rs = db.query("SELECT a FROM t ORDER BY 1").unwrap();
        assert_eq!(
            rs.column_values("a").unwrap(),
            vec![Value::Int(11), Value::Int(12), Value::Int(13)]
        );
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut db = db_with_fixture();
        db.execute("INSERT INTO t (a) VALUES (9)").unwrap();
        let rs = db.query("SELECT b FROM t WHERE a = 9").unwrap();
        assert!(rs.rows[0].get(0).is_null());
    }

    #[test]
    fn insert_not_null_violation_via_column_list() {
        let mut db = db_with_fixture();
        let err = db
            .execute("INSERT INTO t (b) VALUES ('only-b')")
            .unwrap_err();
        assert!(matches!(err, Error::Schema(_)));
    }

    #[test]
    fn register_function_visible_to_sql() {
        let mut db = db_with_fixture();
        db.register_function("double_it", |args| match &args[0] {
            Value::Int(i) => Ok(Value::Int(i * 2)),
            _ => Ok(Value::Null),
        });
        let rs = db.query("SELECT DOUBLE_IT(a) FROM t WHERE a = 2").unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Int(4));
    }

    #[test]
    fn create_index_statement() {
        let mut db = db_with_fixture();
        let out = db.execute("CREATE INDEX ON t (a)").unwrap();
        assert_eq!(out, ExecOutcome::Dml(DmlOutcome::IndexCreated));
        let (_, stats) = db.query_with_stats("SELECT * FROM t WHERE a = 2").unwrap();
        assert_eq!(stats.index_probes, 1);
    }

    #[test]
    fn views_resolve_in_from() {
        let mut db = db_with_fixture();
        db.execute("CREATE VIEW v AS SELECT a FROM t WHERE b IS NOT NULL")
            .unwrap();
        let rs = db.query("SELECT * FROM v ORDER BY 1").unwrap();
        assert_eq!(rs.len(), 2);
    }
}
