//! Abstract syntax tree for the supported SQL subset, with faithful
//! SQL rendering via `Display`.
//!
//! Rendering matters here more than in a typical engine: the PDM client
//! *constructs* queries as ASTs (the paper's "query modificator" splices rule
//! predicates into them), then ships the rendered SQL text over the simulated
//! WAN — so `to_string()` output is what gets charged for request volume, and
//! every AST must round-trip through the parser.

use std::fmt;

use crate::value::{DataType, Value};

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Query),
    Insert {
        table: String,
        columns: Option<Vec<String>>,
        rows: Vec<Vec<Expr>>,
    },
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        predicate: Option<Expr>,
    },
    Delete {
        table: String,
        predicate: Option<Expr>,
    },
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
    },
    CreateView {
        name: String,
        query: Query,
    },
    CreateIndex {
        table: String,
        column: String,
    },
    DropTable {
        name: String,
    },
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

/// A full query: optional WITH clause, set-expression body, ORDER BY, LIMIT.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub with: Option<With>,
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

impl Query {
    /// A bare query wrapping a single SELECT.
    pub fn select(select: Select) -> Self {
        Query {
            with: None,
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
        }
    }
}

/// `WITH [RECURSIVE] name (cols) AS (query), ...`
#[derive(Debug, Clone, PartialEq)]
pub struct With {
    pub recursive: bool,
    pub ctes: Vec<Cte>,
}

/// One common table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    pub name: String,
    pub columns: Vec<String>,
    pub query: Query,
}

/// Body of a query: a SELECT or a set operation over two bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    SetOp {
        op: SetOp,
        all: bool,
        left: Box<SetExpr>,
        right: Box<SetExpr>,
    },
}

impl SetExpr {
    /// Flatten a left-deep chain of same-kind set operations into its SELECT
    /// (or nested) operands, in source order. `WITH RECURSIVE x AS (a UNION b
    /// UNION c)` is seed `a` plus recursive terms `b`, `c`.
    pub fn flatten_setop(&self, op: SetOp) -> Vec<&SetExpr> {
        match self {
            SetExpr::SetOp {
                op: o, left, right, ..
            } if *o == op => {
                let mut parts = left.flatten_setop(op);
                parts.push(right);
                parts
            }
            other => vec![other],
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

/// One SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableWithJoins>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

impl Select {
    /// An empty SELECT skeleton; builders fill in the pieces.
    pub fn new() -> Self {
        Select {
            distinct: false,
            projection: Vec::new(),
            from: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
        }
    }

    /// AND `pred` onto the existing WHERE clause (creating one if absent).
    /// This is the primitive the paper's query modificator uses (§4.1, §5.5):
    /// "the resulting predicate is either appended to an already existing
    /// WHERE clause with an AND or a new WHERE clause has to be generated".
    pub fn and_where(&mut self, pred: Expr) {
        self.where_clause = Some(match self.where_clause.take() {
            Some(existing) => Expr::BinaryOp {
                left: Box::new(existing),
                op: BinOp::And,
                right: Box::new(pred),
            },
            None => pred,
        });
    }

    /// Names of base tables referenced directly in this SELECT's FROM clause
    /// (not recursing into derived tables).
    pub fn from_table_names(&self) -> Vec<&str> {
        let mut names = Vec::new();
        for twj in &self.from {
            if let TableFactor::Table { name, .. } = &twj.base {
                names.push(name.as_str());
            }
            for j in &twj.joins {
                if let TableFactor::Table { name, .. } = &j.factor {
                    names.push(name.as_str());
                }
            }
        }
        names
    }
}

impl Default for Select {
    fn default() -> Self {
        Self::new()
    }
}

/// An item in the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// expression with optional `AS alias`
    Expr { expr: Expr, alias: Option<String> },
}

impl SelectItem {
    pub fn expr(expr: Expr) -> Self {
        SelectItem::Expr { expr, alias: None }
    }

    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        SelectItem::Expr {
            expr,
            alias: Some(alias.into()),
        }
    }
}

/// One FROM entry: a base factor plus chained joins.
#[derive(Debug, Clone, PartialEq)]
pub struct TableWithJoins {
    pub base: TableFactor,
    pub joins: Vec<Join>,
}

impl TableWithJoins {
    pub fn table(name: impl Into<String>) -> Self {
        TableWithJoins {
            base: TableFactor::Table {
                name: name.into(),
                alias: None,
            },
            joins: Vec::new(),
        }
    }
}

/// A relation in FROM: base table/view/CTE by name, or a derived subquery.
#[derive(Debug, Clone, PartialEq)]
pub enum TableFactor {
    Table { name: String, alias: Option<String> },
    Derived { subquery: Box<Query>, alias: String },
}

impl TableFactor {
    /// The name this factor is visible as inside the query.
    pub fn binding_name(&self) -> &str {
        match self {
            TableFactor::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableFactor::Derived { alias, .. } => alias,
        }
    }
}

/// A join step chained after a base factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub kind: JoinKind,
    pub factor: TableFactor,
    pub on: Option<Expr>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
}

/// ORDER BY item: expression (commonly a 1-based ordinal) and direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `qualifier.name` or bare `name`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Value),
    BinaryOp {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    Negate(Box<Expr>),
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        query: Box<Query>,
        negated: bool,
    },
    Exists {
        query: Box<Query>,
        negated: bool,
    },
    ScalarSubquery(Box<Query>),
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` — SQL pattern match (`%` any sequence,
    /// `_` any single character).
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// Function call — scalar builtin, stored/user-defined function, or an
    /// aggregate (COUNT/SUM/AVG/MIN/MAX). `star` marks `COUNT(*)`.
    Function {
        name: String,
        args: Vec<Expr>,
        star: bool,
    },
    Cast {
        expr: Box<Expr>,
        dtype: DataType,
    },
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
}

impl Expr {
    pub fn col(name: impl Into<String>) -> Self {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    pub fn lit(v: impl Into<Value>) -> Self {
        Expr::Literal(v.into())
    }

    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Self {
        Expr::BinaryOp {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    pub fn eq(left: Expr, right: Expr) -> Self {
        Expr::binary(left, BinOp::Eq, right)
    }

    pub fn and(left: Expr, right: Expr) -> Self {
        Expr::binary(left, BinOp::And, right)
    }

    pub fn or(left: Expr, right: Expr) -> Self {
        Expr::binary(left, BinOp::Or, right)
    }

    /// OR-fold a non-empty list of predicates (the paper forms "the
    /// disjunction of all conditions found" before injecting them, §5.5).
    pub fn disjunction(mut preds: Vec<Expr>) -> Option<Expr> {
        let first = if preds.is_empty() {
            return None;
        } else {
            preds.remove(0)
        };
        Some(preds.into_iter().fold(first, Expr::or))
    }

    /// AND-fold a non-empty list of predicates.
    pub fn conjunction(mut preds: Vec<Expr>) -> Option<Expr> {
        let first = if preds.is_empty() {
            return None;
        } else {
            preds.remove(0)
        };
        Some(preds.into_iter().fold(first, Expr::and))
    }

    /// True if the expression contains an aggregate function call at any
    /// depth *outside* of subqueries (a subquery's aggregates are its own).
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args, .. } => {
                is_aggregate_name(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::BinaryOp { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Not(e) | Expr::Negate(e) | Expr::Cast { expr: e, .. } => e.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                branches
                    .iter()
                    .any(|(c, r)| c.contains_aggregate() || r.contains_aggregate())
                    || else_expr.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            Expr::Column { .. }
            | Expr::Literal(_)
            | Expr::InSubquery { .. }
            | Expr::Exists { .. }
            | Expr::ScalarSubquery(_) => false,
        }
    }
}

/// True for the five SQL aggregate function names the engine supports.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "count" | "sum" | "avg" | "min" | "max")
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Plus,
    Minus,
    Mul,
    Div,
    Mod,
    Concat,
}

impl BinOp {
    /// Binding strength for rendering (higher binds tighter). Mirrors the
    /// parser's precedence so rendered SQL re-parses to the same tree.
    fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 4,
            BinOp::Plus | BinOp::Minus | BinOp::Concat => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        }
    }
}

// ---------------------------------------------------------------------------
// SQL rendering
// ---------------------------------------------------------------------------

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Query(q) => write!(f, "{q}"),
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                write!(f, "INSERT INTO {table}")?;
                if let Some(cols) = columns {
                    write!(f, " ({})", cols.join(", "))?;
                }
                write!(f, " VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Statement::Update {
                table,
                assignments,
                predicate,
            } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (col, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{col} = {e}")?;
                }
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::Delete { table, predicate } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::CreateTable { name, columns } => {
                write!(f, "CREATE TABLE {name} (")?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} {}", c.name, c.dtype)?;
                    if !c.nullable {
                        write!(f, " NOT NULL")?;
                    }
                }
                write!(f, ")")
            }
            Statement::CreateView { name, query } => {
                write!(f, "CREATE VIEW {name} AS {query}")
            }
            Statement::CreateIndex { table, column } => {
                write!(f, "CREATE INDEX ON {table} ({column})")
            }
            Statement::DropTable { name } => write!(f, "DROP TABLE {name}"),
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(with) = &self.with {
            write!(f, "WITH ")?;
            if with.recursive {
                write!(f, "RECURSIVE ")?;
            }
            for (i, cte) in with.ctes.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", cte.name)?;
                if !cte.columns.is_empty() {
                    write!(f, " ({})", cte.columns.join(", "))?;
                }
                write!(f, " AS ({})", cte.query)?;
            }
            write!(f, " ")?;
        }
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, item) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", item.expr)?;
                if item.desc {
                    write!(f, " DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SetExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let kw = match op {
                    SetOp::Union => "UNION",
                    SetOp::Intersect => "INTERSECT",
                    SetOp::Except => "EXCEPT",
                };
                write!(f, "{left} {kw}{}", if *all { " ALL" } else { "" })?;
                // The grammar is left-associative with a single precedence
                // level for all three operators, so a set-op on the *right*
                // must be parenthesized to re-parse with the same shape.
                if matches!(**right, SetExpr::SetOp { .. }) {
                    write!(f, " ({right})")
                } else {
                    write!(f, " {right}")
                }
            }
        }
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard => write!(f, "*")?,
                SelectItem::QualifiedWildcard(q) => write!(f, "{q}.*")?,
                SelectItem::Expr { expr, alias } => {
                    write!(f, "{expr}")?;
                    if let Some(a) = alias {
                        write!(f, " AS \"{a}\"")?;
                    }
                }
            }
        }
        if !self.from.is_empty() {
            write!(f, " FROM ")?;
            for (i, twj) in self.from.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", twj.base)?;
                for j in &twj.joins {
                    let kw = match j.kind {
                        JoinKind::Inner => "JOIN",
                        JoinKind::Left => "LEFT JOIN",
                    };
                    write!(f, " {kw} {}", j.factor)?;
                    if let Some(on) = &j.on {
                        write!(f, " ON {on}")?;
                    }
                }
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableFactor::Table { name, alias } => {
                write!(f, "{name}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableFactor::Derived { subquery, alias } => {
                write!(f, "({subquery}) AS {alias}")
            }
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "<>",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Plus => "+",
            BinOp::Minus => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Concat => "||",
        };
        write!(f, "{s}")
    }
}

impl Expr {
    /// Precedence of this expression node for parenthesization.
    fn precedence(&self) -> u8 {
        match self {
            Expr::BinaryOp { op, .. } => op.precedence(),
            Expr::Not(_) => 3,
            // IN / BETWEEN / IS NULL sit at comparison level.
            Expr::InList { .. }
            | Expr::InSubquery { .. }
            | Expr::Between { .. }
            | Expr::Like { .. }
            | Expr::IsNull { .. } => 4,
            _ => 10,
        }
    }

    fn fmt_child(&self, f: &mut fmt::Formatter<'_>, parent_prec: u8) -> fmt::Result {
        if self.precedence() < parent_prec {
            write!(f, "({self})")
        } else {
            write!(f, "{self}")
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { qualifier, name } => {
                if let Some(q) = qualifier {
                    write!(f, "{q}.")?;
                }
                write!(f, "{name}")
            }
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::BinaryOp { left, op, right } => {
                let prec = op.precedence();
                // Comparisons are non-associative in the grammar (`a = b = c`
                // does not parse), so a comparison-level operand on either
                // side must be parenthesized. Associative operators only
                // need strictly-higher precedence on the right to avoid
                // re-association on round-trip.
                let comparison = matches!(
                    op,
                    BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
                );
                left.fmt_child(f, if comparison { prec + 1 } else { prec })?;
                write!(f, " {op} ")?;
                right.fmt_child(f, prec + 1)
            }
            Expr::Not(e) => {
                write!(f, "NOT ")?;
                e.fmt_child(f, 4)
            }
            Expr::Negate(e) => {
                write!(f, "-")?;
                e.fmt_child(f, 7)
            }
            Expr::IsNull { expr, negated } => {
                expr.fmt_child(f, 5)?;
                write!(f, " IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                expr.fmt_child(f, 5)?;
                write!(f, " {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                expr.fmt_child(f, 5)?;
                write!(f, " {}IN ({query})", if *negated { "NOT " } else { "" })
            }
            Expr::Exists { query, negated } => {
                write!(f, "{}EXISTS ({query})", if *negated { "NOT " } else { "" })
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                expr.fmt_child(f, 5)?;
                write!(f, " {}BETWEEN ", if *negated { "NOT " } else { "" })?;
                low.fmt_child(f, 5)?;
                write!(f, " AND ")?;
                high.fmt_child(f, 5)
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                expr.fmt_child(f, 5)?;
                write!(f, " {}LIKE ", if *negated { "NOT " } else { "" })?;
                pattern.fmt_child(f, 5)
            }
            Expr::Function { name, args, star } => {
                write!(f, "{}(", name.to_ascii_uppercase())?;
                if *star {
                    write!(f, "*")?;
                } else {
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                }
                write!(f, ")")
            }
            Expr::Cast { expr, dtype } => {
                let type_name = match dtype {
                    DataType::Int => "integer",
                    DataType::Float => "double",
                    DataType::Text => "varchar",
                    DataType::Bool => "boolean",
                };
                write!(f, "CAST ({expr} AS {type_name})")
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                for (cond, result) in branches {
                    write!(f, " WHEN {cond} THEN {result}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_sql() {
        let mut sel = Select::new();
        sel.projection.push(SelectItem::expr(Expr::col("name")));
        sel.from.push(TableWithJoins::table("assy"));
        sel.and_where(Expr::eq(Expr::qcol("assy", "obid"), Expr::lit(1i64)));
        let q = Query::select(sel);
        assert_eq!(q.to_string(), "SELECT name FROM assy WHERE assy.obid = 1");
    }

    #[test]
    fn and_where_appends_with_and() {
        let mut sel = Select::new();
        sel.projection.push(SelectItem::Wildcard);
        sel.from.push(TableWithJoins::table("t"));
        sel.and_where(Expr::eq(Expr::col("a"), Expr::lit(1i64)));
        sel.and_where(Expr::eq(Expr::col("b"), Expr::lit(2i64)));
        assert_eq!(sel.to_string(), "SELECT * FROM t WHERE a = 1 AND b = 2");
    }

    #[test]
    fn disjunction_folds_with_or() {
        let d = Expr::disjunction(vec![
            Expr::eq(Expr::col("a"), Expr::lit(1i64)),
            Expr::eq(Expr::col("b"), Expr::lit(2i64)),
            Expr::eq(Expr::col("c"), Expr::lit(3i64)),
        ])
        .unwrap();
        assert_eq!(d.to_string(), "a = 1 OR b = 2 OR c = 3");
        assert!(Expr::disjunction(vec![]).is_none());
    }

    #[test]
    fn or_under_and_is_parenthesized() {
        let or = Expr::or(
            Expr::eq(Expr::col("a"), Expr::lit(1i64)),
            Expr::eq(Expr::col("b"), Expr::lit(2i64)),
        );
        let and = Expr::and(Expr::eq(Expr::col("c"), Expr::lit(3i64)), or);
        assert_eq!(and.to_string(), "c = 3 AND (a = 1 OR b = 2)");
    }

    #[test]
    fn not_exists_renders() {
        let mut inner = Select::new();
        inner.projection.push(SelectItem::Wildcard);
        inner.from.push(TableWithJoins::table("rtbl"));
        let e = Expr::Exists {
            query: Box::new(Query::select(inner)),
            negated: true,
        };
        assert_eq!(e.to_string(), "NOT EXISTS (SELECT * FROM rtbl)");
    }

    #[test]
    fn cast_null_as_integer_renders_like_paper() {
        let e = Expr::Cast {
            expr: Box::new(Expr::Literal(Value::Null)),
            dtype: DataType::Int,
        };
        assert_eq!(e.to_string(), "CAST (NULL AS integer)");
    }

    #[test]
    fn aggregate_detection() {
        let e = Expr::binary(
            Expr::Function {
                name: "count".into(),
                args: vec![],
                star: true,
            },
            BinOp::LtEq,
            Expr::lit(10i64),
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        // aggregates inside a scalar subquery don't count for the outer expr
        let mut s = Select::new();
        s.projection.push(SelectItem::expr(Expr::Function {
            name: "count".into(),
            args: vec![],
            star: true,
        }));
        let sub = Expr::ScalarSubquery(Box::new(Query::select(s)));
        assert!(!sub.contains_aggregate());
    }

    #[test]
    fn flatten_setop_unrolls_left_deep_unions() {
        let mk = |n: i64| {
            let mut s = Select::new();
            s.projection.push(SelectItem::expr(Expr::lit(n)));
            SetExpr::Select(Box::new(s))
        };
        let u = SetExpr::SetOp {
            op: SetOp::Union,
            all: false,
            left: Box::new(SetExpr::SetOp {
                op: SetOp::Union,
                all: false,
                left: Box::new(mk(1)),
                right: Box::new(mk(2)),
            }),
            right: Box::new(mk(3)),
        };
        assert_eq!(u.flatten_setop(SetOp::Union).len(), 3);
        assert_eq!(u.flatten_setop(SetOp::Except).len(), 1);
    }

    #[test]
    fn from_table_names_includes_joins() {
        let mut sel = Select::new();
        sel.projection.push(SelectItem::Wildcard);
        let mut twj = TableWithJoins::table("rtbl");
        twj.joins.push(Join {
            kind: JoinKind::Inner,
            factor: TableFactor::Table {
                name: "link".into(),
                alias: None,
            },
            on: Some(Expr::eq(
                Expr::qcol("rtbl", "obid"),
                Expr::qcol("link", "left"),
            )),
        });
        sel.from.push(twj);
        assert_eq!(sel.from_table_names(), vec!["rtbl", "link"]);
    }

    #[test]
    fn update_statement_renders() {
        let st = Statement::Update {
            table: "assy".into(),
            assignments: vec![("checkedout".into(), Expr::lit(true))],
            predicate: Some(Expr::eq(Expr::col("obid"), Expr::lit(4i64))),
        };
        assert_eq!(
            st.to_string(),
            "UPDATE assy SET checkedout = TRUE WHERE obid = 4"
        );
    }
}
