//! Query executor.
//!
//! Evaluation is AST-walking over materialized row vectors — no byte-code,
//! no iterators-of-batches. That is a deliberate scope decision: the paper
//! ignores local execution cost ("transmission costs are the dominating
//! limitation factor", §6), so the executor optimizes only what changes
//! *row counts and correctness*: hash equi-joins, index pushdown,
//! semi-naive recursion, and once-only evaluation of uncorrelated
//! subqueries (the "intelligent query optimizer" the paper relies on in
//! §5.3.1).

pub mod aggregate;
pub mod explain;
pub mod expr;
pub mod join;
pub mod recursion;
pub mod setops;
pub mod subquery;

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::{Expr, OrderItem, Query, Select, SelectItem, SetExpr, TableFactor, With};
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::row::{ResultSet, Row};
use crate::schema::{Column, Schema};
use crate::value::{DataType, Value};

/// Tunables for execution; the ablation benches flip these.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Evaluate uncorrelated subqueries once per query instead of once per
    /// row (§5.3.1's optimizer assumption).
    pub subquery_cache: bool,
    /// Rewrite correlated `EXISTS` with equality correlation into a hashed
    /// semi-join evaluated once.
    pub semijoin_decorrelation: bool,
    /// Use hash indexes to satisfy `col = literal` filters on base tables.
    pub index_pushdown: bool,
    /// Iteration bound for recursive CTEs (cycle guard).
    pub recursion_limit: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            subquery_cache: true,
            semijoin_decorrelation: true,
            index_pushdown: true,
            recursion_limit: 10_000,
        }
    }
}

/// Counters describing what one query execution did. Exposed so tests and
/// the ablation benches can assert *how* a query ran, not just its result.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Subquery evaluations actually performed.
    pub subquery_evals: usize,
    /// Subquery evaluations avoided by the uncorrelated-result cache.
    pub subquery_cache_hits: usize,
    /// Correlated EXISTS rewrites into hashed semi-joins.
    pub decorrelated_semijoins: usize,
    /// Iterations across all recursive CTE evaluations.
    pub recursion_iterations: usize,
    /// Base-table filters satisfied by a hash index probe.
    pub index_probes: usize,
    /// Rows materialized out of base-table scans (after pushdown).
    pub rows_scanned: usize,
}

/// A single-binding materialized relation (CTE result, view result, derived
/// table, ...).
#[derive(Debug, Clone)]
pub struct RelRows {
    pub schema: Schema,
    pub rows: Vec<Vec<Value>>,
}

impl RelRows {
    pub fn from_result_set(rs: ResultSet) -> Self {
        RelRows {
            schema: rs.schema,
            rows: rs.rows.into_iter().map(|r| r.0).collect(),
        }
    }

    pub fn to_result_set(&self) -> ResultSet {
        ResultSet::new(
            self.schema.clone(),
            self.rows.iter().map(|r| Row(r.clone())).collect(),
        )
    }
}

/// Describes the flattened layout of a join intermediate: which binding
/// (table alias) starts at which offset, with which schema.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    entries: Vec<BindingEntry>,
    width: usize,
}

#[derive(Debug, Clone)]
pub struct BindingEntry {
    pub name: String,
    pub schema: Schema,
    pub offset: usize,
}

impl Bindings {
    pub fn new() -> Self {
        Bindings::default()
    }

    pub fn single(name: &str, schema: Schema) -> Self {
        let mut b = Bindings::new();
        b.push(name, schema);
        b
    }

    pub fn push(&mut self, name: &str, schema: Schema) -> usize {
        let offset = self.width;
        self.width += schema.len();
        self.entries.push(BindingEntry {
            name: name.to_ascii_lowercase(),
            schema,
            offset,
        });
        offset
    }

    pub fn entries(&self) -> &[BindingEntry] {
        &self.entries
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn entry(&self, name: &str) -> Option<&BindingEntry> {
        let lower = name.to_ascii_lowercase();
        self.entries.iter().find(|e| e.name == lower)
    }

    /// Resolve a column reference to a flat offset.
    /// `Ok(None)` means "not found here" (caller may try an outer scope);
    /// ambiguity is an error.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Option<usize>> {
        match qualifier {
            Some(q) => match self.entry(q) {
                Some(e) => Ok(e.schema.index_of(name).map(|i| e.offset + i)),
                None => Ok(None),
            },
            None => {
                let mut found = None;
                for e in &self.entries {
                    if let Some(i) = e.schema.index_of(name) {
                        if found.is_some() {
                            return Err(Error::Bind(format!("ambiguous column '{name}'")));
                        }
                        found = Some(e.offset + i);
                    }
                }
                Ok(found)
            }
        }
    }
}

/// A join intermediate: bindings + flattened rows.
#[derive(Debug, Clone)]
pub struct Relation {
    pub bindings: Bindings,
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    pub fn empty(bindings: Bindings) -> Self {
        Relation {
            bindings,
            rows: Vec::new(),
        }
    }
}

/// Evaluation environment for one row, chaining to outer query scopes for
/// correlated subqueries. `aggs` carries precomputed aggregate values when
/// evaluating projections/HAVING of a grouped query.
pub struct Env<'a> {
    pub bindings: &'a Bindings,
    pub row: &'a [Value],
    pub outer: Option<&'a Env<'a>>,
    pub aggs: Option<&'a HashMap<String, Value>>,
}

impl<'a> Env<'a> {
    pub fn new(bindings: &'a Bindings, row: &'a [Value]) -> Self {
        Env {
            bindings,
            row,
            outer: None,
            aggs: None,
        }
    }

    pub fn with_outer(
        bindings: &'a Bindings,
        row: &'a [Value],
        outer: Option<&'a Env<'a>>,
    ) -> Self {
        Env {
            bindings,
            row,
            outer,
            aggs: None,
        }
    }
}

/// Cached artifacts for subquery evaluation, keyed by the AST node address
/// (stable for the lifetime of one query execution).
#[derive(Default)]
pub struct SubqueryCache {
    /// Uncorrelated EXISTS/scalar/IN results.
    pub uncorrelated: HashMap<usize, CachedSubquery>,
    /// Decorrelated EXISTS semi-join key sets.
    pub semijoin: HashMap<usize, Arc<subquery::SemiJoinSet>>,
    /// Subqueries proven correlated (don't retry caching).
    pub known_correlated: std::collections::HashSet<usize>,
}

/// One cached uncorrelated subquery result.
#[derive(Clone)]
pub enum CachedSubquery {
    Exists(bool),
    Scalar(Value),
    /// `IN` set plus whether it contained NULL (three-valued logic).
    InSet(Arc<(std::collections::HashSet<Value>, bool)>),
}

/// Everything the executor threads through evaluation. Layered: WITH
/// clauses and recursion create children that add CTE bindings and a fresh
/// subquery cache.
pub struct ExecContext<'a> {
    pub catalog: &'a Catalog,
    pub config: &'a ExecConfig,
    pub stats: &'a RefCell<ExecStats>,
    /// Observability recorder for per-operator spans. Disabled by default
    /// (a free no-op handle), so profiling off changes nothing.
    pub obs: pdm_obs::Recorder,
    ctes: HashMap<String, Arc<RelRows>>,
    parent: Option<&'a ExecContext<'a>>,
    cache: RefCell<SubqueryCache>,
    /// Set when a column resolves in an outer scope during subquery
    /// evaluation — the runtime correlation detector.
    pub outer_access: Cell<bool>,
    /// View-expansion depth guard.
    depth: Cell<usize>,
}

impl<'a> ExecContext<'a> {
    pub fn new(
        catalog: &'a Catalog,
        config: &'a ExecConfig,
        stats: &'a RefCell<ExecStats>,
    ) -> Self {
        ExecContext {
            catalog,
            config,
            stats,
            obs: pdm_obs::Recorder::disabled(),
            ctes: HashMap::new(),
            parent: None,
            cache: RefCell::new(SubqueryCache::default()),
            outer_access: Cell::new(false),
            depth: Cell::new(0),
        }
    }

    /// Like [`ExecContext::new`] with an observability recorder attached:
    /// operators (scans, joins, recursion rounds, subqueries) emit spans
    /// into it as they run.
    pub fn with_recorder(
        catalog: &'a Catalog,
        config: &'a ExecConfig,
        stats: &'a RefCell<ExecStats>,
        obs: pdm_obs::Recorder,
    ) -> Self {
        let mut ctx = ExecContext::new(catalog, config, stats);
        ctx.obs = obs;
        ctx
    }

    /// Child layer: sees the parent's CTEs, adds its own, gets a fresh
    /// subquery cache (CTE bindings may differ, so cached results from the
    /// parent layer could be stale).
    pub fn child(&'a self) -> ExecContext<'a> {
        ExecContext {
            catalog: self.catalog,
            config: self.config,
            stats: self.stats,
            obs: self.obs.clone(),
            ctes: HashMap::new(),
            parent: Some(self),
            cache: RefCell::new(SubqueryCache::default()),
            outer_access: Cell::new(false),
            depth: Cell::new(self.depth.get()),
        }
    }

    pub fn bind_cte(&mut self, name: &str, rel: Arc<RelRows>) {
        self.ctes.insert(name.to_ascii_lowercase(), rel);
    }

    pub fn lookup_cte(&self, name: &str) -> Option<Arc<RelRows>> {
        let lower = name.to_ascii_lowercase();
        let mut ctx = Some(self);
        while let Some(c) = ctx {
            if let Some(rel) = c.ctes.get(&lower) {
                return Some(Arc::clone(rel));
            }
            ctx = c.parent;
        }
        None
    }

    pub fn cache(&self) -> &RefCell<SubqueryCache> {
        &self.cache
    }

    fn enter_view(&self) -> Result<()> {
        let d = self.depth.get();
        if d > 32 {
            return Err(Error::Eval(
                "view expansion too deep (cyclic views?)".into(),
            ));
        }
        self.depth.set(d + 1);
        Ok(())
    }

    fn exit_view(&self) {
        self.depth.set(self.depth.get() - 1);
    }
}

// ---------------------------------------------------------------------------
// Query evaluation
// ---------------------------------------------------------------------------

/// Evaluate a full query in `ctx`, with `outer` available for correlated
/// column references.
pub fn eval_query(
    ctx: &ExecContext<'_>,
    query: &Query,
    outer: Option<&Env<'_>>,
) -> Result<ResultSet> {
    let mut child;
    let ctx = if let Some(with) = &query.with {
        child = ctx.child();
        bind_with(&mut child, with, outer)?;
        &child
    } else {
        ctx
    };

    let mut result = match &query.body {
        // A plain SELECT may ORDER BY source columns that are not in the
        // projection; hidden sort columns handle that.
        SetExpr::Select(sel) if !query.order_by.is_empty() => {
            eval_select_ordered(ctx, sel, &query.order_by, outer)?
        }
        body => {
            let mut r = eval_set_expr(ctx, body, outer)?;
            if !query.order_by.is_empty() {
                // Set operations sort by output columns/ordinals only
                // (standard SQL).
                apply_order_by(&mut r, &query.order_by)?;
            }
            r
        }
    };

    if let Some(n) = query.limit {
        result.rows.truncate(n as usize);
    }
    Ok(result)
}

/// Evaluate a single SELECT with ORDER BY support for source columns: order
/// expressions that are neither ordinals nor output columns are appended as
/// hidden projection items, used for sorting, then stripped.
fn eval_select_ordered(
    ctx: &ExecContext<'_>,
    sel: &Select,
    order_by: &[OrderItem],
    outer: Option<&Env<'_>>,
) -> Result<ResultSet> {
    let needs_aggregate = !sel.group_by.is_empty()
        || sel.having.is_some()
        || sel.projection.iter().any(|item| match item {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        });

    // Aggregate selects (and DISTINCT, where hidden columns would change
    // dedup semantics) sort on output columns/ordinals only.
    if needs_aggregate || sel.distinct {
        let mut result = eval_select(ctx, sel, outer)?;
        apply_order_by(&mut result, order_by)?;
        return Ok(result);
    }

    // Extend the projection with hidden sort expressions where needed.
    let mut extended = sel.clone();
    let visible_names: Vec<String> = {
        // Output names of the explicit (non-wildcard) items; wildcard names
        // resolve per row source, so leave those to the column probe below.
        extended
            .projection
            .iter()
            .filter_map(|item| match item {
                SelectItem::Expr { expr, alias } => Some(
                    alias
                        .clone()
                        .unwrap_or_else(|| default_name(expr, 0))
                        .to_ascii_lowercase(),
                ),
                _ => None,
            })
            .collect()
    };

    enum Key {
        Ordinal(usize),
        OutputName(String),
        Hidden(usize), // index among hidden items, resolved after projection
    }
    let mut keys: Vec<(Key, bool)> = Vec::new();
    let mut hidden: Vec<Expr> = Vec::new();
    for item in order_by {
        let key = match &item.expr {
            Expr::Literal(Value::Int(n)) => Key::Ordinal((*n - 1).max(0) as usize),
            Expr::Column {
                qualifier: None,
                name,
            } if visible_names.contains(&name.to_ascii_lowercase()) => {
                Key::OutputName(name.to_ascii_lowercase())
            }
            other => {
                hidden.push(other.clone());
                Key::Hidden(hidden.len() - 1)
            }
        };
        keys.push((key, item.desc));
    }
    let hidden_count = hidden.len();
    for (i, e) in hidden.into_iter().enumerate() {
        extended
            .projection
            .push(SelectItem::aliased(e, format!("__ord{i}")));
    }

    let mut result = eval_select(ctx, &extended, outer)?;
    let visible_cols = result.schema.len() - hidden_count;

    // Resolve keys to column indexes in the extended result.
    let mut key_idx: Vec<(usize, bool)> = Vec::with_capacity(keys.len());
    for (key, desc) in keys {
        let idx = match key {
            Key::Ordinal(i) => {
                if i >= visible_cols {
                    return Err(Error::Bind(format!(
                        "ORDER BY ordinal {} out of range 1..={visible_cols}",
                        i + 1
                    )));
                }
                i
            }
            Key::OutputName(name) => result.schema.require(&name)?,
            Key::Hidden(i) => visible_cols + i,
        };
        key_idx.push((idx, desc));
    }

    result.rows.sort_by(|a, b| {
        for &(idx, desc) in &key_idx {
            let ord = a.get(idx).total_cmp(b.get(idx));
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });

    // Strip the hidden columns.
    if hidden_count > 0 {
        let schema = Schema::new(result.schema.columns()[..visible_cols].to_vec());
        for row in &mut result.rows {
            row.0.truncate(visible_cols);
        }
        result.schema = schema;
    }
    Ok(result)
}

/// Evaluate all CTEs of a WITH clause into the (child) context.
fn bind_with(ctx: &mut ExecContext<'_>, with: &With, outer: Option<&Env<'_>>) -> Result<()> {
    for cte in &with.ctes {
        let is_recursive = with.recursive && recursion::references_cte(&cte.query, &cte.name);
        let rel = if is_recursive {
            recursion::eval_recursive_cte(ctx, cte)?
        } else {
            let rs = eval_query(ctx, &cte.query, outer)?;
            recursion::rename_columns(RelRows::from_result_set(rs), &cte.columns, &cte.name)?
        };
        ctx.bind_cte(&cte.name, Arc::new(rel));
    }
    Ok(())
}

pub fn eval_set_expr(
    ctx: &ExecContext<'_>,
    body: &SetExpr,
    outer: Option<&Env<'_>>,
) -> Result<ResultSet> {
    match body {
        SetExpr::Select(sel) => eval_select(ctx, sel, outer),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let l = eval_set_expr(ctx, left, outer)?;
            let r = eval_set_expr(ctx, right, outer)?;
            setops::apply(*op, *all, l, r)
        }
    }
}

/// Evaluate one SELECT block.
pub fn eval_select(
    ctx: &ExecContext<'_>,
    sel: &Select,
    outer: Option<&Env<'_>>,
) -> Result<ResultSet> {
    // 1. FROM: build the joined relation (with WHERE-conjunct pushdown into
    //    base-table scans when safe).
    let where_conjuncts = sel
        .where_clause
        .as_ref()
        .map(split_conjuncts)
        .unwrap_or_default();

    let (relation, residual) = join::build_from(ctx, sel, &where_conjuncts, outer)?;

    // Constant-FROM select (SELECT 1): single empty row.
    let rows: Vec<Vec<Value>> = if sel.from.is_empty() {
        vec![Vec::new()]
    } else {
        relation.rows
    };
    let bindings = relation.bindings;

    // 2. WHERE: residual conjuncts not already pushed into scans.
    let filter_span = if residual.is_empty() {
        None
    } else {
        Some(ctx.obs.span(pdm_obs::kinds::FILTER, "where"))
    };
    let rows_in = rows.len() as u64;
    let mut filtered = Vec::with_capacity(rows.len());
    for row in rows {
        let env = Env::with_outer(&bindings, &row, outer);
        let mut keep = true;
        for conj in &residual {
            if !expr::eval_expr(ctx, &env, conj)?.is_true() {
                keep = false;
                break;
            }
        }
        if keep {
            filtered.push(row);
        }
    }
    if let Some(span) = filter_span {
        span.set_rows(rows_in, filtered.len() as u64);
    }

    // 3. Aggregation or plain projection.
    let needs_aggregate = !sel.group_by.is_empty()
        || sel.having.is_some()
        || sel.projection.iter().any(|item| match item {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        });

    let mut result = if needs_aggregate {
        aggregate::eval_aggregate_select(ctx, sel, &bindings, filtered, outer)?
    } else {
        project(ctx, sel, &bindings, &filtered, outer)?
    };

    // 4. DISTINCT.
    if sel.distinct {
        let mut seen = std::collections::HashSet::new();
        result.rows.retain(|r| seen.insert(r.clone()));
    }

    Ok(result)
}

/// Split an expression into its top-level AND conjuncts.
pub fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::BinaryOp {
            left,
            op: crate::ast::BinOp::And,
            right,
        } => {
            let mut parts = split_conjuncts(left);
            parts.extend(split_conjuncts(right));
            parts
        }
        other => vec![other.clone()],
    }
}

/// Expand the projection list against `bindings` into (expr, name) pairs.
pub(crate) fn expand_projection(sel: &Select, bindings: &Bindings) -> Result<Vec<(Expr, String)>> {
    let mut items = Vec::new();
    for item in &sel.projection {
        match item {
            SelectItem::Wildcard => {
                for e in bindings.entries() {
                    for c in e.schema.columns() {
                        items.push((
                            Expr::Column {
                                qualifier: Some(e.name.clone()),
                                name: c.name.clone(),
                            },
                            c.name.clone(),
                        ));
                    }
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let e = bindings
                    .entry(q)
                    .ok_or_else(|| Error::Bind(format!("unknown table alias '{q}' in {q}.*")))?;
                for c in e.schema.columns() {
                    items.push((
                        Expr::Column {
                            qualifier: Some(e.name.clone()),
                            name: c.name.clone(),
                        },
                        c.name.clone(),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias
                    .clone()
                    .unwrap_or_else(|| default_name(expr, items.len()));
                items.push((expr.clone(), name.to_ascii_lowercase()));
            }
        }
    }
    Ok(items)
}

fn default_name(expr: &Expr, ordinal: usize) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        _ => format!("col{}", ordinal + 1),
    }
}

/// Best-effort output type inference (used for result-schema metadata; the
/// executor itself is dynamically typed).
fn infer_type(expr: &Expr, bindings: &Bindings) -> DataType {
    match expr {
        Expr::Column { qualifier, name } => {
            if let Ok(Some(_)) = bindings.resolve(qualifier.as_deref(), name) {
                for e in bindings.entries() {
                    if let Some(i) = match qualifier {
                        Some(q) if e.name == q.to_ascii_lowercase() => e.schema.index_of(name),
                        Some(_) => None,
                        None => e.schema.index_of(name),
                    } {
                        return e.schema.column(i).dtype;
                    }
                }
            }
            DataType::Text
        }
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Int),
        Expr::Cast { dtype, .. } => *dtype,
        Expr::Function { name, .. } if name == "count" => DataType::Int,
        Expr::BinaryOp { op, left, .. } => match op {
            crate::ast::BinOp::And
            | crate::ast::BinOp::Or
            | crate::ast::BinOp::Eq
            | crate::ast::BinOp::NotEq
            | crate::ast::BinOp::Lt
            | crate::ast::BinOp::LtEq
            | crate::ast::BinOp::Gt
            | crate::ast::BinOp::GtEq => DataType::Bool,
            crate::ast::BinOp::Concat => DataType::Text,
            _ => infer_type(left, bindings),
        },
        Expr::Not(_) | Expr::IsNull { .. } | Expr::Exists { .. } | Expr::Between { .. } => {
            DataType::Bool
        }
        Expr::InList { .. } | Expr::InSubquery { .. } => DataType::Bool,
        Expr::Negate(e) => infer_type(e, bindings),
        _ => DataType::Text,
    }
}

/// Plain (non-aggregate) projection.
fn project(
    ctx: &ExecContext<'_>,
    sel: &Select,
    bindings: &Bindings,
    rows: &[Vec<Value>],
    outer: Option<&Env<'_>>,
) -> Result<ResultSet> {
    let items = expand_projection(sel, bindings)?;
    let schema = Schema::new(
        items
            .iter()
            .map(|(e, n)| Column::new(n.clone(), infer_type(e, bindings)))
            .collect(),
    );
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let env = Env::with_outer(bindings, row, outer);
        let mut values = Vec::with_capacity(items.len());
        for (e, _) in &items {
            values.push(expr::eval_expr(ctx, &env, e)?);
        }
        out.push(Row(values));
    }
    Ok(ResultSet::new(schema, out))
}

/// ORDER BY: ordinals (`ORDER BY 1,2`) or output-column names.
fn apply_order_by(result: &mut ResultSet, order_by: &[OrderItem]) -> Result<()> {
    let mut keys = Vec::with_capacity(order_by.len());
    for item in order_by {
        let idx = match &item.expr {
            Expr::Literal(Value::Int(n)) => {
                let n = *n;
                if n < 1 || n as usize > result.schema.len() {
                    return Err(Error::Bind(format!(
                        "ORDER BY ordinal {n} out of range 1..={}",
                        result.schema.len()
                    )));
                }
                (n - 1) as usize
            }
            Expr::Column {
                qualifier: None,
                name,
            } => result.schema.require(name)?,
            other => {
                return Err(Error::Bind(format!(
                    "ORDER BY supports ordinals and output columns, got {other}"
                )))
            }
        };
        keys.push((idx, item.desc));
    }
    result.rows.sort_by(|a, b| {
        for &(idx, desc) in &keys {
            let ord = a.get(idx).total_cmp(b.get(idx));
            let ord = if desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(())
}

/// Resolve a table factor into a named source for the join builder.
pub enum FactorSource {
    /// Borrow a base table from the catalog (rows accessed by reference).
    Table(String),
    /// Materialized rows (CTE, view, derived table).
    Rows(Arc<RelRows>),
}

pub fn factor_source(
    ctx: &ExecContext<'_>,
    factor: &TableFactor,
    outer: Option<&Env<'_>>,
) -> Result<(String, FactorSource)> {
    match factor {
        TableFactor::Table { name, alias } => {
            let binding = alias.as_deref().unwrap_or(name).to_ascii_lowercase();
            if let Some(rel) = ctx.lookup_cte(name) {
                return Ok((binding, FactorSource::Rows(rel)));
            }
            if ctx.catalog.has_table(name) {
                return Ok((binding, FactorSource::Table(name.to_ascii_lowercase())));
            }
            if let Some(view) = ctx.catalog.view(name) {
                ctx.enter_view()?;
                let query = view.query.clone();
                let rs = eval_query(ctx, &query, None);
                ctx.exit_view();
                return Ok((
                    binding,
                    FactorSource::Rows(Arc::new(RelRows::from_result_set(rs?))),
                ));
            }
            Err(Error::Bind(format!("unknown table '{name}'")))
        }
        TableFactor::Derived { subquery, alias } => {
            let rs = eval_query(ctx, subquery, outer)?;
            Ok((
                alias.to_ascii_lowercase(),
                FactorSource::Rows(Arc::new(RelRows::from_result_set(rs))),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bindings_resolution() {
        let mut b = Bindings::new();
        b.push(
            "assy",
            Schema::new(vec![
                Column::new("obid", DataType::Int),
                Column::new("name", DataType::Text),
            ]),
        );
        b.push(
            "link",
            Schema::new(vec![
                Column::new("obid", DataType::Int),
                Column::new("left", DataType::Int),
            ]),
        );
        assert_eq!(b.width(), 4);
        assert_eq!(b.resolve(Some("assy"), "obid").unwrap(), Some(0));
        assert_eq!(b.resolve(Some("link"), "left").unwrap(), Some(3));
        assert_eq!(b.resolve(None, "name").unwrap(), Some(1));
        assert_eq!(b.resolve(None, "missing").unwrap(), None);
        assert!(b.resolve(None, "obid").is_err()); // ambiguous
        assert_eq!(b.resolve(Some("nope"), "x").unwrap(), None);
    }

    #[test]
    fn split_conjuncts_flattens_ands() {
        let e = crate::parser::parse_expr("a = 1 AND b = 2 AND (c = 3 OR d = 4)").unwrap();
        let parts = split_conjuncts(&e);
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn default_names() {
        assert_eq!(default_name(&Expr::col("x"), 0), "x");
        assert_eq!(
            default_name(
                &Expr::Function {
                    name: "count".into(),
                    args: vec![],
                    star: true
                },
                0
            ),
            "count"
        );
        assert_eq!(default_name(&Expr::lit(1i64), 2), "col3");
    }
}
