//! Subquery evaluation: EXISTS, IN, scalar — with the two optimizations the
//! paper's approach leans on:
//!
//! * **Uncorrelated subqueries are evaluated once per query**, not once per
//!   row. §5.3.1 notes the ∀rows translation re-uses `rec_table` in the
//!   outer and inner clause "but an intelligent query optimizer will
//!   recognize that the inner clause needs to be evaluated only once, as it
//!   is an uncorrelated sub-query". Correlation is detected at runtime: the
//!   first evaluation records whether any column resolved in an outer scope.
//!
//! * **Correlated EXISTS with equality correlation decorrelates into a
//!   hashed semi-join** built once and probed per row — this keeps the
//!   ∃structure conditions (§5.3.2) linear instead of quadratic.

use std::collections::HashSet;
use std::sync::Arc;

use crate::ast::{BinOp, Expr, Query, Select, SelectItem, SetExpr, TableFactor};
use crate::error::{Error, Result};
use crate::exec::{
    eval_query, eval_select, expr::eval_expr, Bindings, CachedSubquery, Env, ExecContext,
};
use crate::row::ResultSet;
use crate::value::Value;

/// Stable identity of an AST node for the duration of one query execution.
fn node_key(q: &Query) -> usize {
    q as *const Query as usize
}

/// Evaluate a query as a subquery, detecting whether it touched any outer
/// scope (correlation).
fn eval_detecting(
    ctx: &ExecContext<'_>,
    env: &Env<'_>,
    query: &Query,
) -> Result<(ResultSet, bool)> {
    let span = ctx.obs.span(pdm_obs::kinds::SUBQUERY, "eval");
    let saved = ctx.outer_access.replace(false);
    let result = eval_query(ctx, query, Some(env));
    let correlated = ctx.outer_access.get();
    ctx.outer_access.set(saved || correlated);
    ctx.stats.borrow_mut().subquery_evals += 1;
    let rs = result?;
    span.set_rows(0, rs.len() as u64);
    span.set_detail(if correlated {
        "correlated"
    } else {
        "uncorrelated"
    });
    Ok((rs, correlated))
}

// ---------------------------------------------------------------------------
// EXISTS
// ---------------------------------------------------------------------------

/// `EXISTS (query)` for the row in `env`.
pub fn eval_exists(ctx: &ExecContext<'_>, env: &Env<'_>, query: &Query) -> Result<bool> {
    let key = node_key(query);

    {
        let cache = ctx.cache().borrow();
        if ctx.config.subquery_cache {
            if let Some(CachedSubquery::Exists(b)) = cache.uncorrelated.get(&key) {
                ctx.stats.borrow_mut().subquery_cache_hits += 1;
                return Ok(*b);
            }
        }
        if ctx.config.semijoin_decorrelation {
            if let Some(set) = cache.semijoin.get(&key) {
                let set = Arc::clone(set);
                drop(cache);
                ctx.stats.borrow_mut().subquery_cache_hits += 1;
                return set.probe(ctx, env);
            }
        }
    }

    let known_correlated = ctx.cache().borrow().known_correlated.contains(&key);

    if !known_correlated {
        // First encounter: evaluate once, learn whether it's correlated.
        let (rs, correlated) = eval_detecting(ctx, env, query)?;
        let exists = !rs.is_empty();
        if !correlated {
            if ctx.config.subquery_cache {
                ctx.cache()
                    .borrow_mut()
                    .uncorrelated
                    .insert(key, CachedSubquery::Exists(exists));
            }
            return Ok(exists);
        }
        ctx.cache().borrow_mut().known_correlated.insert(key);
        // Correlated: try to build a semi-join set for subsequent rows.
        if ctx.config.semijoin_decorrelation {
            if let Some(set) = SemiJoinSet::build(ctx, query)? {
                ctx.stats.borrow_mut().decorrelated_semijoins += 1;
                ctx.cache().borrow_mut().semijoin.insert(key, Arc::new(set));
            }
        }
        return Ok(exists);
    }

    // Known-correlated and no semi-join available: per-row evaluation.
    let (rs, _) = eval_detecting(ctx, env, query)?;
    Ok(!rs.is_empty())
}

// ---------------------------------------------------------------------------
// IN (subquery)
// ---------------------------------------------------------------------------

/// `needle IN (query)`. Returns `(found, saw_null_in_set)`.
pub fn eval_in_subquery(
    ctx: &ExecContext<'_>,
    env: &Env<'_>,
    query: &Query,
    needle: &Value,
) -> Result<(bool, bool)> {
    let key = node_key(query);

    if ctx.config.subquery_cache {
        let cache = ctx.cache().borrow();
        if let Some(CachedSubquery::InSet(set)) = cache.uncorrelated.get(&key) {
            let set = Arc::clone(set);
            drop(cache);
            ctx.stats.borrow_mut().subquery_cache_hits += 1;
            return Ok((set.0.contains(needle), set.1));
        }
    }

    let known_correlated = ctx.cache().borrow().known_correlated.contains(&key);
    let (rs, correlated) = eval_detecting(ctx, env, query)?;
    if rs.schema.len() != 1 {
        return Err(Error::Eval(format!(
            "IN subquery must return one column, got {}",
            rs.schema.len()
        )));
    }
    let mut set = HashSet::with_capacity(rs.len());
    let mut saw_null = false;
    for row in &rs.rows {
        let v = row.get(0);
        if v.is_null() {
            saw_null = true;
        } else {
            set.insert(v.clone());
        }
    }
    let found = set.contains(needle);
    if correlated {
        ctx.cache().borrow_mut().known_correlated.insert(key);
    } else if ctx.config.subquery_cache && !known_correlated {
        ctx.cache()
            .borrow_mut()
            .uncorrelated
            .insert(key, CachedSubquery::InSet(Arc::new((set, saw_null))));
    }
    Ok((found, saw_null))
}

// ---------------------------------------------------------------------------
// Scalar subquery
// ---------------------------------------------------------------------------

/// `(SELECT single-value)`; NULL on zero rows, error on more than one row.
pub fn eval_scalar(ctx: &ExecContext<'_>, env: &Env<'_>, query: &Query) -> Result<Value> {
    let key = node_key(query);

    if ctx.config.subquery_cache {
        let cache = ctx.cache().borrow();
        if let Some(CachedSubquery::Scalar(v)) = cache.uncorrelated.get(&key) {
            ctx.stats.borrow_mut().subquery_cache_hits += 1;
            return Ok(v.clone());
        }
    }

    let known_correlated = ctx.cache().borrow().known_correlated.contains(&key);
    let (rs, correlated) = eval_detecting(ctx, env, query)?;
    if rs.schema.len() != 1 {
        return Err(Error::Eval(format!(
            "scalar subquery must return one column, got {}",
            rs.schema.len()
        )));
    }
    let value = match rs.len() {
        0 => Value::Null,
        1 => rs.rows[0].get(0).clone(),
        n => return Err(Error::Eval(format!("scalar subquery returned {n} rows"))),
    };
    if correlated {
        ctx.cache().borrow_mut().known_correlated.insert(key);
    } else if ctx.config.subquery_cache && !known_correlated {
        ctx.cache()
            .borrow_mut()
            .uncorrelated
            .insert(key, CachedSubquery::Scalar(value.clone()));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Semi-join decorrelation
// ---------------------------------------------------------------------------

/// A decorrelated EXISTS: the inner query was executed once with its
/// correlated equality conjuncts removed; `keys` holds the tuples of inner
/// values those conjuncts compare against. Probing evaluates the outer side
/// of each pair in the outer row's environment.
pub struct SemiJoinSet {
    outer_exprs: Vec<Expr>,
    keys: HashSet<Vec<Value>>,
}

impl SemiJoinSet {
    /// Probe for the current outer row. NULL outer values never match
    /// (equality with NULL is unknown, so EXISTS is false).
    pub fn probe(&self, ctx: &ExecContext<'_>, env: &Env<'_>) -> Result<bool> {
        let mut key = Vec::with_capacity(self.outer_exprs.len());
        for e in &self.outer_exprs {
            let v = eval_expr(ctx, env, e)?;
            if v.is_null() {
                return Ok(false);
            }
            key.push(v);
        }
        Ok(self.keys.contains(&key))
    }

    /// Try to build the set. Returns `Ok(None)` when the subquery does not
    /// match the decorrelatable pattern (we then fall back to per-row
    /// evaluation).
    pub fn build(ctx: &ExecContext<'_>, query: &Query) -> Result<Option<SemiJoinSet>> {
        if query.with.is_some() || query.limit == Some(0) {
            return Ok(None);
        }
        let SetExpr::Select(sel) = &query.body else {
            return Ok(None);
        };
        if !sel.group_by.is_empty() || sel.having.is_some() {
            return Ok(None);
        }

        // Build the inner binding layout from the FROM clause.
        let mut inner = Bindings::new();
        for twj in &sel.from {
            for factor in std::iter::once(&twj.base).chain(twj.joins.iter().map(|j| &j.factor)) {
                let TableFactor::Table { name, alias } = factor else {
                    return Ok(None);
                };
                let schema = if let Some(rel) = ctx.lookup_cte(name) {
                    rel.schema.clone()
                } else if ctx.catalog.has_table(name) {
                    ctx.catalog.table(name)?.schema.clone()
                } else {
                    return Ok(None); // view or unknown — don't decorrelate
                };
                inner.push(alias.as_deref().unwrap_or(name), schema);
            }
            // All ON conjuncts must be inner-only.
            for j in &twj.joins {
                if let Some(on) = &j.on {
                    if !all_inner(on, &inner) {
                        return Ok(None);
                    }
                }
            }
        }

        // Classify WHERE conjuncts.
        let conjuncts = sel
            .where_clause
            .as_ref()
            .map(super::split_conjuncts)
            .unwrap_or_default();
        let mut local: Vec<Expr> = Vec::new();
        let mut pairs: Vec<(Expr, Expr)> = Vec::new(); // (inner, outer)
        for c in conjuncts {
            if all_inner(&c, &inner) {
                local.push(c);
                continue;
            }
            if let Expr::BinaryOp {
                left,
                op: BinOp::Eq,
                right,
            } = &c
            {
                let l_inner = all_inner(left, &inner);
                let r_inner = all_inner(right, &inner);
                let l_outer = all_outer(left, &inner);
                let r_outer = all_outer(right, &inner);
                if l_inner && r_outer {
                    pairs.push(((**left).clone(), (**right).clone()));
                    continue;
                }
                if r_inner && l_outer {
                    pairs.push(((**right).clone(), (**left).clone()));
                    continue;
                }
            }
            return Ok(None); // some other correlated shape — bail
        }
        if pairs.is_empty() {
            return Ok(None); // not correlated via equality — nothing to gain
        }

        // Execute the stripped query once, projecting the inner key exprs.
        let mut stripped = Select::new();
        stripped.from = sel.from.clone();
        stripped.where_clause = Expr::conjunction(local);
        stripped.projection = pairs
            .iter()
            .map(|(inner_expr, _)| SelectItem::expr(inner_expr.clone()))
            .collect();
        let rs = eval_select(ctx, &stripped, None)?;

        let mut keys = HashSet::with_capacity(rs.len());
        'rows: for row in &rs.rows {
            let mut key = Vec::with_capacity(row.len());
            for v in row.values() {
                if v.is_null() {
                    continue 'rows; // NULL inner keys never match
                }
                key.push(v.clone());
            }
            keys.insert(key);
        }

        Ok(Some(SemiJoinSet {
            outer_exprs: pairs.into_iter().map(|(_, o)| o).collect(),
            keys,
        }))
    }
}

/// Every column in `e` resolves inside `inner`, and `e` has no subqueries.
fn all_inner(e: &Expr, inner: &Bindings) -> bool {
    let mut ok = true;
    let mut any = false;
    visit(e, &mut |q, n, sub| {
        any = true;
        if sub || !matches!(inner.resolve(q, n), Ok(Some(_))) {
            ok = false;
        }
    });
    // Pure literals count as inner-local.
    ok || !any
}

/// No column in `e` resolves inside `inner` (so all references are outer),
/// `e` contains at least one column, and no subqueries.
fn all_outer(e: &Expr, inner: &Bindings) -> bool {
    let mut ok = true;
    let mut cols = 0usize;
    visit(e, &mut |q, n, sub| {
        if sub {
            ok = false;
            return;
        }
        cols += 1;
        if matches!(inner.resolve(q, n), Ok(Some(_))) {
            ok = false;
        }
    });
    ok && cols > 0
}

fn visit(e: &Expr, f: &mut impl FnMut(Option<&str>, &str, bool)) {
    match e {
        Expr::Column { qualifier, name } => f(qualifier.as_deref(), name, false),
        Expr::Literal(_) => {}
        Expr::BinaryOp { left, right, .. } => {
            visit(left, f);
            visit(right, f);
        }
        Expr::Not(x) | Expr::Negate(x) | Expr::Cast { expr: x, .. } => visit(x, f),
        Expr::IsNull { expr, .. } => visit(expr, f),
        Expr::InList { expr, list, .. } => {
            visit(expr, f);
            for x in list {
                visit(x, f);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            visit(expr, f);
            visit(low, f);
            visit(high, f);
        }
        Expr::Like { expr, pattern, .. } => {
            visit(expr, f);
            visit(pattern, f);
        }
        Expr::Function { args, .. } => {
            for a in args {
                visit(a, f);
            }
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, r) in branches {
                visit(c, f);
                visit(r, f);
            }
            if let Some(x) = else_expr {
                visit(x, f);
            }
        }
        Expr::InSubquery { expr, .. } => {
            visit(expr, f);
            f(None, "", true);
        }
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => f(None, "", true),
    }
}
