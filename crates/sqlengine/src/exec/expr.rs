//! Scalar expression evaluation with SQL three-valued logic.
//!
//! Boolean "unknown" is represented as `Value::Null`; `WHERE` keeps a row
//! only when the predicate evaluates to `Bool(true)`.

use crate::ast::{BinOp, Expr};
use crate::error::{Error, Result};
use crate::exec::{subquery, Env, ExecContext};
use crate::value::Value;

/// Evaluate `expr` for the row described by `env`.
pub fn eval_expr(ctx: &ExecContext<'_>, env: &Env<'_>, expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { qualifier, name } => lookup_column(ctx, env, qualifier.as_deref(), name),
        Expr::BinaryOp { left, op, right } => eval_binary(ctx, env, left, *op, right),
        Expr::Not(e) => match eval_expr(ctx, env, e)? {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(Error::Eval(format!("NOT applied to non-boolean {other}"))),
        },
        Expr::Negate(e) => match eval_expr(ctx, env, e)? {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(Error::Eval(format!("unary minus on non-number {other}"))),
        },
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(ctx, env, expr)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let needle = eval_expr(ctx, env, expr)?;
            let mut saw_null = needle.is_null();
            let mut found = false;
            for item in list {
                let v = eval_expr(ctx, env, item)?;
                match needle.sql_eq(&v) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            Ok(three_valued_in(found, saw_null, *negated))
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let needle = eval_expr(ctx, env, expr)?;
            let (found, saw_null) = subquery::eval_in_subquery(ctx, env, query, &needle)?;
            Ok(three_valued_in(
                found,
                saw_null || needle.is_null(),
                *negated,
            ))
        }
        Expr::Exists { query, negated } => {
            let exists = subquery::eval_exists(ctx, env, query)?;
            Ok(Value::Bool(exists != *negated))
        }
        Expr::ScalarSubquery(query) => subquery::eval_scalar(ctx, env, query),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_expr(ctx, env, expr)?;
            let lo = eval_expr(ctx, env, low)?;
            let hi = eval_expr(ctx, env, high)?;
            let ge = v.sql_cmp(&lo).map(|o| o != std::cmp::Ordering::Less);
            let le = v.sql_cmp(&hi).map(|o| o != std::cmp::Ordering::Greater);
            let both = and3(ge, le);
            Ok(match both {
                Some(b) => Value::Bool(b != *negated),
                None => Value::Null,
            })
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_expr(ctx, env, expr)?;
            let p = eval_expr(ctx, env, pattern)?;
            match (&v, &p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Text(s), Value::Text(pat)) => {
                    Ok(Value::Bool(like_match(s, pat) != *negated))
                }
                (a, b) => Err(Error::Eval(format!(
                    "LIKE expects text operands, got {a} LIKE {b}"
                ))),
            }
        }
        Expr::Function { name, args, star } => {
            if crate::ast::is_aggregate_name(name) {
                // In a grouped context the aggregate was precomputed and is
                // looked up by its rendered form.
                if let Some(aggs) = env.aggs {
                    let key = expr.to_string();
                    return aggs.get(&key).cloned().ok_or_else(|| {
                        Error::Eval(format!("aggregate {key} not available in this context"))
                    });
                }
                return Err(Error::Eval(format!(
                    "aggregate {}() used outside GROUP BY context",
                    name.to_uppercase()
                )));
            }
            if *star {
                return Err(Error::Eval(format!("{name}(*) is not a valid call")));
            }
            let mut values = Vec::with_capacity(args.len());
            for a in args {
                values.push(eval_expr(ctx, env, a)?);
            }
            ctx.catalog.functions.call(name, &values)
        }
        Expr::Cast { expr, dtype } => eval_expr(ctx, env, expr)?.cast(*dtype),
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (cond, result) in branches {
                if eval_expr(ctx, env, cond)?.is_true() {
                    return eval_expr(ctx, env, result);
                }
            }
            match else_expr {
                Some(e) => eval_expr(ctx, env, e),
                None => Ok(Value::Null),
            }
        }
    }
}

/// Resolve a column through the env chain; accesses that resolve in an outer
/// scope flip the context's correlation flag (used by the subquery cache to
/// decide whether a result may be reused across rows).
fn lookup_column(
    ctx: &ExecContext<'_>,
    env: &Env<'_>,
    qualifier: Option<&str>,
    name: &str,
) -> Result<Value> {
    let mut scope = Some(env);
    let mut depth = 0usize;
    while let Some(e) = scope {
        if let Some(idx) = e.bindings.resolve(qualifier, name)? {
            if depth > 0 {
                ctx.outer_access.set(true);
            }
            return Ok(e.row[idx].clone());
        }
        scope = e.outer;
        depth += 1;
    }
    let full = match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    };
    Err(Error::Bind(format!("unknown column '{full}'")))
}

fn eval_binary(
    ctx: &ExecContext<'_>,
    env: &Env<'_>,
    left: &Expr,
    op: BinOp,
    right: &Expr,
) -> Result<Value> {
    // AND/OR get short-circuit three-valued treatment.
    if op == BinOp::And {
        let l = to_bool3(eval_expr(ctx, env, left)?)?;
        if l == Some(false) {
            return Ok(Value::Bool(false));
        }
        let r = to_bool3(eval_expr(ctx, env, right)?)?;
        return Ok(match and3(l, r) {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        });
    }
    if op == BinOp::Or {
        let l = to_bool3(eval_expr(ctx, env, left)?)?;
        if l == Some(true) {
            return Ok(Value::Bool(true));
        }
        let r = to_bool3(eval_expr(ctx, env, right)?)?;
        return Ok(match or3(l, r) {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        });
    }

    let l = eval_expr(ctx, env, left)?;
    let r = eval_expr(ctx, env, right)?;

    match op {
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = l.sql_cmp(&r).ok_or_else(|| {
                Error::Eval(format!("cannot compare {l} with {r} (type mismatch)"))
            })?;
            let b = match op {
                BinOp::Eq => ord == std::cmp::Ordering::Equal,
                BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                BinOp::Lt => ord == std::cmp::Ordering::Less,
                BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                BinOp::Gt => ord == std::cmp::Ordering::Greater,
                BinOp::GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinOp::Plus | BinOp::Minus | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            eval_arithmetic(op, &l, &r)
        }
        BinOp::Concat => match (&l, &r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (a, b) => Ok(Value::Text(format!("{}{}", text_of(a), text_of(b)))),
        },
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    }
}

/// SQL LIKE matching: `%` matches any sequence, `_` any single character.
/// Case-sensitive, no escape character (the paper's queries don't need one).
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // try matching %% greedily and with backtracking
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

fn text_of(v: &Value) -> String {
    match v {
        Value::Text(s) => s.clone(),
        other => other.to_string(),
    }
}

fn eval_arithmetic(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            match op {
                BinOp::Plus => Ok(Value::Int(a.wrapping_add(b))),
                BinOp::Minus => Ok(Value::Int(a.wrapping_sub(b))),
                BinOp::Mul => Ok(Value::Int(a.wrapping_mul(b))),
                BinOp::Div => {
                    if b == 0 {
                        Err(Error::Eval("division by zero".into()))
                    } else {
                        Ok(Value::Int(a / b))
                    }
                }
                BinOp::Mod => {
                    if b == 0 {
                        Err(Error::Eval("modulo by zero".into()))
                    } else {
                        Ok(Value::Int(a % b))
                    }
                }
                _ => unreachable!(),
            }
        }
        _ => {
            let a = num_of(l)?;
            let b = num_of(r)?;
            match op {
                BinOp::Plus => Ok(Value::Float(a + b)),
                BinOp::Minus => Ok(Value::Float(a - b)),
                BinOp::Mul => Ok(Value::Float(a * b)),
                BinOp::Div => {
                    if b == 0.0 {
                        Err(Error::Eval("division by zero".into()))
                    } else {
                        Ok(Value::Float(a / b))
                    }
                }
                BinOp::Mod => Ok(Value::Float(a % b)),
                _ => unreachable!(),
            }
        }
    }
}

fn num_of(v: &Value) -> Result<f64> {
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Float(f) => Ok(*f),
        other => Err(Error::Eval(format!("expected a number, got {other}"))),
    }
}

fn to_bool3(v: Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(b)),
        Value::Null => Ok(None),
        other => Err(Error::Eval(format!("expected a boolean, got {other}"))),
    }
}

fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// Three-valued result of `[NOT] IN`: found → match; otherwise unknown if a
/// NULL was involved.
fn three_valued_in(found: bool, saw_null: bool, negated: bool) -> Value {
    if found {
        Value::Bool(!negated)
    } else if saw_null {
        Value::Null
    } else {
        Value::Bool(negated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::exec::{Bindings, ExecConfig, ExecStats};
    use crate::parser::parse_expr;
    use crate::schema::{Column, Schema};
    use crate::value::DataType;
    use std::cell::RefCell;

    fn eval(sql: &str, cols: &[(&str, Value)]) -> Result<Value> {
        let catalog = Catalog::new();
        let config = ExecConfig::default();
        let stats = RefCell::new(ExecStats::default());
        let ctx = ExecContext::new(&catalog, &config, &stats);
        let schema = Schema::new(
            cols.iter()
                .map(|(n, v)| Column::new(*n, v.data_type().unwrap_or(DataType::Int)))
                .collect(),
        );
        let bindings = Bindings::single("t", schema);
        let row: Vec<Value> = cols.iter().map(|(_, v)| v.clone()).collect();
        let env = Env::new(&bindings, &row);
        let e = parse_expr(sql)?;
        eval_expr(&ctx, &env, &e)
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval("1 < 2", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval("'a' <> 'b'", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval("2 >= 2.0", &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_comparison_is_unknown() {
        assert_eq!(eval("NULL = 1", &[]).unwrap(), Value::Null);
        assert_eq!(eval("NULL <> NULL", &[]).unwrap(), Value::Null);
    }

    #[test]
    fn type_mismatch_comparison_errors() {
        assert!(eval("'a' = 1", &[]).is_err());
    }

    #[test]
    fn three_valued_and_or() {
        assert_eq!(eval("FALSE AND NULL", &[]).unwrap(), Value::Bool(false));
        assert_eq!(eval("TRUE AND NULL", &[]).unwrap(), Value::Null);
        assert_eq!(eval("TRUE OR NULL", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval("FALSE OR NULL", &[]).unwrap(), Value::Null);
        assert_eq!(eval("NOT NULL", &[]).unwrap(), Value::Null);
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        // RHS would be a type error, but LHS decides.
        assert_eq!(
            eval("FALSE AND ('a' = 1)", &[]).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(eval("TRUE OR ('a' = 1)", &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("1 + 2 * 3", &[]).unwrap(), Value::Int(7));
        assert_eq!(eval("7 / 2", &[]).unwrap(), Value::Int(3));
        assert_eq!(eval("7.0 / 2", &[]).unwrap(), Value::Float(3.5));
        assert_eq!(eval("7 % 4", &[]).unwrap(), Value::Int(3));
        assert!(eval("1 / 0", &[]).is_err());
        assert_eq!(eval("1 + NULL", &[]).unwrap(), Value::Null);
    }

    #[test]
    fn concat() {
        assert_eq!(
            eval("'a' || 'b' || 1", &[]).unwrap(),
            Value::Text("ab1".into())
        );
        assert_eq!(eval("'a' || NULL", &[]).unwrap(), Value::Null);
    }

    #[test]
    fn in_list_three_valued() {
        assert_eq!(eval("2 IN (1, 2)", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval("3 IN (1, 2)", &[]).unwrap(), Value::Bool(false));
        assert_eq!(eval("3 IN (1, NULL)", &[]).unwrap(), Value::Null);
        assert_eq!(eval("3 NOT IN (1, NULL)", &[]).unwrap(), Value::Null);
        assert_eq!(eval("1 NOT IN (1, NULL)", &[]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn between_and_is_null() {
        assert_eq!(eval("5 BETWEEN 1 AND 10", &[]).unwrap(), Value::Bool(true));
        assert_eq!(
            eval("5 NOT BETWEEN 1 AND 4", &[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval("NULL BETWEEN 1 AND 4", &[]).unwrap(), Value::Null);
        assert_eq!(eval("NULL IS NULL", &[]).unwrap(), Value::Bool(true));
        assert_eq!(eval("1 IS NOT NULL", &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn column_lookup() {
        let cols = [("make_or_buy", Value::Text("make".into()))];
        assert_eq!(
            eval("make_or_buy <> 'buy'", &cols).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval("t.make_or_buy = 'make'", &cols).unwrap(),
            Value::Bool(true)
        );
        assert!(eval("nosuch", &cols).is_err());
    }

    #[test]
    fn case_expression() {
        assert_eq!(
            eval("CASE WHEN 1 = 1 THEN 'yes' ELSE 'no' END", &[]).unwrap(),
            Value::Text("yes".into())
        );
        assert_eq!(
            eval("CASE WHEN 1 = 2 THEN 'yes' END", &[]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn cast_in_expression() {
        assert_eq!(
            eval("CAST ('12' AS integer) + 1", &[]).unwrap(),
            Value::Int(13)
        );
    }

    #[test]
    fn functions_via_registry() {
        assert_eq!(eval("ABS(-3)", &[]).unwrap(), Value::Int(3));
        assert_eq!(
            eval("COALESCE(NULL, 'x')", &[]).unwrap(),
            Value::Text("x".into())
        );
    }

    #[test]
    fn aggregate_outside_group_context_errors() {
        let err = eval("COUNT(*)", &[]).unwrap_err();
        assert!(err.to_string().contains("GROUP BY"));
    }
}
