//! EXPLAIN: a static preview of the executor's decisions — which filters
//! push into scans, which joins use an index or a hash table, how
//! subqueries will be treated. Produced without executing the query, by
//! replaying the same analysis the executor performs, so the output is the
//! plan the executor will actually follow.

use std::fmt::Write;

use crate::ast::{BinOp, Expr, JoinKind, Query, Select, SetExpr, TableFactor};
use crate::catalog::Catalog;
use crate::error::Result;
use crate::exec::join::{classify_side, conjunct_target, equality_literal, Side};
use crate::exec::{recursion, split_conjuncts, Bindings, ExecConfig};
use crate::schema::Schema;

/// Render the plan of `query` as indented text.
pub fn explain_query(catalog: &Catalog, config: &ExecConfig, query: &Query) -> Result<String> {
    let mut out = String::new();
    explain_into(catalog, config, query, 0, &mut out)?;
    Ok(out)
}

fn pad(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn explain_into(
    catalog: &Catalog,
    config: &ExecConfig,
    query: &Query,
    depth: usize,
    out: &mut String,
) -> Result<()> {
    if let Some(with) = &query.with {
        for cte in &with.ctes {
            let recursive = with.recursive && recursion::references_cte(&cte.query, &cte.name);
            pad(out, depth);
            if recursive {
                let terms = cte.query.body.flatten_setop(crate::ast::SetOp::Union).len();
                let _ = writeln!(
                    out,
                    "RecursiveCTE {} [semi-naive, {} union terms, limit {}]",
                    cte.name, terms, config.recursion_limit
                );
            } else {
                let _ = writeln!(out, "CTE {} [materialized once]", cte.name);
            }
            explain_body(catalog, config, &cte.query.body, depth + 1, out)?;
        }
    }
    explain_body(catalog, config, &query.body, depth, out)?;
    if !query.order_by.is_empty() {
        pad(out, depth);
        let _ = writeln!(out, "Sort [{} key(s)]", query.order_by.len());
    }
    if let Some(n) = query.limit {
        pad(out, depth);
        let _ = writeln!(out, "Limit {n}");
    }
    Ok(())
}

fn explain_body(
    catalog: &Catalog,
    config: &ExecConfig,
    body: &SetExpr,
    depth: usize,
    out: &mut String,
) -> Result<()> {
    match body {
        SetExpr::Select(sel) => explain_select(catalog, config, sel, depth, out),
        SetExpr::SetOp {
            op,
            all,
            left,
            right,
        } => {
            pad(out, depth);
            let name = match op {
                crate::ast::SetOp::Union => {
                    if *all {
                        "UnionAll [concatenate]"
                    } else {
                        "Union [hash dedup]"
                    }
                }
                crate::ast::SetOp::Intersect => "Intersect [hash]",
                crate::ast::SetOp::Except => "Except [hash]",
            };
            let _ = writeln!(out, "{name}");
            explain_body(catalog, config, left, depth + 1, out)?;
            explain_body(catalog, config, right, depth + 1, out)
        }
    }
}

/// Schema of a named factor as the planner can know it statically (base
/// table or view output; CTEs and derived tables are reported opaquely).
fn static_schema(catalog: &Catalog, name: &str) -> Option<Schema> {
    if catalog.has_table(name) {
        return catalog.table(name).ok().map(|t| t.schema.clone());
    }
    None
}

fn explain_select(
    catalog: &Catalog,
    config: &ExecConfig,
    sel: &Select,
    depth: usize,
    out: &mut String,
) -> Result<()> {
    let has_aggregate = !sel.group_by.is_empty()
        || sel.having.is_some()
        || sel.projection.iter().any(|item| match item {
            crate::ast::SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        });

    pad(out, depth);
    let _ = writeln!(
        out,
        "Select{}{}",
        if sel.distinct { " [distinct]" } else { "" },
        if has_aggregate {
            if sel.group_by.is_empty() {
                " [aggregate]"
            } else {
                " [group by]"
            }
        } else {
            ""
        }
    );

    // Replay pushdown analysis.
    let conjuncts = sel
        .where_clause
        .as_ref()
        .map(split_conjuncts)
        .unwrap_or_default();
    let mut binding_schemas: Vec<(String, Schema)> = Vec::new();
    for twj in &sel.from {
        for factor in std::iter::once(&twj.base).chain(twj.joins.iter().map(|j| &j.factor)) {
            if let TableFactor::Table { name, alias } = factor {
                if let Some(schema) = static_schema(catalog, name) {
                    binding_schemas.push((
                        alias.as_deref().unwrap_or(name).to_ascii_lowercase(),
                        schema,
                    ));
                }
            }
        }
    }
    let mut pushed: Vec<(String, &Expr)> = Vec::new();
    let mut residual: Vec<&Expr> = Vec::new();
    for c in &conjuncts {
        match conjunct_target(c, &binding_schemas).filter(|_| config.index_pushdown) {
            Some(b) => pushed.push((b, c)),
            None => residual.push(c),
        }
    }

    // Factors.
    let mut left_bindings = Bindings::new();
    for twj in &sel.from {
        for (i, (factor, kind, on)) in std::iter::once((&twj.base, JoinKind::Inner, &None))
            .chain(twj.joins.iter().map(|j| (&j.factor, j.kind, &j.on)))
            .enumerate()
        {
            let binding = factor_binding(factor);
            let schema = match factor {
                TableFactor::Table { name, .. } => static_schema(catalog, name),
                TableFactor::Derived { .. } => None,
            };
            pad(out, depth + 1);
            let filters: Vec<String> = pushed
                .iter()
                .filter(|(b, _)| *b == binding)
                .map(|(_, e)| e.to_string())
                .collect();

            match factor {
                TableFactor::Derived { .. } => {
                    let _ = writeln!(out, "DerivedTable {binding}");
                }
                TableFactor::Table { name, .. } => {
                    let lower = name.to_ascii_lowercase();
                    let source_kind = if catalog.has_table(&lower) {
                        "table"
                    } else if catalog.has_view(&lower) {
                        "view"
                    } else {
                        "cte"
                    };

                    // Determine access path.
                    let is_join = i > 0;
                    let mut described = false;
                    if is_join && config.index_pushdown && source_kind == "table" {
                        if let (Some(on), Some(schema)) = (on.as_ref(), schema.as_ref()) {
                            if let Some(col) =
                                index_join_column(catalog, &left_bindings, &lower, schema, on)
                            {
                                let _ = writeln!(
                                    out,
                                    "{} IndexJoin {lower} [probe index on {col}]{}",
                                    join_kw(kind),
                                    filter_suffix(&filters)
                                );
                                described = true;
                            }
                        }
                    }
                    if !described && is_join {
                        let strategy = on
                            .as_ref()
                            .map(|e| {
                                if has_equi_pair(&left_bindings, &lower, schema.as_ref(), e) {
                                    "HashJoin"
                                } else {
                                    "NestedLoopJoin"
                                }
                            })
                            .unwrap_or("CrossJoin");
                        let _ = writeln!(
                            out,
                            "{} {strategy} {lower} [{source_kind} scan]{}",
                            join_kw(kind),
                            filter_suffix(&filters)
                        );
                        described = true;
                    }
                    if !described {
                        // base factor scan
                        let indexed = schema.as_ref().and_then(|s| {
                            conjuncts.iter().find_map(|c| {
                                equality_literal(c, s).and_then(|(idx, _)| {
                                    let t = catalog.table(&lower).ok()?;
                                    if t.has_index(idx) && config.index_pushdown {
                                        Some(s.column(idx).name.clone())
                                    } else {
                                        None
                                    }
                                })
                            })
                        });
                        match indexed {
                            Some(col) => {
                                let _ = writeln!(
                                    out,
                                    "IndexScan {lower} [index on {col}]{}",
                                    filter_suffix(&filters)
                                );
                            }
                            None => {
                                let _ = writeln!(
                                    out,
                                    "Scan {lower} [{source_kind}]{}",
                                    filter_suffix(&filters)
                                );
                            }
                        }
                    }
                }
            }
            if let Some(schema) = schema {
                left_bindings.push(&binding, schema);
            } else {
                left_bindings.push(&binding, Schema::empty());
            }
        }
    }

    // Residual filter + subquery notes.
    if !residual.is_empty() {
        pad(out, depth + 1);
        let notes: Vec<String> = residual
            .iter()
            .map(|e| format!("{e}{}", subquery_note(config, e)))
            .collect();
        let _ = writeln!(out, "Filter [{}]", notes.join(" AND "));
    }
    Ok(())
}

fn factor_binding(f: &TableFactor) -> String {
    f.binding_name().to_ascii_lowercase()
}

fn join_kw(kind: JoinKind) -> &'static str {
    match kind {
        JoinKind::Inner => "Inner",
        JoinKind::Left => "Left",
    }
}

fn filter_suffix(filters: &[String]) -> String {
    if filters.is_empty() {
        String::new()
    } else {
        format!(" filter[{}]", filters.join(" AND "))
    }
}

/// Would the executor's index nested-loop join fire for this ON clause?
fn index_join_column(
    catalog: &Catalog,
    left: &Bindings,
    table: &str,
    schema: &Schema,
    on: &Expr,
) -> Option<String> {
    let right = Bindings::single(table, schema.clone());
    let t = catalog.table(table).ok()?;
    for c in split_conjuncts(on) {
        if let Expr::BinaryOp {
            left: a,
            op: BinOp::Eq,
            right: b,
        } = &c
        {
            for (lhs, rhs) in [(a, b), (b, a)] {
                if classify_side(lhs, left, &right) == Side::Left {
                    if let Expr::Column { name, .. } = rhs.as_ref() {
                        if let Some(idx) = schema.index_of(name) {
                            if t.has_index(idx) {
                                return Some(schema.column(idx).name.clone());
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

/// Would the hash join find at least one usable equi pair?
fn has_equi_pair(left: &Bindings, table: &str, schema: Option<&Schema>, on: &Expr) -> bool {
    let Some(schema) = schema else { return false };
    let right = Bindings::single(table, schema.clone());
    split_conjuncts(on).iter().any(|c| {
        if let Expr::BinaryOp {
            left: a,
            op: BinOp::Eq,
            right: b,
        } = c
        {
            let sa = classify_side(a, left, &right);
            let sb = classify_side(b, left, &right);
            matches!(
                (sa, sb),
                (Side::Left, Side::Right) | (Side::Right, Side::Left)
            )
        } else {
            false
        }
    })
}

fn subquery_note(config: &ExecConfig, e: &Expr) -> &'static str {
    match e {
        Expr::Exists { .. } if config.subquery_cache => " {subquery: cached if uncorrelated}",
        Expr::InSubquery { .. } if config.subquery_cache => " {subquery: cached if uncorrelated}",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::Database;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE link (obid INTEGER, left INTEGER, right INTEGER)")
            .unwrap();
        db.execute("CREATE TABLE assy (obid INTEGER, name VARCHAR, dec VARCHAR)")
            .unwrap();
        db.execute("CREATE INDEX ON link (left)").unwrap();
        db.execute("CREATE INDEX ON assy (obid)").unwrap();
        db
    }

    #[test]
    fn navigational_expand_plan_uses_indexes() {
        let db = db();
        let q = parse_query(
            "SELECT assy.name FROM link JOIN assy ON link.right = assy.obid \
             WHERE link.left = 42",
        )
        .unwrap();
        let plan = explain_query(&db.catalog, &db.config, &q).unwrap();
        assert!(plan.contains("IndexScan link [index on left]"), "{plan}");
        assert!(
            plan.contains("IndexJoin assy [probe index on obid]"),
            "{plan}"
        );
    }

    #[test]
    fn recursive_cte_plan_reports_semi_naive() {
        let db = db();
        let q = parse_query(
            "WITH RECURSIVE rtbl (obid) AS (SELECT obid FROM assy WHERE obid = 1 \
             UNION SELECT link.right FROM rtbl JOIN link ON rtbl.obid = link.left) \
             SELECT obid FROM rtbl ORDER BY 1",
        )
        .unwrap();
        let plan = explain_query(&db.catalog, &db.config, &q).unwrap();
        assert!(
            plan.contains("RecursiveCTE rtbl [semi-naive, 2 union terms"),
            "{plan}"
        );
        assert!(plan.contains("Sort"), "{plan}");
    }

    #[test]
    fn pushdown_disabled_falls_back_to_scan() {
        let mut db = db();
        db.config.index_pushdown = false;
        let q = parse_query("SELECT * FROM link WHERE left = 1").unwrap();
        let plan = explain_query(&db.catalog, &db.config, &q).unwrap();
        assert!(plan.contains("Scan link [table]"), "{plan}");
        assert!(plan.contains("Filter"), "{plan}");
    }

    #[test]
    fn hash_join_without_index() {
        let mut db = Database::new();
        db.execute("CREATE TABLE a (x INTEGER)").unwrap();
        db.execute("CREATE TABLE b (y INTEGER)").unwrap();
        let q = parse_query("SELECT * FROM a JOIN b ON a.x = b.y").unwrap();
        let plan = explain_query(&db.catalog, &db.config, &q).unwrap();
        assert!(plan.contains("HashJoin b"), "{plan}");
        let q = parse_query("SELECT * FROM a JOIN b ON a.x < b.y").unwrap();
        let plan = explain_query(&db.catalog, &db.config, &q).unwrap();
        assert!(plan.contains("NestedLoopJoin b"), "{plan}");
    }

    #[test]
    fn union_and_aggregate_annotations() {
        let db = db();
        let q =
            parse_query("SELECT COUNT(*) FROM assy GROUP BY dec UNION ALL SELECT obid FROM link")
                .unwrap();
        let plan = explain_query(&db.catalog, &db.config, &q).unwrap();
        assert!(plan.contains("UnionAll"), "{plan}");
        assert!(plan.contains("[group by]"), "{plan}");
    }
}
