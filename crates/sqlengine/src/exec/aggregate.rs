//! GROUP BY / aggregate evaluation.
//!
//! Aggregates are computed per group, then projection/HAVING expressions are
//! evaluated with the precomputed values injected via `Env::aggs` (looked up
//! by the aggregate's rendered SQL form). Plain column references inside a
//! grouped projection resolve against the group's first row, which is exact
//! for group-by columns and permissive (first-value) otherwise.

use std::collections::HashMap;

use crate::ast::{Expr, Select};
use crate::error::{Error, Result};
use crate::exec::{expr::eval_expr, Bindings, Env, ExecContext};
use crate::row::{ResultSet, Row};
use crate::schema::{Column, Schema};
use crate::value::{DataType, Value};

/// Evaluate a SELECT that needs grouping/aggregation over the filtered rows.
pub fn eval_aggregate_select(
    ctx: &ExecContext<'_>,
    sel: &Select,
    bindings: &Bindings,
    rows: Vec<Vec<Value>>,
    outer: Option<&Env<'_>>,
) -> Result<ResultSet> {
    // Collect the distinct aggregate expressions appearing anywhere in the
    // projection or HAVING, keyed by rendered form.
    let mut agg_nodes: Vec<Expr> = Vec::new();
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut collect = |e: &Expr| {
        collect_aggregates(e, &mut |agg| {
            let key = agg.to_string();
            if seen.insert(key) {
                agg_nodes.push(agg.clone());
            }
        })
    };
    for item in &sel.projection {
        if let crate::ast::SelectItem::Expr { expr, .. } = item {
            collect(expr);
        }
    }
    if let Some(h) = &sel.having {
        collect(h);
    }

    // Group rows.
    let mut groups: Vec<(Vec<Value>, Vec<Vec<Value>>)> = Vec::new();
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    for row in rows {
        let env = Env::with_outer(bindings, &row, outer);
        let mut key = Vec::with_capacity(sel.group_by.len());
        for g in &sel.group_by {
            key.push(eval_expr(ctx, &env, g)?);
        }
        match index.get(&key) {
            Some(&i) => groups[i].1.push(row),
            None => {
                index.insert(key.clone(), groups.len());
                groups.push((key, vec![row]));
            }
        }
    }

    // A global aggregate (no GROUP BY) over zero rows still yields one group.
    if sel.group_by.is_empty() && groups.is_empty() {
        groups.push((Vec::new(), Vec::new()));
    }

    // Projection schema (wildcards expand against the source bindings and
    // take first-row values per group).
    let items = super::expand_projection(sel, bindings)?;
    let schema = Schema::new(
        items
            .iter()
            .map(|(e, n)| Column::new(n.clone(), infer_agg_type(e)))
            .collect(),
    );

    let empty_row: Vec<Value> = vec![Value::Null; bindings.width()];
    let mut out = Vec::with_capacity(groups.len());
    for (_key, group_rows) in &groups {
        // Compute each aggregate over the group.
        let mut aggs: HashMap<String, Value> = HashMap::new();
        for agg in &agg_nodes {
            let v = compute_aggregate(ctx, bindings, group_rows, agg, outer)?;
            aggs.insert(agg.to_string(), v);
        }

        let rep = group_rows.first().map(Vec::as_slice).unwrap_or(&empty_row);
        let env = Env {
            bindings,
            row: rep,
            outer,
            aggs: Some(&aggs),
        };

        if let Some(h) = &sel.having {
            if !eval_expr(ctx, &env, h)?.is_true() {
                continue;
            }
        }

        let mut values = Vec::with_capacity(items.len());
        for (e, _) in &items {
            values.push(eval_expr(ctx, &env, e)?);
        }
        out.push(Row(values));
    }

    Ok(ResultSet::new(schema, out))
}

/// Find aggregate function nodes in an expression (not descending into
/// subqueries — their aggregates belong to them).
fn collect_aggregates(e: &Expr, f: &mut impl FnMut(&Expr)) {
    match e {
        Expr::Function { name, args, .. } if crate::ast::is_aggregate_name(name) => {
            f(e);
            // nested aggregates are invalid SQL; don't recurse into args
            let _ = args;
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, f);
            }
        }
        Expr::BinaryOp { left, right, .. } => {
            collect_aggregates(left, f);
            collect_aggregates(right, f);
        }
        Expr::Not(x) | Expr::Negate(x) | Expr::Cast { expr: x, .. } => collect_aggregates(x, f),
        Expr::IsNull { expr, .. } => collect_aggregates(expr, f),
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, f);
            for x in list {
                collect_aggregates(x, f);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, f);
            collect_aggregates(low, f);
            collect_aggregates(high, f);
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, r) in branches {
                collect_aggregates(c, f);
                collect_aggregates(r, f);
            }
            if let Some(x) = else_expr {
                collect_aggregates(x, f);
            }
        }
        _ => {}
    }
}

/// Compute one aggregate over a group's rows.
fn compute_aggregate(
    ctx: &ExecContext<'_>,
    bindings: &Bindings,
    rows: &[Vec<Value>],
    agg: &Expr,
    outer: Option<&Env<'_>>,
) -> Result<Value> {
    let Expr::Function { name, args, star } = agg else {
        return Err(Error::Eval(format!("not an aggregate: {agg}")));
    };

    if *star {
        if name != "count" {
            return Err(Error::Eval(format!("{name}(*) is not valid")));
        }
        return Ok(Value::Int(rows.len() as i64));
    }

    if args.len() != 1 {
        return Err(Error::Eval(format!(
            "{}() expects exactly one argument",
            name.to_uppercase()
        )));
    }

    // Evaluate the argument per row, skipping NULLs (SQL semantics).
    let mut values = Vec::with_capacity(rows.len());
    for row in rows {
        let env = Env::with_outer(bindings, row, outer);
        let v = eval_expr(ctx, &env, &args[0])?;
        if !v.is_null() {
            values.push(v);
        }
    }

    match name.as_str() {
        "count" => Ok(Value::Int(values.len() as i64)),
        "min" => Ok(values
            .into_iter()
            .reduce(|a, b| {
                if b.total_cmp(&a) == std::cmp::Ordering::Less {
                    b
                } else {
                    a
                }
            })
            .unwrap_or(Value::Null)),
        "max" => Ok(values
            .into_iter()
            .reduce(|a, b| {
                if b.total_cmp(&a) == std::cmp::Ordering::Greater {
                    b
                } else {
                    a
                }
            })
            .unwrap_or(Value::Null)),
        "sum" | "avg" => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut all_int = true;
            let mut sum = 0.0f64;
            let mut isum = 0i64;
            for v in &values {
                match v {
                    Value::Int(i) => {
                        sum += *i as f64;
                        isum = isum.wrapping_add(*i);
                    }
                    Value::Float(f) => {
                        all_int = false;
                        sum += *f;
                    }
                    other => {
                        return Err(Error::Eval(format!(
                            "{}() over non-numeric value {other}",
                            name.to_uppercase()
                        )))
                    }
                }
            }
            if name == "sum" {
                Ok(if all_int {
                    Value::Int(isum)
                } else {
                    Value::Float(sum)
                })
            } else {
                Ok(Value::Float(sum / values.len() as f64))
            }
        }
        other => Err(Error::Eval(format!("unknown aggregate '{other}'"))),
    }
}

fn infer_agg_type(e: &Expr) -> DataType {
    match e {
        Expr::Function { name, .. } if name == "count" => DataType::Int,
        Expr::Function { name, .. } if name == "avg" => DataType::Float,
        Expr::Cast { dtype, .. } => *dtype,
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Int),
        _ => DataType::Float,
    }
}
