//! Semi-naive evaluation of `WITH RECURSIVE` common table expressions.
//!
//! The CTE body must be a UNION (or UNION ALL) chain; terms that reference
//! the CTE in their FROM clause are recursive, the rest seed the iteration.
//! Each round binds the CTE name to the *delta* of the previous round
//! (semi-naive), so a β-ary tree of depth δ finishes in δ joins instead of
//! δ² — this is what makes the paper's one-query multi-level expand cheap on
//! the server side.

use std::collections::HashSet;
use std::sync::Arc;

use crate::ast::{Cte, Query, SetExpr, SetOp, TableFactor};
use crate::error::{Error, Result};
use crate::exec::{eval_set_expr, ExecContext, RelRows};
use crate::row::Row;
use crate::schema::{Column, Schema};

/// Does `query` reference `name` as a table anywhere in its FROM clauses
/// (including derived tables and set-operation branches)?
pub fn references_cte(query: &Query, name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    body_references(&query.body, &lower)
}

fn body_references(body: &SetExpr, name: &str) -> bool {
    match body {
        SetExpr::Select(sel) => sel.from.iter().any(|twj| {
            std::iter::once(&twj.base)
                .chain(twj.joins.iter().map(|j| &j.factor))
                .any(|f| factor_references(f, name))
        }),
        SetExpr::SetOp { left, right, .. } => {
            body_references(left, name) || body_references(right, name)
        }
    }
}

fn factor_references(f: &TableFactor, name: &str) -> bool {
    match f {
        TableFactor::Table { name: n, .. } => n.to_ascii_lowercase() == name,
        TableFactor::Derived { subquery, .. } => body_references(&subquery.body, name),
    }
}

/// Rename a relation's columns to the CTE's declared column list (keeping
/// inferred types), and validate arity.
pub fn rename_columns(rel: RelRows, declared: &[String], cte_name: &str) -> Result<RelRows> {
    if declared.is_empty() {
        return Ok(rel);
    }
    if declared.len() != rel.schema.len() {
        return Err(Error::Bind(format!(
            "CTE '{cte_name}' declares {} columns but its query produces {}",
            declared.len(),
            rel.schema.len()
        )));
    }
    let schema = Schema::new(
        declared
            .iter()
            .zip(rel.schema.columns())
            .map(|(name, col)| Column::new(name.clone(), col.dtype))
            .collect(),
    );
    Ok(RelRows {
        schema,
        rows: rel.rows,
    })
}

/// Evaluate one recursive CTE into a materialized relation.
///
/// `ctx` is the WITH clause's child context; earlier CTEs of the same WITH
/// are already bound in it.
pub fn eval_recursive_cte(ctx: &ExecContext<'_>, cte: &Cte) -> Result<RelRows> {
    if !cte.query.order_by.is_empty() || cte.query.limit.is_some() {
        return Err(Error::Bind(
            "ORDER BY/LIMIT are not allowed in a recursive CTE body".into(),
        ));
    }

    // Flatten the UNION chain and split seed vs recursive terms.
    let dedup = !union_chain_is_all(&cte.query.body)?;
    let terms = cte.query.body.flatten_setop(SetOp::Union);
    let mut seeds = Vec::new();
    let mut recursive = Vec::new();
    for t in terms {
        if body_references(t, &cte.name.to_ascii_lowercase()) {
            recursive.push(t);
        } else {
            seeds.push(t);
        }
    }
    if recursive.is_empty() {
        // Not actually recursive; evaluate the whole body normally.
        let rs = eval_set_expr(ctx, &cte.query.body, None)?;
        return rename_columns(RelRows::from_result_set(rs), &cte.columns, &cte.name);
    }
    if seeds.is_empty() {
        return Err(Error::Bind(format!(
            "recursive CTE '{}' has no non-recursive seed term",
            cte.name
        )));
    }

    // Evaluate seeds.
    let mut schema: Option<Schema> = None;
    let mut total: Vec<Vec<crate::value::Value>> = Vec::new();
    let mut total_set: HashSet<Row> = HashSet::new();
    let mut delta: Vec<Vec<crate::value::Value>> = Vec::new();

    for seed in &seeds {
        let rs = eval_set_expr(ctx, seed, None)?;
        let rel = rename_columns(RelRows::from_result_set(rs), &cte.columns, &cte.name)?;
        match &schema {
            None => schema = Some(rel.schema.clone()),
            Some(s) => {
                if s.len() != rel.schema.len() {
                    return Err(Error::Bind(format!(
                        "recursive CTE '{}' seed terms disagree in arity",
                        cte.name
                    )));
                }
            }
        }
        for row in rel.rows {
            if !dedup || total_set.insert(Row(row.clone())) {
                total.push(row.clone());
                delta.push(row);
            }
        }
    }
    let schema = schema.expect("at least one seed");

    // Iterate.
    let rec_span = ctx.obs.span(pdm_obs::kinds::RECURSION, &cte.name);
    let limit = ctx.config.recursion_limit;
    let mut iterations = 0usize;
    while !delta.is_empty() {
        iterations += 1;
        if iterations > limit {
            return Err(Error::RecursionLimit(limit));
        }
        let round_span = ctx.obs.span(
            pdm_obs::kinds::RECURSION_ROUND,
            format!("round{iterations}"),
        );
        let delta_in = delta.len() as u64;

        // Bind the CTE name to the delta for this round, in a fresh child
        // layer (fresh subquery cache — cached results against the previous
        // delta would be stale).
        let mut iter_ctx = ctx.child();
        iter_ctx.bind_cte(
            &cte.name,
            Arc::new(RelRows {
                schema: schema.clone(),
                rows: std::mem::take(&mut delta),
            }),
        );

        let mut produced: Vec<Vec<crate::value::Value>> = Vec::new();
        for term in &recursive {
            let rs = eval_set_expr(&iter_ctx, term, None)?;
            if rs.schema.len() != schema.len() {
                return Err(Error::Bind(format!(
                    "recursive term of CTE '{}' produces {} columns, expected {}",
                    cte.name,
                    rs.schema.len(),
                    schema.len()
                )));
            }
            for row in rs.rows {
                if dedup {
                    if total_set.insert(row.clone()) {
                        produced.push(row.0);
                    }
                } else {
                    produced.push(row.0);
                }
            }
        }

        round_span.set_rows(delta_in, produced.len() as u64);
        total.extend(produced.iter().cloned());
        delta = produced;
    }

    ctx.stats.borrow_mut().recursion_iterations += iterations;
    rec_span.set_rows(0, total.len() as u64);
    rec_span.set_detail(format!("{iterations} rounds"));
    Ok(RelRows {
        schema,
        rows: total,
    })
}

/// Inspect the UNION chain: `true` if every set operation is UNION ALL.
/// Mixing UNION and UNION ALL in one recursive body is rejected.
fn union_chain_is_all(body: &SetExpr) -> Result<bool> {
    let mut saw_all = false;
    let mut saw_distinct = false;
    walk_ops(body, &mut |op, all| {
        if op == SetOp::Union {
            if all {
                saw_all = true;
            } else {
                saw_distinct = true;
            }
        }
    });
    match (saw_all, saw_distinct) {
        (true, true) => Err(Error::Bind(
            "recursive CTE mixes UNION and UNION ALL".into(),
        )),
        (true, false) => Ok(true),
        _ => Ok(false),
    }
}

fn walk_ops(body: &SetExpr, f: &mut impl FnMut(SetOp, bool)) {
    if let SetExpr::SetOp {
        op,
        all,
        left,
        right,
    } = body
    {
        f(*op, *all);
        walk_ops(left, f);
        walk_ops(right, f);
    }
}
