//! FROM-clause evaluation: scans with predicate/index pushdown, hash
//! equi-joins with nested-loop fallback, LEFT joins, and cross products.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, JoinKind, Select};
use crate::error::Result;
use crate::exec::{
    expr::eval_expr, factor_source, Bindings, Env, ExecContext, FactorSource, Relation,
};
use crate::schema::Schema;
use crate::value::Value;

/// Build the joined relation for a SELECT's FROM clause.
///
/// `where_conjuncts` are the top-level AND parts of the WHERE clause; any
/// conjunct that references exactly one base binding (and contains no
/// subquery) is pushed into that binding's scan. Returns the relation plus
/// the conjuncts that still need post-join evaluation.
pub fn build_from(
    ctx: &ExecContext<'_>,
    sel: &Select,
    where_conjuncts: &[Expr],
    outer: Option<&Env<'_>>,
) -> Result<(Relation, Vec<Expr>)> {
    if sel.from.is_empty() {
        return Ok((Relation::empty(Bindings::new()), where_conjuncts.to_vec()));
    }

    // Resolve all factor sources up front so pushdown analysis knows every
    // binding's schema.
    struct ResolvedFactor {
        binding: String,
        schema: Schema,
        source: FactorSource,
        kind: JoinKind,
        on: Option<Expr>,
        /// Start of a new FROM item (cross-joined against what came before).
        new_item: bool,
    }

    let mut factors: Vec<ResolvedFactor> = Vec::new();
    for twj in &sel.from {
        let (binding, source) = factor_source(ctx, &twj.base, outer)?;
        factors.push(ResolvedFactor {
            schema: source_schema(ctx, &source)?,
            binding,
            source,
            kind: JoinKind::Inner,
            on: None,
            new_item: true,
        });
        for j in &twj.joins {
            let (binding, source) = factor_source(ctx, &j.factor, outer)?;
            factors.push(ResolvedFactor {
                schema: source_schema(ctx, &source)?,
                binding,
                source,
                kind: j.kind,
                on: j.on.clone(),
                new_item: false,
            });
        }
    }

    // Pushdown: assign each WHERE conjunct to the single binding it touches,
    // if any. Conjuncts on the nullable side of a LEFT JOIN must stay
    // post-join (filtering before null-padding changes semantics).
    let binding_schemas: Vec<(String, Schema)> = factors
        .iter()
        .map(|f| (f.binding.clone(), f.schema.clone()))
        .collect();
    let mut pushed: HashMap<String, Vec<Expr>> = HashMap::new();
    let mut residual: Vec<Expr> = Vec::new();
    for conj in where_conjuncts {
        let target = if ctx.config.index_pushdown {
            conjunct_target(conj, &binding_schemas)
        } else {
            None
        };
        match target {
            Some(b)
                if factors
                    .iter()
                    .any(|f| f.binding == b && f.kind == JoinKind::Inner) =>
            {
                pushed.entry(b).or_default().push(conj.clone());
            }
            _ => residual.push(conj.clone()),
        }
    }

    // Fold factors left to right.
    let mut relation: Option<Relation> = None;
    for f in factors {
        let filters = pushed.remove(&f.binding).unwrap_or_default();
        relation = Some(match relation {
            None => Relation {
                bindings: Bindings::single(&f.binding, f.schema.clone()),
                rows: scan_source(ctx, &f.binding, &f.schema, &f.source, &filters)?,
            },
            Some(left) => {
                let on = if f.new_item { None } else { f.on.clone() };
                // Prefer an index nested-loop join when the new factor is a
                // base table with a hash index on its join column — this is
                // what keeps per-node navigational queries and semi-naive
                // recursion from rescanning the link table.
                if let Some(joined) = try_index_join(
                    ctx,
                    &left,
                    &f.binding,
                    &f.schema,
                    &f.source,
                    f.kind,
                    on.as_ref(),
                    &filters,
                    outer,
                )? {
                    joined
                } else {
                    let rows = scan_source(ctx, &f.binding, &f.schema, &f.source, &filters)?;
                    join_step(
                        ctx,
                        left,
                        &f.binding,
                        f.schema,
                        rows,
                        f.kind,
                        on.as_ref(),
                        outer,
                    )?
                }
            }
        });
    }

    Ok((relation.expect("nonempty FROM"), residual))
}

/// Schema a factor source will produce.
fn source_schema(ctx: &ExecContext<'_>, source: &FactorSource) -> Result<Schema> {
    match source {
        FactorSource::Table(name) => Ok(ctx.catalog.table(name)?.schema.clone()),
        FactorSource::Rows(rel) => Ok(rel.schema.clone()),
    }
}

/// Materialize a factor's rows, applying pushed-down filters during the scan
/// and using a hash index for `col = literal` filters when available.
fn scan_source(
    ctx: &ExecContext<'_>,
    binding: &str,
    schema: &Schema,
    source: &FactorSource,
    filters: &[Expr],
) -> Result<Vec<Vec<Value>>> {
    let bindings = Bindings::single(binding, schema.clone());
    let span = ctx.obs.span(pdm_obs::kinds::SCAN, binding);

    match source {
        FactorSource::Table(name) => {
            let table = ctx.catalog.table(name)?;
            // Try to satisfy one equality filter with an index probe.
            let mut probe: Option<(usize, Value)> = None;
            let mut remaining: Vec<&Expr> = Vec::new();
            for f in filters {
                if probe.is_none() {
                    if let Some((col, value)) = equality_literal(f, schema) {
                        if table.has_index(col) {
                            probe = Some((col, value));
                            continue;
                        }
                    }
                }
                remaining.push(f);
            }

            let mut out = Vec::new();
            let mut keep_row = |row: &crate::row::Row| -> Result<()> {
                let env = Env::new(&bindings, row.values());
                for f in &remaining {
                    if !eval_expr(ctx, &env, f)?.is_true() {
                        return Ok(());
                    }
                }
                out.push(row.values().to_vec());
                Ok(())
            };

            let probed = probe.is_some();
            if let Some((col, value)) = probe {
                ctx.stats.borrow_mut().index_probes += 1;
                if let Some(row_ids) = table.index_lookup(col, &value) {
                    for &rid in row_ids {
                        keep_row(table.row(rid))?;
                    }
                }
            } else {
                for row in table.rows() {
                    keep_row(row)?;
                }
            }
            ctx.stats.borrow_mut().rows_scanned += out.len();
            span.set_rows(0, out.len() as u64);
            span.set_detail(if probed { "index probe" } else { "full scan" });
            Ok(out)
        }
        FactorSource::Rows(rel) => {
            let mut out = Vec::new();
            for row in &rel.rows {
                let env = Env::new(&bindings, row);
                let mut keep = true;
                for f in filters {
                    if !eval_expr(ctx, &env, f)?.is_true() {
                        keep = false;
                        break;
                    }
                }
                if keep {
                    out.push(row.clone());
                }
            }
            ctx.stats.borrow_mut().rows_scanned += out.len();
            span.set_rows(0, out.len() as u64);
            span.set_detail("rows");
            Ok(out)
        }
    }
}

/// If `e` is `col = literal` (either order) over `schema`, return the column
/// position and the literal.
pub(crate) fn equality_literal(e: &Expr, schema: &Schema) -> Option<(usize, Value)> {
    let Expr::BinaryOp {
        left,
        op: BinOp::Eq,
        right,
    } = e
    else {
        return None;
    };
    let as_col = |x: &Expr| -> Option<usize> {
        if let Expr::Column { name, .. } = x {
            schema.index_of(name)
        } else {
            None
        }
    };
    let as_lit = |x: &Expr| -> Option<Value> {
        if let Expr::Literal(v) = x {
            Some(v.clone())
        } else {
            None
        }
    };
    if let (Some(c), Some(v)) = (as_col(left), as_lit(right)) {
        return Some((c, v));
    }
    if let (Some(c), Some(v)) = (as_col(right), as_lit(left)) {
        return Some((c, v));
    }
    None
}

/// Which binding(s) a conjunct's columns reference. `None` means it cannot
/// be attributed to exactly one binding (multiple bindings, unresolvable
/// columns, or it contains a subquery).
pub(crate) fn conjunct_target(e: &Expr, bindings: &[(String, Schema)]) -> Option<String> {
    let mut target: Option<String> = None;
    let mut ok = true;
    visit_columns(e, &mut |qualifier, name, has_subquery| {
        if has_subquery {
            ok = false;
            return;
        }
        let mut owners = bindings.iter().filter(|(b, s)| match qualifier {
            Some(q) => b == &q.to_ascii_lowercase() && s.index_of(name).is_some(),
            None => s.index_of(name).is_some(),
        });
        match (owners.next(), owners.next()) {
            (Some((b, _)), None) => match &target {
                Some(t) if t != b => ok = false,
                _ => target = Some(b.clone()),
            },
            _ => ok = false,
        }
    });
    if ok {
        target
    } else {
        None
    }
}

/// Walk an expression, reporting each column reference; subqueries are
/// reported via the `has_subquery` flag (they poison pushdown).
fn visit_columns(e: &Expr, f: &mut impl FnMut(Option<&str>, &str, bool)) {
    match e {
        Expr::Column { qualifier, name } => f(qualifier.as_deref(), name, false),
        Expr::Literal(_) => {}
        Expr::BinaryOp { left, right, .. } => {
            visit_columns(left, f);
            visit_columns(right, f);
        }
        Expr::Not(x) | Expr::Negate(x) | Expr::Cast { expr: x, .. } => visit_columns(x, f),
        Expr::IsNull { expr, .. } => visit_columns(expr, f),
        Expr::InList { expr, list, .. } => {
            visit_columns(expr, f);
            for x in list {
                visit_columns(x, f);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            visit_columns(expr, f);
            visit_columns(low, f);
            visit_columns(high, f);
        }
        Expr::Like { expr, pattern, .. } => {
            visit_columns(expr, f);
            visit_columns(pattern, f);
        }
        Expr::Function { args, .. } => {
            for a in args {
                visit_columns(a, f);
            }
        }
        Expr::Case {
            branches,
            else_expr,
        } => {
            for (c, r) in branches {
                visit_columns(c, f);
                visit_columns(r, f);
            }
            if let Some(x) = else_expr {
                visit_columns(x, f);
            }
        }
        Expr::InSubquery { expr, .. } => {
            visit_columns(expr, f);
            f(None, "", true);
        }
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => f(None, "", true),
    }
}

/// Which side of a join an expression's columns come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Side {
    Left,
    Right,
    Neither,
    Mixed,
}

pub(crate) fn classify_side(e: &Expr, left: &Bindings, right: &Bindings) -> Side {
    let mut side = Side::Neither;
    let mut poisoned = false;
    visit_columns(e, &mut |qualifier, name, has_subquery| {
        if has_subquery {
            poisoned = true;
            return;
        }
        let in_left = matches!(left.resolve(qualifier, name), Ok(Some(_)));
        let in_right = matches!(right.resolve(qualifier, name), Ok(Some(_)));
        let this = match (in_left, in_right) {
            (true, false) => Side::Left,
            (false, true) => Side::Right,
            (true, true) => Side::Mixed, // ambiguous — don't hash on it
            (false, false) => Side::Mixed, // outer reference
        };
        side = match (side, this) {
            (Side::Neither, s) => s,
            (s, t) if s == t => s,
            _ => Side::Mixed,
        };
    });
    if poisoned {
        Side::Mixed
    } else {
        side
    }
}

/// Index nested-loop join: when joining against a base table on an equality
/// whose table-side key is an indexed plain column, probe the index per left
/// row instead of materializing the whole table. Returns `None` when the
/// pattern does not apply (caller falls back to scan + hash join).
#[allow(clippy::too_many_arguments)]
fn try_index_join(
    ctx: &ExecContext<'_>,
    left: &Relation,
    binding: &str,
    schema: &Schema,
    source: &FactorSource,
    kind: JoinKind,
    on: Option<&Expr>,
    filters: &[Expr],
    outer: Option<&Env<'_>>,
) -> Result<Option<Relation>> {
    if !ctx.config.index_pushdown {
        return Ok(None);
    }
    let FactorSource::Table(table_name) = source else {
        return Ok(None);
    };
    let table = ctx.catalog.table(table_name)?;
    let Some(on) = on else { return Ok(None) };

    let right_bindings = Bindings::single(binding, schema.clone());
    let conjuncts = super::split_conjuncts(on);

    // Find one equi conjunct `left-expr = right-indexed-column`.
    let mut probe: Option<(Expr, usize)> = None; // (left expr, right col idx)
    let mut residual: Vec<Expr> = Vec::new();
    for c in conjuncts {
        if probe.is_none() {
            if let Expr::BinaryOp {
                left: a,
                op: BinOp::Eq,
                right: b,
            } = &c
            {
                let candidates = [(a, b), (b, a)];
                let mut matched = false;
                for (lhs, rhs) in candidates {
                    if classify_side(lhs, &left.bindings, &right_bindings) == Side::Left {
                        if let Expr::Column { name, .. } = rhs.as_ref() {
                            if let Some(idx) = schema.index_of(name) {
                                if table.has_index(idx) {
                                    probe = Some(((**lhs).clone(), idx));
                                    matched = true;
                                    break;
                                }
                            }
                        }
                    }
                }
                if matched {
                    continue;
                }
            }
        }
        residual.push(c);
    }
    let Some((left_key, col_idx)) = probe else {
        return Ok(None);
    };

    let span = ctx.obs.span(pdm_obs::kinds::JOIN, binding);
    span.set_detail("index nested-loop");

    let mut combined = left.bindings.clone();
    combined.push(binding, schema.clone());
    let width = combined.width();

    // Residual ON conjuncts plus pushed-down scan filters are evaluated on
    // each candidate row; filters reference only the right binding, which
    // the combined env resolves fine.
    let mut checks: Vec<&Expr> = residual.iter().collect();
    checks.extend(filters.iter());

    let mut out_rows: Vec<Vec<Value>> = Vec::new();
    for lrow in &left.rows {
        let lenv = Env::with_outer(&left.bindings, lrow, outer);
        let key = eval_expr(ctx, &lenv, &left_key)?;
        let mut matched = false;
        if !key.is_null() {
            ctx.stats.borrow_mut().index_probes += 1;
            if let Some(row_ids) = table.index_lookup(col_idx, &key) {
                for &rid in row_ids {
                    let mut row = lrow.clone();
                    row.extend(table.row(rid).values().iter().cloned());
                    let env = Env::with_outer(&combined, &row, outer);
                    let mut keep = true;
                    for c in &checks {
                        if !eval_expr(ctx, &env, c)?.is_true() {
                            keep = false;
                            break;
                        }
                    }
                    if keep {
                        matched = true;
                        out_rows.push(row);
                    }
                }
            }
        }
        if !matched && kind == JoinKind::Left {
            out_rows.push(null_padded(lrow, width));
        }
    }
    ctx.stats.borrow_mut().rows_scanned += out_rows.len();
    span.set_rows(left.rows.len() as u64, out_rows.len() as u64);

    Ok(Some(Relation {
        bindings: combined,
        rows: out_rows,
    }))
}

/// Join an accumulated relation with a new (already scanned) factor.
#[allow(clippy::too_many_arguments)]
fn join_step(
    ctx: &ExecContext<'_>,
    left: Relation,
    binding: &str,
    schema: Schema,
    right_rows: Vec<Vec<Value>>,
    kind: JoinKind,
    on: Option<&Expr>,
    outer: Option<&Env<'_>>,
) -> Result<Relation> {
    let right_bindings = Bindings::single(binding, schema.clone());
    let mut combined = left.bindings.clone();
    combined.push(binding, schema);

    // Split ON into equi-join keys and residual conjuncts.
    let conjuncts: Vec<Expr> = on.map(super::split_conjuncts).unwrap_or_default();
    let mut keys: Vec<(Expr, Expr)> = Vec::new(); // (left-side, right-side)
    let mut residual: Vec<Expr> = Vec::new();
    for c in conjuncts {
        if let Expr::BinaryOp {
            left: a,
            op: BinOp::Eq,
            right: b,
        } = &c
        {
            let sa = classify_side(a, &left.bindings, &right_bindings);
            let sb = classify_side(b, &left.bindings, &right_bindings);
            match (sa, sb) {
                (Side::Left, Side::Right) => {
                    keys.push(((**a).clone(), (**b).clone()));
                    continue;
                }
                (Side::Right, Side::Left) => {
                    keys.push(((**b).clone(), (**a).clone()));
                    continue;
                }
                _ => {}
            }
        }
        residual.push(c);
    }

    let span = ctx.obs.span(pdm_obs::kinds::JOIN, binding);
    span.set_detail(if keys.is_empty() {
        "nested loop"
    } else {
        "hash join"
    });
    let rows_in = (left.rows.len() + right_rows.len()) as u64;

    let mut out_rows: Vec<Vec<Value>> = Vec::new();

    if !keys.is_empty() {
        // Hash join: build on the right side.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        'rows: for (i, row) in right_rows.iter().enumerate() {
            let env = Env::new(&right_bindings, row);
            let mut key = Vec::with_capacity(keys.len());
            for (_, rexpr) in &keys {
                let v = eval_expr(ctx, &env, rexpr)?;
                if v.is_null() {
                    continue 'rows; // NULL keys never join
                }
                key.push(v);
            }
            table.entry(key).or_default().push(i);
        }

        for lrow in &left.rows {
            let lenv = Env::with_outer(&left.bindings, lrow, outer);
            let mut key = Vec::with_capacity(keys.len());
            let mut null_key = false;
            for (lexpr, _) in &keys {
                let v = eval_expr(ctx, &lenv, lexpr)?;
                if v.is_null() {
                    null_key = true;
                    break;
                }
                key.push(v);
            }
            let matches: &[usize] = if null_key {
                &[]
            } else {
                table.get(&key).map(Vec::as_slice).unwrap_or(&[])
            };
            let mut matched = false;
            for &ri in matches {
                let mut row = lrow.clone();
                row.extend(right_rows[ri].iter().cloned());
                if eval_residual(ctx, &combined, &row, &residual, outer)? {
                    matched = true;
                    out_rows.push(row);
                }
            }
            if !matched && kind == JoinKind::Left {
                out_rows.push(null_padded(lrow, combined.width()));
            }
        }
    } else {
        // Nested loop (cross product filtered by ON).
        for lrow in &left.rows {
            let mut matched = false;
            for rrow in &right_rows {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                if eval_residual(ctx, &combined, &row, &residual, outer)? {
                    matched = true;
                    out_rows.push(row);
                }
            }
            if !matched && kind == JoinKind::Left {
                out_rows.push(null_padded(lrow, combined.width()));
            }
        }
    }

    span.set_rows(rows_in, out_rows.len() as u64);

    Ok(Relation {
        bindings: combined,
        rows: out_rows,
    })
}

fn eval_residual(
    ctx: &ExecContext<'_>,
    bindings: &Bindings,
    row: &[Value],
    residual: &[Expr],
    outer: Option<&Env<'_>>,
) -> Result<bool> {
    let env = Env::with_outer(bindings, row, outer);
    for c in residual {
        if !eval_expr(ctx, &env, c)?.is_true() {
            return Ok(false);
        }
    }
    Ok(true)
}

fn null_padded(lrow: &[Value], width: usize) -> Vec<Value> {
    let mut row = lrow.to_vec();
    row.resize(width, Value::Null);
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema(cols: &[&str]) -> Schema {
        Schema::new(
            cols.iter()
                .map(|c| Column::new(*c, DataType::Int))
                .collect(),
        )
    }

    #[test]
    fn conjunct_target_single_binding() {
        let bindings = vec![
            ("link".to_string(), schema(&["obid", "left", "right"])),
            ("assy".to_string(), schema(&["obid", "dec"])),
        ];
        let e = parse_expr("link.left = 1").unwrap();
        assert_eq!(conjunct_target(&e, &bindings), Some("link".into()));
        // unqualified but unique
        let e = parse_expr("dec = 1").unwrap();
        assert_eq!(conjunct_target(&e, &bindings), Some("assy".into()));
        // ambiguous unqualified
        let e = parse_expr("obid = 1").unwrap();
        assert_eq!(conjunct_target(&e, &bindings), None);
        // spans bindings
        let e = parse_expr("link.left = assy.obid").unwrap();
        assert_eq!(conjunct_target(&e, &bindings), None);
        // subquery poisons
        let e = parse_expr("link.left IN (SELECT obid FROM rtbl)").unwrap();
        assert_eq!(conjunct_target(&e, &bindings), None);
    }

    #[test]
    fn equality_literal_both_orders() {
        let s = schema(&["obid", "left"]);
        let e = parse_expr("left = 42").unwrap();
        assert_eq!(equality_literal(&e, &s), Some((1, Value::Int(42))));
        let e = parse_expr("42 = left").unwrap();
        assert_eq!(equality_literal(&e, &s), Some((1, Value::Int(42))));
        let e = parse_expr("left > 42").unwrap();
        assert_eq!(equality_literal(&e, &s), None);
        let e = parse_expr("left = obid").unwrap();
        assert_eq!(equality_literal(&e, &s), None);
    }

    #[test]
    fn classify_sides() {
        let left = Bindings::single("rtbl", schema(&["obid"]));
        let right = Bindings::single("link", schema(&["left", "right"]));
        let e = parse_expr("rtbl.obid").unwrap();
        assert_eq!(classify_side(&e, &left, &right), Side::Left);
        let e = parse_expr("link.left").unwrap();
        assert_eq!(classify_side(&e, &left, &right), Side::Right);
        let e = parse_expr("rtbl.obid + link.left").unwrap();
        assert_eq!(classify_side(&e, &left, &right), Side::Mixed);
        let e = parse_expr("outer_thing.x").unwrap();
        assert_eq!(classify_side(&e, &left, &right), Side::Mixed);
    }
}
