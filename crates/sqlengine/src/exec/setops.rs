//! UNION / UNION ALL / INTERSECT / EXCEPT over materialized result sets.
//!
//! Column names and types come from the left operand (standard behaviour);
//! operands must agree in arity. Dedup uses the engine's total value
//! equality (NULL == NULL, INT and FLOAT compare numerically).

use std::collections::HashSet;

use crate::ast::SetOp;
use crate::error::{Error, Result};
use crate::row::{ResultSet, Row};

/// Apply a set operation.
pub fn apply(op: SetOp, all: bool, left: ResultSet, right: ResultSet) -> Result<ResultSet> {
    if left.schema.len() != right.schema.len() {
        return Err(Error::Bind(format!(
            "set operation arity mismatch: {} vs {} columns",
            left.schema.len(),
            right.schema.len()
        )));
    }
    let schema = left.schema.clone();
    let rows = match (op, all) {
        (SetOp::Union, true) => {
            let mut rows = left.rows;
            rows.extend(right.rows);
            rows
        }
        (SetOp::Union, false) => {
            let mut seen: HashSet<Row> = HashSet::new();
            let mut rows = Vec::new();
            for r in left.rows.into_iter().chain(right.rows) {
                if seen.insert(r.clone()) {
                    rows.push(r);
                }
            }
            rows
        }
        (SetOp::Intersect, _) => {
            let right_set: HashSet<Row> = right.rows.into_iter().collect();
            let mut seen: HashSet<Row> = HashSet::new();
            left.rows
                .into_iter()
                .filter(|r| right_set.contains(r) && seen.insert(r.clone()))
                .collect()
        }
        (SetOp::Except, _) => {
            let right_set: HashSet<Row> = right.rows.into_iter().collect();
            let mut seen: HashSet<Row> = HashSet::new();
            left.rows
                .into_iter()
                .filter(|r| !right_set.contains(r) && seen.insert(r.clone()))
                .collect()
        }
    };
    Ok(ResultSet::new(schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::{DataType, Value};

    fn rs(vals: &[i64]) -> ResultSet {
        ResultSet::new(
            Schema::new(vec![Column::new("x", DataType::Int)]),
            vals.iter().map(|&v| Row(vec![Value::Int(v)])).collect(),
        )
    }

    fn xs(r: &ResultSet) -> Vec<i64> {
        r.rows
            .iter()
            .map(|row| match row.get(0) {
                Value::Int(i) => *i,
                _ => panic!(),
            })
            .collect()
    }

    #[test]
    fn union_dedups_preserving_first_occurrence() {
        let out = apply(SetOp::Union, false, rs(&[1, 2, 2]), rs(&[2, 3])).unwrap();
        assert_eq!(xs(&out), vec![1, 2, 3]);
    }

    #[test]
    fn union_all_keeps_duplicates() {
        let out = apply(SetOp::Union, true, rs(&[1, 2]), rs(&[2, 3])).unwrap();
        assert_eq!(xs(&out), vec![1, 2, 2, 3]);
    }

    #[test]
    fn intersect() {
        let out = apply(SetOp::Intersect, false, rs(&[1, 2, 2, 3]), rs(&[2, 3, 4])).unwrap();
        assert_eq!(xs(&out), vec![2, 3]);
    }

    #[test]
    fn except() {
        let out = apply(SetOp::Except, false, rs(&[1, 2, 2, 3]), rs(&[2])).unwrap();
        assert_eq!(xs(&out), vec![1, 3]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let two = ResultSet::new(
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Int),
            ]),
            vec![],
        );
        assert!(apply(SetOp::Union, false, rs(&[1]), two).is_err());
    }

    #[test]
    fn union_treats_nulls_as_duplicates() {
        let l = ResultSet::new(
            Schema::new(vec![Column::new("x", DataType::Int)]),
            vec![Row(vec![Value::Null]), Row(vec![Value::Null])],
        );
        let r = ResultSet::new(
            Schema::new(vec![Column::new("x", DataType::Int)]),
            vec![Row(vec![Value::Null])],
        );
        let out = apply(SetOp::Union, false, l, r).unwrap();
        assert_eq!(out.len(), 1);
    }
}
