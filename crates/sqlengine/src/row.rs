//! Rows and result sets.

use std::fmt;

use crate::schema::Schema;
use crate::value::Value;

/// One tuple. Values are positional; the owning [`Schema`] names them.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// Bytes this row occupies on the wire (sum of value sizes). Used by the
    /// WAN simulator to charge data volume for a response.
    pub fn wire_size(&self) -> usize {
        self.0.iter().map(Value::wire_size).sum()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row(values)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A materialized query result: schema plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

impl ResultSet {
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        ResultSet { schema, rows }
    }

    pub fn empty(schema: Schema) -> Self {
        ResultSet {
            schema,
            rows: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total wire size of all rows — the paper's `vol` contribution of a
    /// response, before packet-overhead correction.
    pub fn wire_size(&self) -> usize {
        self.rows.iter().map(Row::wire_size).sum()
    }

    /// Column values by name across all rows; convenience for tests.
    pub fn column_values(&self, name: &str) -> Option<Vec<Value>> {
        let idx = self.schema.index_of(name)?;
        Some(self.rows.iter().map(|r| r.get(idx).clone()).collect())
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in &self.rows {
            writeln!(f, "{row}")?;
        }
        write!(f, "({} rows)", self.rows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn rs() -> ResultSet {
        ResultSet::new(
            Schema::new(vec![
                Column::new("obid", DataType::Int),
                Column::new("name", DataType::Text),
            ]),
            vec![
                Row::new(vec![Value::Int(1), Value::Text("Assy1".into())]),
                Row::new(vec![Value::Int(2), Value::Text("Assy2".into())]),
            ],
        )
    }

    #[test]
    fn row_wire_size_sums_values() {
        let r = Row::new(vec![Value::Int(1), Value::Text("abc".into())]);
        assert_eq!(r.wire_size(), 8 + 4 + 3);
    }

    #[test]
    fn result_set_wire_size_sums_rows() {
        let rs = rs();
        // each row: 8 (int) + 4+5 (text) = 17
        assert_eq!(rs.wire_size(), 34);
    }

    #[test]
    fn column_values_by_name() {
        let rs = rs();
        assert_eq!(
            rs.column_values("obid").unwrap(),
            vec![Value::Int(1), Value::Int(2)]
        );
        assert!(rs.column_values("missing").is_none());
    }

    #[test]
    fn display_shows_row_count() {
        let text = rs().to_string();
        assert!(text.contains("(2 rows)"));
        assert!(text.contains("'Assy1'"));
    }
}
