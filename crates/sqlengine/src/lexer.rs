//! SQL tokenizer.
//!
//! Identifiers are folded to lowercase (standard SQL unquoted-identifier
//! behaviour); `"quoted"` identifiers preserve case. String literals use
//! single quotes with `''` as the escape for a quote.

use crate::error::{Error, Result};

/// A lexical token. Keywords are recognized by the parser from `Ident`
/// spellings, so the lexer stays keyword-agnostic except for literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier or keyword, lowercased.
    Ident(String),
    /// `"Quoted"` identifier, case preserved.
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    // Punctuation and operators.
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// `||` string concatenation.
    Concat,
}

impl Token {
    /// True if this is the identifier/keyword `kw` (case-insensitive match
    /// already handled by lexer lowering).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s == kw)
    }
}

/// Tokenize `input` into a vector of tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    tokens.push(Token::Concat);
                    i += 2;
                } else {
                    return Err(Error::Lex("single '|' is not an operator".into()));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(Error::Lex("'!' must be followed by '='".into()));
                }
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(Token::Str(s));
                i = next;
            }
            '"' => {
                let (s, next) = lex_quoted_ident(input, i)?;
                tokens.push(Token::QuotedIdent(s));
                i = next;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_ascii_lowercase()));
            }
            other => {
                return Err(Error::Lex(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

/// Lex a single-quoted string literal starting at `start` (the quote).
/// Returns the string content and the index just past the closing quote.
fn lex_string(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // advance over a full UTF-8 code point
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(Error::Lex("unterminated string literal".into()))
}

/// Lex a double-quoted identifier starting at `start` (the quote).
fn lex_quoted_ident(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let mut i = start + 1;
    let from = i;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            return Ok((input[from..i].to_string(), i + 1));
        }
        i += utf8_len(bytes[i]);
    }
    Err(Error::Lex("unterminated quoted identifier".into()))
}

/// Lex an integer or float literal.
fn lex_number(input: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = input.as_bytes();
    let mut i = start;
    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i + 1 < bytes.len() && bytes[i] == b'.' && (bytes[i + 1] as char).is_ascii_digit() {
        is_float = true;
        i += 1;
        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &input[start..i];
    if is_float {
        text.parse::<f64>()
            .map(|f| (Token::Float(f), i))
            .map_err(|_| Error::Lex(format!("bad float literal '{text}'")))
    } else {
        text.parse::<i64>()
            .map(|n| (Token::Int(n), i))
            .map_err(|_| Error::Lex(format!("integer literal '{text}' out of range")))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_idents_lowercased() {
        let toks = tokenize("SELECT Name FROM Assy").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("select".into()),
                Token::Ident("name".into()),
                Token::Ident("from".into()),
                Token::Ident("assy".into()),
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = tokenize("a <> b != c <= d >= e < f > g = h || i").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t, Token::Ident(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::NotEq,
                &Token::NotEq,
                &Token::LtEq,
                &Token::GtEq,
                &Token::Lt,
                &Token::Gt,
                &Token::Eq,
                &Token::Concat
            ]
        );
    }

    #[test]
    fn string_literal_with_escape() {
        let toks = tokenize("'it''s a part'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's a part".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(tokenize("'oops"), Err(Error::Lex(_))));
    }

    #[test]
    fn quoted_identifier_preserves_case() {
        let toks = tokenize("SELECT \"EFF_FROM\" FROM t").unwrap();
        assert!(toks.contains(&Token::QuotedIdent("EFF_FROM".into())));
    }

    #[test]
    fn numbers_int_and_float() {
        let toks = tokenize("42 3.5 1e3 2.5e-2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Float(3.5),
                Token::Float(1000.0),
                Token::Float(0.025)
            ]
        );
    }

    #[test]
    fn dot_separates_qualified_names() {
        let toks = tokenize("assy.obid").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("assy".into()),
                Token::Dot,
                Token::Ident("obid".into())
            ]
        );
    }

    #[test]
    fn line_comments_skipped() {
        let toks = tokenize("select -- everything\n1").unwrap();
        assert_eq!(toks, vec![Token::Ident("select".into()), Token::Int(1)]);
    }

    #[test]
    fn bad_char_reports_lex_error() {
        assert!(matches!(tokenize("select #"), Err(Error::Lex(_))));
        assert!(matches!(tokenize("a ! b"), Err(Error::Lex(_))));
        assert!(matches!(tokenize("a | b"), Err(Error::Lex(_))));
    }

    #[test]
    fn unicode_in_strings() {
        let toks = tokenize("'Müller'").unwrap();
        assert_eq!(toks, vec![Token::Str("Müller".into())]);
    }
}
