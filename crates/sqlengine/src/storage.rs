//! In-memory table storage with optional hash indexes.
//!
//! Navigational PDM access issues one `WHERE link.left = <id>` query per tree
//! node; without an index each would scan the whole link table, turning a
//! 100k-node expand into O(n²) work. Hash indexes keep the *local* cost
//! negligible, which matches the paper's premise that transmission — not
//! server execution — dominates response time.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// One base table: schema, rows, and hash indexes (column position →
/// value → row ids).
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub schema: Schema,
    rows: Vec<Row>,
    indexes: HashMap<usize, HashMap<Value, Vec<usize>>>,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into().to_ascii_lowercase(),
            schema,
            rows: Vec::new(),
            indexes: HashMap::new(),
        }
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validate a row against the schema (arity, types with implicit INT→
    /// FLOAT widening, NOT NULL) and append it.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::Schema(format!(
                "table '{}' expects {} values, got {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        let mut coerced = Vec::with_capacity(row.len());
        for (value, col) in row.0.into_iter().zip(self.schema.columns()) {
            if value.is_null() && !col.nullable {
                return Err(Error::Schema(format!(
                    "column '{}.{}' is NOT NULL",
                    self.name, col.name
                )));
            }
            coerced.push(value.coerce_for_column(col.dtype).map_err(|_| {
                Error::Schema(format!(
                    "value {value} does not fit column '{}.{}' ({})",
                    self.name, col.name, col.dtype
                ))
            })?);
        }
        let row_id = self.rows.len();
        // lint:allow(unordered-iter): each index is keyed by a distinct
        // column and updated independently; visit order cannot change the
        // resulting postings.
        for (&col_idx, index) in self.indexes.iter_mut() {
            index
                .entry(coerced[col_idx].clone())
                .or_default()
                .push(row_id);
        }
        self.rows.push(Row(coerced));
        Ok(())
    }

    /// Build (or rebuild) a hash index on the named column.
    pub fn create_index(&mut self, column: &str) -> Result<()> {
        let idx = self.schema.require(column)?;
        let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
        for (row_id, row) in self.rows.iter().enumerate() {
            map.entry(row.get(idx).clone()).or_default().push(row_id);
        }
        self.indexes.insert(idx, map);
        Ok(())
    }

    /// True if the column (by position) has a hash index.
    pub fn has_index(&self, col_idx: usize) -> bool {
        self.indexes.contains_key(&col_idx)
    }

    /// Names of the indexed columns, sorted so the list is stable across
    /// runs. The persistence layer stores these so indexes can be rebuilt
    /// on snapshot reload.
    pub fn indexed_columns(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .indexes
            .keys()
            .map(|&idx| self.schema.column(idx).name.clone())
            .collect();
        names.sort_unstable();
        names
    }

    /// Row ids matching `value` via the index on `col_idx`, if indexed.
    pub fn index_lookup(&self, col_idx: usize, value: &Value) -> Option<&[usize]> {
        self.indexes
            .get(&col_idx)
            .map(|m| m.get(value).map(Vec::as_slice).unwrap_or(&[]))
    }

    pub fn row(&self, id: usize) -> &Row {
        &self.rows[id]
    }

    /// Replace the value set of selected rows; rebuilds affected indexes.
    /// `updates` maps column position → new value, applied to every row id in
    /// `row_ids`.
    pub fn update_rows(&mut self, row_ids: &[usize], updates: &[(usize, Value)]) -> Result<usize> {
        for &(col_idx, ref value) in updates {
            let col = self.schema.column(col_idx);
            if value.is_null() && !col.nullable {
                return Err(Error::Schema(format!(
                    "column '{}.{}' is NOT NULL",
                    self.name, col.name
                )));
            }
        }
        for &rid in row_ids {
            for (col_idx, value) in updates {
                let col = self.schema.column(*col_idx);
                self.rows[rid].0[*col_idx] = value.coerce_for_column(col.dtype)?;
            }
        }
        // Any touched column's index is stale; rebuild them.
        let touched: Vec<usize> = updates
            .iter()
            .map(|(c, _)| *c)
            .filter(|c| self.indexes.contains_key(c))
            .collect();
        for col_idx in touched {
            let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
            for (row_id, row) in self.rows.iter().enumerate() {
                map.entry(row.get(col_idx).clone())
                    .or_default()
                    .push(row_id);
            }
            self.indexes.insert(col_idx, map);
        }
        Ok(row_ids.len())
    }

    /// Apply per-row updates (`row id` → list of `(column, value)`), then
    /// rebuild the affected indexes once. Used by UPDATE, whose assignment
    /// expressions may evaluate differently per row (`SET x = x + 1`).
    pub fn apply_updates(&mut self, updates: &[(usize, Vec<(usize, Value)>)]) -> Result<usize> {
        let mut touched: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for (rid, cols) in updates {
            for (col_idx, value) in cols {
                let col = self.schema.column(*col_idx);
                if value.is_null() && !col.nullable {
                    return Err(Error::Schema(format!(
                        "column '{}.{}' is NOT NULL",
                        self.name, col.name
                    )));
                }
                self.rows[*rid].0[*col_idx] = value.coerce_for_column(col.dtype)?;
                touched.insert(*col_idx);
            }
        }
        let mut indexed: Vec<usize> = touched
            .into_iter()
            .filter(|c| self.indexes.contains_key(c))
            .collect();
        indexed.sort_unstable();
        for col_idx in indexed {
            let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
            for (row_id, row) in self.rows.iter().enumerate() {
                map.entry(row.get(col_idx).clone())
                    .or_default()
                    .push(row_id);
            }
            self.indexes.insert(col_idx, map);
        }
        Ok(updates.len())
    }

    /// Remove the given rows (ids into the current ordering); rebuilds all
    /// indexes.
    pub fn delete_rows(&mut self, row_ids: &[usize]) -> usize {
        if row_ids.is_empty() {
            return 0;
        }
        let doomed: std::collections::HashSet<usize> = row_ids.iter().copied().collect();
        let before = self.rows.len();
        let mut kept = Vec::with_capacity(before - doomed.len());
        for (i, row) in self.rows.drain(..).enumerate() {
            if !doomed.contains(&i) {
                kept.push(row);
            }
        }
        self.rows = kept;
        let mut indexed: Vec<usize> = self.indexes.keys().copied().collect();
        indexed.sort_unstable();
        for col_idx in indexed {
            let mut map: HashMap<Value, Vec<usize>> = HashMap::new();
            for (row_id, row) in self.rows.iter().enumerate() {
                map.entry(row.get(col_idx).clone())
                    .or_default()
                    .push(row_id);
            }
            self.indexes.insert(col_idx, map);
        }
        before - self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn table() -> Table {
        let mut t = Table::new(
            "Link",
            Schema::new(vec![
                Column::new("obid", DataType::Int).not_null(),
                Column::new("left", DataType::Int),
                Column::new("right", DataType::Int),
            ]),
        );
        for (obid, l, r) in [(1001, 1, 2), (1002, 1, 3), (1003, 2, 4), (1004, 2, 5)] {
            t.insert(Row::new(vec![
                Value::Int(obid),
                Value::Int(l),
                Value::Int(r),
            ]))
            .unwrap();
        }
        t
    }

    #[test]
    fn name_is_lowercased() {
        assert_eq!(table().name, "link");
    }

    #[test]
    fn insert_checks_arity() {
        let mut t = table();
        let err = t.insert(Row::new(vec![Value::Int(1)])).unwrap_err();
        assert!(matches!(err, Error::Schema(_)));
    }

    #[test]
    fn insert_checks_not_null() {
        let mut t = table();
        let err = t
            .insert(Row::new(vec![Value::Null, Value::Int(1), Value::Int(2)]))
            .unwrap_err();
        assert!(err.to_string().contains("NOT NULL"));
    }

    #[test]
    fn insert_rejects_type_mismatch() {
        let mut t = table();
        let err = t
            .insert(Row::new(vec![
                Value::Text("x".into()),
                Value::Int(1),
                Value::Int(2),
            ]))
            .unwrap_err();
        assert!(matches!(err, Error::Schema(_)));
    }

    #[test]
    fn index_lookup_finds_matching_rows() {
        let mut t = table();
        t.create_index("left").unwrap();
        let left_idx = t.schema.index_of("left").unwrap();
        assert!(t.has_index(left_idx));
        let hits = t.index_lookup(left_idx, &Value::Int(1)).unwrap();
        assert_eq!(hits.len(), 2);
        let hits = t.index_lookup(left_idx, &Value::Int(99)).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut t = table();
        t.create_index("left").unwrap();
        t.insert(Row::new(vec![
            Value::Int(1005),
            Value::Int(1),
            Value::Int(6),
        ]))
        .unwrap();
        let left_idx = t.schema.index_of("left").unwrap();
        assert_eq!(t.index_lookup(left_idx, &Value::Int(1)).unwrap().len(), 3);
    }

    #[test]
    fn update_rebuilds_index() {
        let mut t = table();
        t.create_index("left").unwrap();
        let left_idx = t.schema.index_of("left").unwrap();
        t.update_rows(&[0], &[(left_idx, Value::Int(7))]).unwrap();
        assert_eq!(t.index_lookup(left_idx, &Value::Int(1)).unwrap().len(), 1);
        assert_eq!(t.index_lookup(left_idx, &Value::Int(7)).unwrap().len(), 1);
    }

    #[test]
    fn delete_compacts_and_reindexes() {
        let mut t = table();
        t.create_index("left").unwrap();
        let removed = t.delete_rows(&[0, 2]);
        assert_eq!(removed, 2);
        assert_eq!(t.len(), 2);
        let left_idx = t.schema.index_of("left").unwrap();
        assert_eq!(t.index_lookup(left_idx, &Value::Int(2)).unwrap().len(), 1);
    }
}
