//! Runtime values and SQL comparison semantics.
//!
//! The engine uses SQL's three-valued logic: comparisons involving NULL yield
//! "unknown", represented here as `None` from [`Value::sql_cmp`] /
//! [`Value::sql_eq`]. Set operations (UNION dedup, ORDER BY, hash joins) need
//! a *total* order and hashable equality instead, which
//! [`Value::total_cmp`] and the `Hash` impl provide (NULL sorts first,
//! NULL == NULL for dedup purposes, matching SQL's `UNION`/`GROUP BY`
//! treatment of nulls as duplicates of one another).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};

/// Column data types understood by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Text,
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INTEGER"),
            DataType::Float => write!(f, "DOUBLE"),
            DataType::Text => write!(f, "VARCHAR"),
            DataType::Bool => write!(f, "BOOLEAN"),
        }
    }
}

/// A single SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
}

impl Value {
    /// Runtime type of the value, `None` for NULL (which is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truthiness for WHERE clauses: only TRUE passes; NULL and FALSE filter
    /// the row out (SQL semantics).
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Size of the value when shipped over the wire, in bytes. This feeds the
    /// WAN simulator's data-volume accounting; the constants mirror a typical
    /// client/server wire protocol (fixed-width numerics, length-prefixed
    /// text).
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(s) => 4 + s.len(),
        }
    }

    /// SQL equality: NULL compared with anything is unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// SQL ordering comparison. Numeric types compare cross-type
    /// (INT vs FLOAT); NULL or mixed non-numeric types yield `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total order for sorting and dedup: NULL < Bool < Int/Float < Text.
    /// Cross-type numeric values interleave by numeric value.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Equality used by hash-based dedup/joins: NULL equals NULL, numerics
    /// compare by value across INT/FLOAT.
    pub fn dedup_eq(&self, other: &Value) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }

    /// CAST the value to `target`, following SQL's permissive conversion
    /// rules. NULL casts to NULL of any type.
    pub fn cast(&self, target: DataType) -> Result<Value> {
        match (self, target) {
            (Value::Null, _) => Ok(Value::Null),
            (v, t) if v.data_type() == Some(t) => Ok(v.clone()),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Int) => Ok(Value::Int(*f as i64)),
            (Value::Int(i), DataType::Text) => Ok(Value::Text(i.to_string())),
            (Value::Float(f), DataType::Text) => Ok(Value::Text(f.to_string())),
            (Value::Bool(b), DataType::Text) => {
                Ok(Value::Text(if *b { "true" } else { "false" }.into()))
            }
            (Value::Bool(b), DataType::Int) => Ok(Value::Int(i64::from(*b))),
            (Value::Text(s), DataType::Int) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::Eval(format!("cannot cast '{s}' to INTEGER"))),
            (Value::Text(s), DataType::Float) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::Eval(format!("cannot cast '{s}' to DOUBLE"))),
            (Value::Text(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Ok(Value::Bool(true)),
                "false" | "f" | "0" => Ok(Value::Bool(false)),
                _ => Err(Error::Eval(format!("cannot cast '{s}' to BOOLEAN"))),
            },
            (v, t) => Err(Error::Eval(format!(
                "cannot cast {} to {t}",
                v.data_type()
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "NULL".into())
            ))),
        }
    }

    /// Coerce a value on INSERT into a column of type `target`. Stricter than
    /// CAST: only the lossless numeric widening INT -> FLOAT is implicit.
    pub fn coerce_for_column(&self, target: DataType) -> Result<Value> {
        match (self, target) {
            (Value::Null, _) => Ok(Value::Null),
            (v, t) if v.data_type() == Some(t) => Ok(v.clone()),
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (v, t) => Err(Error::Schema(format!(
                "value {v} does not fit column type {t}"
            ))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.dedup_eq(other)
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // INT and FLOAT must hash identically when numerically equal
            // because dedup_eq treats them as equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(Value::Int(2).sql_eq(&Value::Float(2.0)), Some(true));
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incompatible_types_do_not_compare() {
        assert_eq!(Value::Text("1".into()).sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_sorts_null_first() {
        let mut vs = [
            Value::Text("a".into()),
            Value::Int(5),
            Value::Null,
            Value::Bool(false),
            Value::Float(2.5),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Bool(false));
        assert_eq!(vs[2], Value::Float(2.5));
        assert_eq!(vs[3], Value::Int(5));
        assert_eq!(vs[4], Value::Text("a".into()));
    }

    #[test]
    fn dedup_eq_treats_nulls_equal() {
        assert!(Value::Null.dedup_eq(&Value::Null));
        assert!(Value::Int(3).dedup_eq(&Value::Float(3.0)));
        assert!(!Value::Int(3).dedup_eq(&Value::Float(3.5)));
    }

    #[test]
    fn hash_consistent_with_dedup_eq_across_numeric_types() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
    }

    #[test]
    fn cast_text_to_int_and_back() {
        assert_eq!(
            Value::Text(" 42 ".into()).cast(DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::Int(42).cast(DataType::Text).unwrap(),
            Value::Text("42".into())
        );
        assert!(Value::Text("abc".into()).cast(DataType::Int).is_err());
    }

    #[test]
    fn cast_null_is_null_of_any_type() {
        assert!(Value::Null.cast(DataType::Int).unwrap().is_null());
        assert!(Value::Null.cast(DataType::Text).unwrap().is_null());
    }

    #[test]
    fn coerce_rejects_lossy() {
        assert!(Value::Float(1.5).coerce_for_column(DataType::Int).is_err());
        assert_eq!(
            Value::Int(1).coerce_for_column(DataType::Float).unwrap(),
            Value::Float(1.0)
        );
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Value::Int(0).wire_size(), 8);
        assert_eq!(Value::Null.wire_size(), 1);
        assert_eq!(Value::Text("abcd".into()).wire_size(), 8);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Bool(false).is_true());
        assert!(!Value::Null.is_true());
        assert!(!Value::Int(1).is_true());
    }
}
