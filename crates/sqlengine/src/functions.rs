//! Scalar function registry: built-ins plus stored (user-defined) functions.
//!
//! The paper (§3.2, §4.1) requires stored functions at the server for row
//! conditions that plain SQL predicates cannot express — set overlap for
//! structure options, interval overlap for effectivities, and PDM-computed
//! "transient attributes". The PDM layer registers those here; SQL sees them
//! as ordinary function calls.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::Value;

/// A scalar function: slice of argument values in, one value out.
pub type ScalarFn = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// Case-insensitive registry of scalar functions.
#[derive(Clone, Default)]
pub struct FunctionRegistry {
    funcs: HashMap<String, ScalarFn>,
}

impl fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.funcs.keys().map(String::as_str).collect();
        names.sort_unstable();
        f.debug_struct("FunctionRegistry")
            .field("functions", &names)
            .finish()
    }
}

impl FunctionRegistry {
    /// Registry preloaded with the standard built-ins.
    pub fn with_builtins() -> Self {
        let mut reg = FunctionRegistry::default();
        reg.register("abs", |args| {
            expect_args("abs", args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(Error::Eval(format!("abs() expects a number, got {other}"))),
            }
        });
        reg.register("upper", |args| {
            expect_args("upper", args, 1)?;
            text_map(&args[0], "upper", |s| s.to_uppercase())
        });
        reg.register("lower", |args| {
            expect_args("lower", args, 1)?;
            text_map(&args[0], "lower", |s| s.to_lowercase())
        });
        reg.register("length", |args| {
            expect_args("length", args, 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(Error::Eval(format!("length() expects text, got {other}"))),
            }
        });
        reg.register("coalesce", |args| {
            if args.is_empty() {
                return Err(Error::Eval("coalesce() requires arguments".into()));
            }
            Ok(args
                .iter()
                .find(|v| !v.is_null())
                .cloned()
                .unwrap_or(Value::Null))
        });
        reg.register("nullif", |args| {
            expect_args("nullif", args, 2)?;
            match args[0].sql_eq(&args[1]) {
                Some(true) => Ok(Value::Null),
                _ => Ok(args[0].clone()),
            }
        });
        reg
    }

    /// Register (or replace) a function under a case-insensitive name.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.funcs.insert(name.to_ascii_lowercase(), Arc::new(f));
    }

    pub fn get(&self, name: &str) -> Option<&ScalarFn> {
        self.funcs.get(&name.to_ascii_lowercase())
    }

    pub fn contains(&self, name: &str) -> bool {
        self.funcs.contains_key(&name.to_ascii_lowercase())
    }

    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value> {
        let f = self
            .get(name)
            .ok_or_else(|| Error::Bind(format!("unknown function '{name}'")))?;
        f(args)
    }
}

fn expect_args(name: &str, args: &[Value], n: usize) -> Result<()> {
    if args.len() == n {
        Ok(())
    } else {
        Err(Error::Eval(format!(
            "{name}() expects {n} argument(s), got {}",
            args.len()
        )))
    }
}

fn text_map(v: &Value, name: &str, f: impl Fn(&str) -> String) -> Result<Value> {
    match v {
        Value::Null => Ok(Value::Null),
        Value::Text(s) => Ok(Value::Text(f(s))),
        other => Err(Error::Eval(format!("{name}() expects text, got {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_work() {
        let reg = FunctionRegistry::with_builtins();
        assert_eq!(reg.call("ABS", &[Value::Int(-3)]).unwrap(), Value::Int(3));
        assert_eq!(
            reg.call("upper", &[Value::Text("abc".into())]).unwrap(),
            Value::Text("ABC".into())
        );
        assert_eq!(
            reg.call("length", &[Value::Text("Müller".into())]).unwrap(),
            Value::Int(6)
        );
    }

    #[test]
    fn coalesce_picks_first_non_null() {
        let reg = FunctionRegistry::with_builtins();
        assert_eq!(
            reg.call("coalesce", &[Value::Null, Value::Int(2), Value::Int(3)])
                .unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            reg.call("coalesce", &[Value::Null, Value::Null]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn nullif_semantics() {
        let reg = FunctionRegistry::with_builtins();
        assert_eq!(
            reg.call("nullif", &[Value::Int(1), Value::Int(1)]).unwrap(),
            Value::Null
        );
        assert_eq!(
            reg.call("nullif", &[Value::Int(1), Value::Int(2)]).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn null_propagation() {
        let reg = FunctionRegistry::with_builtins();
        assert_eq!(reg.call("abs", &[Value::Null]).unwrap(), Value::Null);
        assert_eq!(reg.call("upper", &[Value::Null]).unwrap(), Value::Null);
    }

    #[test]
    fn user_function_registration_and_shadowing() {
        let mut reg = FunctionRegistry::with_builtins();
        reg.register("overlaps_interval", |args| {
            expect_args("overlaps_interval", args, 4)?;
            match (&args[0], &args[1], &args[2], &args[3]) {
                (Value::Int(a0), Value::Int(a1), Value::Int(b0), Value::Int(b1)) => {
                    Ok(Value::Bool(a0 <= b1 && b0 <= a1))
                }
                _ => Ok(Value::Null),
            }
        });
        assert_eq!(
            reg.call(
                "OVERLAPS_INTERVAL",
                &[Value::Int(1), Value::Int(5), Value::Int(4), Value::Int(9)]
            )
            .unwrap(),
            Value::Bool(true)
        );
        // replace an existing name
        reg.register("abs", |_| Ok(Value::Int(42)));
        assert_eq!(reg.call("abs", &[Value::Int(-3)]).unwrap(), Value::Int(42));
    }

    #[test]
    fn unknown_function_is_bind_error() {
        let reg = FunctionRegistry::with_builtins();
        assert!(matches!(reg.call("nope", &[]), Err(Error::Bind(_))));
    }

    #[test]
    fn wrong_arity_is_eval_error() {
        let reg = FunctionRegistry::with_builtins();
        assert!(matches!(
            reg.call("abs", &[Value::Int(1), Value::Int(2)]),
            Err(Error::Eval(_))
        ));
    }
}
