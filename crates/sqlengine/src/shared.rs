//! Concurrently shareable database: immutable snapshots + atomic swap.
//!
//! The paper's deployment model is many worldwide clients against ONE
//! central PDM database server (§1, Fig. 1). [`crate::Database`] alone
//! cannot express that — it is a single-owner value. [`SharedDatabase`]
//! turns it into a shared service with the classic copy-on-write snapshot
//! design:
//!
//! * **Reads are lock-free.** A reader grabs the current [`Snapshot`]
//!   (an `Arc` clone under a briefly-held read lock) and then executes
//!   entirely on that immutable image — no lock is held during query
//!   evaluation, and a snapshot stays valid however long the reader keeps
//!   it.
//! * **Writes copy-on-write and swap.** A writer serializes on the writer
//!   mutex, clones the catalog (cheap: tables are `Arc`ed, see
//!   [`crate::Catalog`]), applies the DML — deep-copying only the touched
//!   tables — and atomically publishes the new snapshot with a bumped
//!   version.
//! * **The version doubles as a cache epoch.** Every published snapshot
//!   carries a monotonically increasing `version`; any result computed
//!   against version *v* is valid exactly while the current version is
//!   still *v*. The PDM layer keys its cross-session result cache on this.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::ast::Statement;
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::exec::ExecConfig;
use crate::row::ResultSet;
use crate::update::execute_statement;
use crate::{parser, Database, DmlOutcome, ExecOutcome};

/// One immutable published state of the database. Everything a query needs
/// — catalog (tables, views, functions) and executor configuration — plus
/// the version it was published at.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub catalog: Catalog,
    pub config: ExecConfig,
    /// Storage version this snapshot was published at (0 = initial load).
    pub version: u64,
}

impl Snapshot {
    /// Run a query against this snapshot. Lock-free: touches only the
    /// snapshot's own immutable data.
    pub fn query(&self, sql: &str) -> Result<ResultSet> {
        let q = parser::parse_query(sql)?;
        self.query_ast(&q)
    }

    /// Run an already-parsed query against this snapshot.
    pub fn query_ast(&self, query: &crate::ast::Query) -> Result<ResultSet> {
        self.query_ast_profiled(query, &pdm_obs::Recorder::disabled())
            .map(|(rs, _)| rs)
    }

    /// Run an already-parsed query with per-operator span recording, and
    /// return the execution counters alongside the rows. With a disabled
    /// recorder this is exactly [`Snapshot::query_ast`] — same context,
    /// same evaluation — so results are byte-identical either way.
    pub fn query_ast_profiled(
        &self,
        query: &crate::ast::Query,
        obs: &pdm_obs::Recorder,
    ) -> Result<(ResultSet, crate::exec::ExecStats)> {
        let stats = std::cell::RefCell::new(crate::exec::ExecStats::default());
        let ctx = crate::exec::ExecContext::with_recorder(
            &self.catalog,
            &self.config,
            &stats,
            obs.clone(),
        );
        let span = obs.span(pdm_obs::kinds::ENGINE_QUERY, "eval");
        let rs = crate::exec::eval_query(&ctx, query, None)?;
        span.set_rows(0, rs.len() as u64);
        drop(span);
        Ok((rs, stats.into_inner()))
    }
}

/// A database shared between concurrent sessions.
#[derive(Debug)]
pub struct SharedDatabase {
    /// The currently published snapshot. Readers clone the `Arc` out and
    /// drop the lock before executing.
    current: RwLock<Arc<Snapshot>>,
    /// Serializes writers: DML is read-copy-update, so two writers must
    /// not both start from the same base snapshot.
    writer: Mutex<()>,
    /// Published version, readable without taking any lock.
    version: AtomicU64,
}

impl SharedDatabase {
    /// Publish an owned database as version 0.
    pub fn new(db: Database) -> Self {
        SharedDatabase {
            current: RwLock::new(Arc::new(Snapshot {
                catalog: db.catalog,
                config: db.config,
                version: 0,
            })),
            writer: Mutex::new(()),
            version: AtomicU64::new(0),
        }
    }

    /// Publish a previously serialized snapshot (recovery path): the
    /// version chain continues from `snapshot.version` instead of 0.
    pub fn from_snapshot(snapshot: Snapshot) -> Self {
        let version = snapshot.version;
        SharedDatabase {
            current: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(()),
            version: AtomicU64::new(version),
        }
    }

    /// The currently published snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        match self.current.read() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Current storage version (the cache epoch). Bumped by every DML/DDL
    /// statement that goes through [`SharedDatabase::execute`].
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Execute a read query on the current snapshot (lock-free after the
    /// snapshot handout).
    pub fn query(&self, sql: &str) -> Result<ResultSet> {
        self.snapshot().query(sql)
    }

    /// Execute any statement. Queries run on the current snapshot without
    /// bumping the version; DML/DDL copies-on-write, applies, and publishes
    /// a new snapshot. Returns the outcome and the version it is visible
    /// at.
    pub fn execute(&self, sql: &str) -> Result<(ExecOutcome, u64)> {
        let stmt = parser::parse_statement(sql)?;
        self.execute_ast(&stmt)
    }

    /// Like [`SharedDatabase::execute`] for an already-parsed statement.
    pub fn execute_ast(&self, stmt: &Statement) -> Result<(ExecOutcome, u64)> {
        self.execute_ast_gated(stmt, |_| Ok(()))
    }

    /// Execute a statement with a **commit gate**: for a write, `gate` runs
    /// after the DML has been applied to the copied catalog but *before*
    /// the new snapshot is published. This is the write-ahead-log hook —
    /// the durability layer appends and fsyncs the commit record in the
    /// gate, so a state change is only ever visible if it is already
    /// durable. A gate error abandons the prepared snapshot: nothing is
    /// published and the version does not advance.
    ///
    /// The gate receives the version the commit would publish as. Read
    /// queries never invoke the gate.
    pub fn execute_ast_gated(
        &self,
        stmt: &Statement,
        gate: impl FnOnce(u64) -> Result<()>,
    ) -> Result<(ExecOutcome, u64)> {
        if let Statement::Query(q) = stmt {
            let snap = self.snapshot();
            return Ok((ExecOutcome::Rows(snap.query_ast(q)?), snap.version));
        }
        let _writers = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let base = self.snapshot();
        let mut catalog = base.catalog.clone(); // cheap: Arc'ed tables
        let outcome = execute_statement(&mut catalog, &base.config, stmt)?;
        let version = base.version.saturating_add(1);
        gate(version)?;
        let next = Arc::new(Snapshot {
            catalog,
            config: base.config.clone(),
            version,
        });
        match self.current.write() {
            Ok(mut guard) => *guard = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
        self.version.store(version, Ordering::Release);
        Ok((ExecOutcome::Dml(outcome), version))
    }

    /// DML convenience: execute and unwrap the DML outcome.
    pub fn execute_dml(&self, sql: &str) -> Result<(DmlOutcome, u64)> {
        match self.execute(sql)? {
            (ExecOutcome::Dml(d), v) => Ok((d, v)),
            (ExecOutcome::Rows(_), _) => {
                Err(Error::Eval("expected a DML statement, got a query".into()))
            }
        }
    }

    /// Programmatic bulk load, mirroring [`Database::insert_rows`]: one
    /// version bump for the whole batch.
    pub fn insert_rows(&self, table: &str, rows: Vec<crate::row::Row>) -> Result<(usize, u64)> {
        let _writers = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let base = self.snapshot();
        let mut catalog = base.catalog.clone();
        let t = catalog.table_mut(table)?;
        let n = rows.len();
        for row in rows {
            t.insert(row)?;
        }
        let version = base.version.saturating_add(1);
        let next = Arc::new(Snapshot {
            catalog,
            config: base.config.clone(),
            version,
        });
        match self.current.write() {
            Ok(mut guard) => *guard = next,
            Err(poisoned) => *poisoned.into_inner() = next,
        }
        self.version.store(version, Ordering::Release);
        Ok((n, version))
    }
}

// The whole point: a `SharedDatabase` must be shareable across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SharedDatabase>();
    assert_send_sync::<Snapshot>();
    assert_send_sync::<Database>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn shared() -> SharedDatabase {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
            .unwrap();
        SharedDatabase::new(db)
    }

    #[test]
    fn reads_never_bump_the_version() {
        let s = shared();
        assert_eq!(s.version(), 0);
        s.query("SELECT * FROM t").unwrap();
        let (out, v) = s.execute("SELECT a FROM t WHERE a = 1").unwrap();
        assert_eq!(v, 0);
        assert!(matches!(out, ExecOutcome::Rows(_)));
        assert_eq!(s.version(), 0);
    }

    #[test]
    fn dml_bumps_version_and_publishes() {
        let s = shared();
        let (d, v) = s.execute_dml("INSERT INTO t VALUES (3, 'z')").unwrap();
        assert_eq!(d, DmlOutcome::Inserted(1));
        assert_eq!(v, 1);
        assert_eq!(s.version(), 1);
        assert_eq!(s.query("SELECT * FROM t").unwrap().len(), 3);
    }

    #[test]
    fn held_snapshot_is_isolated_from_later_dml() {
        let s = shared();
        let old = s.snapshot();
        s.execute_dml("UPDATE t SET b = 'mut' WHERE a = 1").unwrap();
        s.execute_dml("DELETE FROM t WHERE a = 2").unwrap();

        // The old snapshot still sees the original two rows untouched.
        let rs = old.query("SELECT b FROM t ORDER BY a").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows[0].get(0), &Value::Text("x".into()));

        // The current snapshot sees the new state.
        let rs = s.query("SELECT b FROM t ORDER BY a").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].get(0), &Value::Text("mut".into()));
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let s = std::sync::Arc::new(shared());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let rs = s.query("SELECT COUNT(*) AS n FROM t").unwrap();
                    // count only ever grows from 2
                    match rs.rows[0].get(0) {
                        Value::Int(n) => assert!(*n >= 2),
                        other => panic!("unexpected {other}"),
                    }
                }
            }));
        }
        for i in 0..50 {
            s.execute_dml(&format!("INSERT INTO t VALUES ({}, 'w')", 100 + i))
                .unwrap();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.version(), 50);
        assert_eq!(s.query("SELECT * FROM t").unwrap().len(), 52);
    }
}
