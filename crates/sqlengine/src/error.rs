//! Error type shared by every stage of the engine (lexing through execution).

use std::fmt;

/// Engine-wide error. Each variant names the stage that produced it so callers
/// (and tests) can distinguish a syntax problem from a runtime one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Tokenizer rejected the input (bad character, unterminated string, ...).
    Lex(String),
    /// Parser rejected the token stream.
    Parse(String),
    /// Name resolution failed (unknown table/column/function) or a query is
    /// structurally invalid (e.g. UNION arity mismatch).
    Bind(String),
    /// Schema violation on write (wrong arity, type mismatch, null in a
    /// non-nullable column).
    Schema(String),
    /// Runtime evaluation failure (division by zero, bad cast, scalar
    /// subquery returning more than one row, ...).
    Eval(String),
    /// Catalog-level conflict (duplicate table, missing table on DROP, ...).
    Catalog(String),
    /// A recursive query exceeded the configured iteration limit; almost
    /// always a cycle in the data that UNION dedup could not close.
    RecursionLimit(usize),
    /// Serialized state (snapshot, WAL payload) failed to decode. The
    /// message carries the byte offset of the malformation.
    Persist(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex(m) => write!(f, "lex error: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Bind(m) => write!(f, "bind error: {m}"),
            Error::Schema(m) => write!(f, "schema error: {m}"),
            Error::Eval(m) => write!(f, "eval error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::RecursionLimit(n) => {
                write!(f, "recursive query exceeded {n} iterations (data cycle?)")
            }
            Error::Persist(m) => write!(f, "persist error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_message() {
        assert_eq!(
            Error::Lex("bad char".into()).to_string(),
            "lex error: bad char"
        );
        assert_eq!(Error::Parse("x".into()).to_string(), "parse error: x");
        assert_eq!(Error::Bind("y".into()).to_string(), "bind error: y");
        assert_eq!(Error::Schema("z".into()).to_string(), "schema error: z");
        assert_eq!(Error::Eval("w".into()).to_string(), "eval error: w");
        assert_eq!(Error::Catalog("c".into()).to_string(), "catalog error: c");
    }

    #[test]
    fn recursion_limit_reports_bound() {
        let e = Error::RecursionLimit(1000);
        assert!(e.to_string().contains("1000"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::Parse("a".into()), Error::Parse("a".into()));
        assert_ne!(Error::Parse("a".into()), Error::Bind("a".into()));
    }
}
