//! DML execution: INSERT, UPDATE, DELETE.
//!
//! UPDATE matters to the reproduction beyond completeness: the paper's §6
//! check-out discussion hinges on the fact that setting the `checkedout`
//! flag is a *separate* statement — and therefore a separate WAN round trip
//! — that recursive querying cannot absorb.

use std::cell::RefCell;

use crate::ast::{Expr, Statement};
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::exec::{expr::eval_expr, Bindings, Env, ExecConfig, ExecContext, ExecStats};
use crate::row::Row;
use crate::value::Value;

/// Outcome of a non-query statement.
#[derive(Debug, Clone, PartialEq)]
pub enum DmlOutcome {
    Inserted(usize),
    Updated(usize),
    Deleted(usize),
    TableCreated,
    ViewCreated,
    IndexCreated,
    TableDropped,
}

/// Execute a DML/DDL statement against the catalog.
pub fn execute_statement(
    catalog: &mut Catalog,
    config: &ExecConfig,
    stmt: &Statement,
) -> Result<DmlOutcome> {
    match stmt {
        Statement::Query(_) => Err(Error::Eval(
            "queries go through Database::query, not execute_statement".into(),
        )),
        Statement::Insert {
            table,
            columns,
            rows,
        } => insert(catalog, config, table, columns.as_deref(), rows),
        Statement::Update {
            table,
            assignments,
            predicate,
        } => update(catalog, config, table, assignments, predicate.as_ref()),
        Statement::Delete { table, predicate } => {
            delete(catalog, config, table, predicate.as_ref())
        }
        Statement::CreateTable { name, columns } => {
            let schema = crate::schema::Schema::new(
                columns
                    .iter()
                    .map(|c| {
                        let col = crate::schema::Column::new(c.name.clone(), c.dtype);
                        if c.nullable {
                            col
                        } else {
                            col.not_null()
                        }
                    })
                    .collect(),
            );
            catalog.create_table(name, schema)?;
            Ok(DmlOutcome::TableCreated)
        }
        Statement::CreateView { name, query } => {
            catalog.create_view(name, query.clone())?;
            Ok(DmlOutcome::ViewCreated)
        }
        Statement::CreateIndex { table, column } => {
            catalog.table_mut(table)?.create_index(column)?;
            Ok(DmlOutcome::IndexCreated)
        }
        Statement::DropTable { name } => {
            catalog.drop_table(name)?;
            Ok(DmlOutcome::TableDropped)
        }
    }
}

/// Evaluate an expression with no row context (INSERT values).
fn eval_const(catalog: &Catalog, config: &ExecConfig, e: &Expr) -> Result<Value> {
    let stats = RefCell::new(ExecStats::default());
    let ctx = ExecContext::new(catalog, config, &stats);
    let bindings = Bindings::new();
    let row: Vec<Value> = Vec::new();
    let env = Env::new(&bindings, &row);
    eval_expr(&ctx, &env, e)
}

fn insert(
    catalog: &mut Catalog,
    config: &ExecConfig,
    table: &str,
    columns: Option<&[String]>,
    rows: &[Vec<Expr>],
) -> Result<DmlOutcome> {
    // Evaluate first (immutable borrow), then write.
    let schema = catalog.table(table)?.schema.clone();
    let positions: Vec<usize> = match columns {
        None => (0..schema.len()).collect(),
        Some(cols) => {
            let mut seen = std::collections::HashSet::new();
            let mut positions = Vec::with_capacity(cols.len());
            for c in cols {
                if !seen.insert(c.to_ascii_lowercase()) {
                    return Err(Error::Schema(format!("duplicate column '{c}' in INSERT")));
                }
                positions.push(schema.require(c)?);
            }
            positions
        }
    };

    let mut materialized = Vec::with_capacity(rows.len());
    for exprs in rows {
        if exprs.len() != positions.len() {
            return Err(Error::Schema(format!(
                "INSERT expects {} values per row, got {}",
                positions.len(),
                exprs.len()
            )));
        }
        let mut row = vec![Value::Null; schema.len()];
        for (pos, e) in positions.iter().zip(exprs) {
            row[*pos] = eval_const(catalog, config, e)?;
        }
        materialized.push(Row(row));
    }

    let t = catalog.table_mut(table)?;
    let n = materialized.len();
    for row in materialized {
        t.insert(row)?;
    }
    Ok(DmlOutcome::Inserted(n))
}

fn update(
    catalog: &mut Catalog,
    config: &ExecConfig,
    table: &str,
    assignments: &[(String, Expr)],
    predicate: Option<&Expr>,
) -> Result<DmlOutcome> {
    let stats = RefCell::new(ExecStats::default());
    let mut updates: Vec<(usize, Vec<(usize, Value)>)> = Vec::new();
    {
        let ctx = ExecContext::new(catalog, config, &stats);
        let t = catalog.table(table)?;
        let bindings = Bindings::single(&t.name, t.schema.clone());
        let cols: Vec<usize> = assignments
            .iter()
            .map(|(c, _)| t.schema.require(c))
            .collect::<Result<_>>()?;
        for (rid, row) in t.rows().iter().enumerate() {
            let env = Env::new(&bindings, row.values());
            let matches = match predicate {
                Some(p) => eval_expr(&ctx, &env, p)?.is_true(),
                None => true,
            };
            if !matches {
                continue;
            }
            let mut vals = Vec::with_capacity(cols.len());
            for (col_idx, (_, e)) in cols.iter().zip(assignments) {
                vals.push((*col_idx, eval_expr(&ctx, &env, e)?));
            }
            updates.push((rid, vals));
        }
    }
    let n = catalog.table_mut(table)?.apply_updates(&updates)?;
    Ok(DmlOutcome::Updated(n))
}

fn delete(
    catalog: &mut Catalog,
    config: &ExecConfig,
    table: &str,
    predicate: Option<&Expr>,
) -> Result<DmlOutcome> {
    let stats = RefCell::new(ExecStats::default());
    let mut doomed: Vec<usize> = Vec::new();
    {
        let ctx = ExecContext::new(catalog, config, &stats);
        let t = catalog.table(table)?;
        let bindings = Bindings::single(&t.name, t.schema.clone());
        for (rid, row) in t.rows().iter().enumerate() {
            let env = Env::new(&bindings, row.values());
            let matches = match predicate {
                Some(p) => eval_expr(&ctx, &env, p)?.is_true(),
                None => true,
            };
            if matches {
                doomed.push(rid);
            }
        }
    }
    let n = catalog.table_mut(table)?.delete_rows(&doomed);
    Ok(DmlOutcome::Deleted(n))
}
