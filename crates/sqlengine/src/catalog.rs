//! Database catalog: tables, views, and the function registry.

use std::collections::HashMap;

use crate::ast::Query;
use crate::error::{Error, Result};
use crate::functions::FunctionRegistry;
use crate::schema::Schema;
use crate::storage::Table;

/// A named view: its defining query, kept as both AST and original text.
///
/// The PDM query modificator needs views to reproduce the paper's §5.5
/// caveat — a recursive query hidden behind a view cannot be modified because
/// "the query structure is not visible to the query modificator".
#[derive(Debug, Clone)]
pub struct ViewDef {
    pub name: String,
    pub query: Query,
    pub sql: String,
}

/// The catalog: every named object the executor can resolve.
#[derive(Debug, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    views: HashMap<String, ViewDef>,
    pub functions: FunctionRegistry,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog {
            tables: HashMap::new(),
            views: HashMap::new(),
            functions: FunctionRegistry::with_builtins(),
        }
    }
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(Error::Catalog(format!("'{key}' already exists")));
        }
        self.tables.insert(key.clone(), Table::new(key, schema));
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        self.tables
            .remove(&key)
            .map(|_| ())
            .ok_or_else(|| Error::Catalog(format!("no table '{key}'")))
    }

    pub fn create_view(&mut self, name: &str, query: Query) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(Error::Catalog(format!("'{key}' already exists")));
        }
        let sql = query.to_string();
        self.views.insert(
            key.clone(),
            ViewDef {
                name: key,
                query,
                sql,
            },
        );
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<&Table> {
        let key = name.to_ascii_lowercase();
        self.tables
            .get(&key)
            .ok_or_else(|| Error::Bind(format!("unknown table '{key}'")))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        let key = name.to_ascii_lowercase();
        self.tables
            .get_mut(&key)
            .ok_or_else(|| Error::Bind(format!("unknown table '{key}'")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(&name.to_ascii_lowercase())
    }

    pub fn has_view(&self, name: &str) -> bool {
        self.views.contains_key(&name.to_ascii_lowercase())
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    pub fn view_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.views.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![Column::new("obid", DataType::Int)])
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.create_table("Assy", schema()).unwrap();
        assert!(c.has_table("ASSY"));
        assert!(c.table("assy").is_ok());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        assert!(matches!(
            c.create_table("T", schema()),
            Err(Error::Catalog(_))
        ));
    }

    #[test]
    fn view_name_conflicts_with_table() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        let q = parse_query("SELECT * FROM t").unwrap();
        assert!(c.create_view("t", q).is_err());
    }

    #[test]
    fn view_keeps_sql_text() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        let q = parse_query("SELECT obid FROM t").unwrap();
        c.create_view("v", q).unwrap();
        assert_eq!(c.view("V").unwrap().sql, "SELECT obid FROM t");
    }

    #[test]
    fn drop_table() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        c.drop_table("t").unwrap();
        assert!(!c.has_table("t"));
        assert!(c.drop_table("t").is_err());
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.create_table("b", schema()).unwrap();
        c.create_table("a", schema()).unwrap();
        assert_eq!(c.table_names(), vec!["a", "b"]);
    }
}
