//! Database catalog: tables, views, and the function registry.
//!
//! Tables are held behind [`Arc`] so a catalog clone is a cheap snapshot:
//! only the table maps and `Arc` pointers are copied, never the rows. DML
//! then copies-on-write exactly the tables it touches (via
//! [`Arc::make_mut`]), which is what makes the shared-server storage model
//! ([`crate::shared::SharedDatabase`]) affordable — every write produces a
//! new immutable snapshot without duplicating the untouched 99 % of the
//! database.

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::Query;
use crate::error::{Error, Result};
use crate::functions::FunctionRegistry;
use crate::schema::Schema;
use crate::storage::Table;

/// A named view: its defining query, kept as both AST and original text.
///
/// The PDM query modificator needs views to reproduce the paper's §5.5
/// caveat — a recursive query hidden behind a view cannot be modified because
/// "the query structure is not visible to the query modificator".
#[derive(Debug, Clone)]
pub struct ViewDef {
    pub name: String,
    pub query: Query,
    pub sql: String,
}

/// The catalog: every named object the executor can resolve.
#[derive(Debug, Clone)]
pub struct Catalog {
    tables: HashMap<String, Arc<Table>>,
    views: HashMap<String, ViewDef>,
    pub functions: FunctionRegistry,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog {
            tables: HashMap::new(),
            views: HashMap::new(),
            functions: FunctionRegistry::with_builtins(),
        }
    }
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(Error::Catalog(format!("'{key}' already exists")));
        }
        self.tables
            .insert(key.clone(), Arc::new(Table::new(key, schema)));
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        self.tables
            .remove(&key)
            .map(|_| ())
            .ok_or_else(|| Error::Catalog(format!("no table '{key}'")))
    }

    pub fn create_view(&mut self, name: &str, query: Query) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(Error::Catalog(format!("'{key}' already exists")));
        }
        let sql = query.to_string();
        self.views.insert(
            key.clone(),
            ViewDef {
                name: key,
                query,
                sql,
            },
        );
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<&Table> {
        let key = name.to_ascii_lowercase();
        self.tables
            .get(&key)
            .map(Arc::as_ref)
            .ok_or_else(|| Error::Bind(format!("unknown table '{key}'")))
    }

    /// The shared handle to a table (cheap clone; used by snapshot readers
    /// that must keep the rows alive past the catalog borrow).
    pub fn table_arc(&self, name: &str) -> Result<Arc<Table>> {
        let key = name.to_ascii_lowercase();
        self.tables
            .get(&key)
            .cloned()
            .ok_or_else(|| Error::Bind(format!("unknown table '{key}'")))
    }

    /// Mutable access for DML. If the table is shared with an older
    /// snapshot, this copies it first (`Arc::make_mut`), so writes never
    /// reach rows a concurrent reader is scanning.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        let key = name.to_ascii_lowercase();
        self.tables
            .get_mut(&key)
            .map(Arc::make_mut)
            .ok_or_else(|| Error::Bind(format!("unknown table '{key}'")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(&name.to_ascii_lowercase())
    }

    pub fn has_view(&self, name: &str) -> bool {
        self.views.contains_key(&name.to_ascii_lowercase())
    }

    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    pub fn view_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.views.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![Column::new("obid", DataType::Int)])
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.create_table("Assy", schema()).unwrap();
        assert!(c.has_table("ASSY"));
        assert!(c.table("assy").is_ok());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        assert!(matches!(
            c.create_table("T", schema()),
            Err(Error::Catalog(_))
        ));
    }

    #[test]
    fn view_name_conflicts_with_table() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        let q = parse_query("SELECT * FROM t").unwrap();
        assert!(c.create_view("t", q).is_err());
    }

    #[test]
    fn view_keeps_sql_text() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        let q = parse_query("SELECT obid FROM t").unwrap();
        c.create_view("v", q).unwrap();
        assert_eq!(c.view("V").unwrap().sql, "SELECT obid FROM t");
    }

    #[test]
    fn drop_table() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        c.drop_table("t").unwrap();
        assert!(!c.has_table("t"));
        assert!(c.drop_table("t").is_err());
    }

    #[test]
    fn clone_is_copy_on_write() {
        use crate::row::Row;
        use crate::value::Value;
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        c.table_mut("t")
            .unwrap()
            .insert(Row::new(vec![Value::Int(1)]))
            .unwrap();

        let snapshot = c.clone();
        let shared_before = Arc::ptr_eq(
            &c.table_arc("t").unwrap(),
            &snapshot.table_arc("t").unwrap(),
        );
        assert!(shared_before, "clone shares table storage until a write");

        c.table_mut("t")
            .unwrap()
            .insert(Row::new(vec![Value::Int(2)]))
            .unwrap();
        assert_eq!(c.table("t").unwrap().len(), 2);
        assert_eq!(
            snapshot.table("t").unwrap().len(),
            1,
            "write must not reach the snapshot"
        );
    }

    #[test]
    fn names_sorted() {
        let mut c = Catalog::new();
        c.create_table("b", schema()).unwrap();
        c.create_table("a", schema()).unwrap();
        assert_eq!(c.table_names(), vec!["a", "b"]);
    }
}
