//! Table and result-set schemas.

use std::fmt;

use crate::error::{Error, Result};
use crate::value::DataType;

/// A column definition: name, type, nullability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into().to_ascii_lowercase(),
            dtype,
            nullable: true,
        }
    }

    pub fn not_null(mut self) -> Self {
        self.nullable = false;
        self
    }
}

/// An ordered set of columns. Column names are stored lowercase; lookups are
/// case-insensitive (SQL identifier folding).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    pub fn empty() -> Self {
        Schema {
            columns: Vec::new(),
        }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Position of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Like [`Schema::index_of`] but errors with the unknown name.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| Error::Bind(format!("unknown column '{name}'")))
    }

    pub fn push(&mut self, col: Column) {
        self.columns.push(col);
    }

    /// Column names in order (useful for tests and display).
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
            if !c.nullable {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new("OBID", DataType::Int).not_null(),
            Column::new("name", DataType::Text),
            Column::new("dec", DataType::Text),
        ])
    }

    #[test]
    fn names_are_folded_to_lowercase() {
        let s = sample();
        assert_eq!(s.names(), vec!["obid", "name", "dec"]);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("ObId"), Some(0));
        assert_eq!(s.index_of("NAME"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn require_reports_unknown_column() {
        let s = sample();
        assert!(s.require("obid").is_ok());
        let err = s.require("nope").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn display_renders_columns() {
        let s = sample();
        let d = s.to_string();
        assert!(d.contains("obid INTEGER NOT NULL"));
        assert!(d.contains("name VARCHAR"));
    }
}
