//! Response-time prediction: equations (1)–(6) of the paper.

use pdm_net::LinkProfile;

use crate::tree::KaryTree;

/// The three user actions of the paper's evaluation (Table 2 header).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Set-oriented query retrieving all (visible) nodes of a tree without
    /// structure information — a single SQL query.
    Query,
    /// Single-level expand: fetch the direct children of one node.
    Expand,
    /// Multi-level expand: recursively expand the entire structure.
    MultiLevelExpand,
}

impl Action {
    pub const ALL: [Action; 3] = [Action::Query, Action::Expand, Action::MultiLevelExpand];

    pub fn label(&self) -> &'static str {
        match self {
            Action::Query => "Query",
            Action::Expand => "Exp",
            Action::MultiLevelExpand => "MLE",
        }
    }
}

/// The three system variants compared in Figures 4 and 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Navigational access, rules evaluated at the client after transfer
    /// (the baseline PDM behaviour, Table 2).
    LateEval,
    /// Navigational access with rule predicates compiled into each query's
    /// WHERE clause (Approach 1, Table 3).
    EarlyEval,
    /// One recursive SQL query per tree retrieval, with early rule
    /// evaluation embedded (Approach 2, Table 4). Non-tree actions (Query,
    /// Expand) are already single queries and behave as under EarlyEval.
    Recursive,
}

impl Strategy {
    pub const ALL: [Strategy; 3] = [Strategy::LateEval, Strategy::EarlyEval, Strategy::Recursive];

    pub fn label(&self) -> &'static str {
        match self {
            Strategy::LateEval => "late eval",
            Strategy::EarlyEval => "early eval",
            Strategy::Recursive => "recursion",
        }
    }
}

/// Predicted cost of one action: the paper's `q`, `c`, `n_t`, `vol`, and the
/// two components of `T`. Counts are expectations and therefore fractional.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breakdown {
    /// Queries issued (`q`), or request packets (`q_r`) for the recursive
    /// strategy.
    pub queries: f64,
    /// WAN communications (`c`).
    pub communications: f64,
    /// Nodes transmitted (`n_t`).
    pub transmitted_nodes: f64,
    /// Chargeable data volume in bytes (`vol`).
    pub volume_bytes: f64,
    /// `c · T_Lat`.
    pub latency_time: f64,
    /// `vol / dtr`.
    pub transfer_time: f64,
}

impl Breakdown {
    /// Total predicted response time `T` in seconds.
    pub fn total(&self) -> f64 {
        self.latency_time + self.transfer_time
    }
}

/// Shape of a (possibly irregular) product tree as the cost model sees it:
/// the four counts equations (1)–(6) actually consume. [`KaryTree::profile`]
/// produces the idealized complete-tree instance; realized profiles from
/// generated data let the model predict *exactly* what a simulation run
/// should measure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeProfile {
    /// Direct children of the root (shipped by a late-evaluated
    /// single-level expand). β for a complete tree.
    pub root_children: f64,
    /// All nodes below the root.
    pub total_nodes: f64,
    /// Visible nodes below the root (n_v).
    pub visible_nodes: f64,
    /// Total children of every node a navigational MLE expands — the root
    /// plus all visible nodes — i.e. the nodes shipped under late
    /// evaluation. `β · Σ_{i=0}^{δ-1} (γβ)^i` for a complete tree.
    pub expanded_children: f64,
    /// Visible direct children of the root (γβ for a complete tree).
    pub visible_level1: f64,
}

impl KaryTree {
    /// The idealized profile of a complete β-ary tree (expected counts).
    pub fn profile(&self) -> TreeProfile {
        TreeProfile {
            root_children: self.branching as f64,
            total_nodes: self.total_nodes(),
            visible_nodes: self.visible_nodes(),
            expanded_children: self.mle_transmitted_late(),
            visible_level1: self.visible_branching(),
        }
    }
}

/// Predict the response time of `action` under `strategy` over `tree`,
/// given the link and the average node size (eq. (1)–(6)).
///
/// `query_bytes` is the on-the-wire size of the request; it only matters
/// for the recursive strategy where a large generated query may span
/// `q_r > 1` packets (§5.4). The paper's own tables assume `q_r = 1`; pass
/// a value ≤ `link.packet_size` (e.g. 0) to reproduce them.
pub fn response(
    tree: &KaryTree,
    action: Action,
    strategy: Strategy,
    link: &LinkProfile,
    node_size: usize,
    query_bytes: usize,
) -> Breakdown {
    response_from_profile(
        &tree.profile(),
        action,
        strategy,
        link,
        node_size,
        query_bytes,
    )
}

/// Predict from an explicit tree profile (realized or idealized).
pub fn response_from_profile(
    p: &TreeProfile,
    action: Action,
    strategy: Strategy,
    link: &LinkProfile,
    node_size: usize,
    query_bytes: usize,
) -> Breakdown {
    let size_p = link.packet_size as f64;

    // (queries q, transmitted nodes n_t) per action/strategy.
    let (q, n_t) = match (action, strategy) {
        // A set-oriented query is always one SQL statement; late evaluation
        // ships the entire tree, early/recursive ship visible nodes only.
        (Action::Query, Strategy::LateEval) => (1.0, p.total_nodes),
        (Action::Query, _) => (1.0, p.visible_nodes),

        // Single-level expand: one query; late ships all β children, early
        // ships the γβ visible ones.
        (Action::Expand, Strategy::LateEval) => (1.0, p.root_children),
        (Action::Expand, _) => (1.0, p.visible_level1),

        // Navigational MLE touches every visible node (root and leaves
        // included); late evaluation ships all children of each expanded
        // node, early only the visible ones.
        (Action::MultiLevelExpand, Strategy::LateEval) => {
            (1.0 + p.visible_nodes, p.expanded_children)
        }
        (Action::MultiLevelExpand, Strategy::EarlyEval) => (1.0 + p.visible_nodes, p.visible_nodes),
        // Recursive MLE: a single (possibly multi-packet) query returns
        // exactly the visible nodes (eq. (5)–(6)).
        (Action::MultiLevelExpand, Strategy::Recursive) => {
            let q_r = link.packets_for(query_bytes) as f64;
            (q_r, p.visible_nodes)
        }
    };

    // For navigational strategies each query is one request packet; for the
    // recursive strategy `q` already *is* the packet count q_r and there are
    // only 2 communications.
    let communications = match (action, strategy) {
        (Action::MultiLevelExpand, Strategy::Recursive) => 2.0,
        (Action::MultiLevelExpand, _) => 2.0 * q,
        _ => 2.0,
    };

    // eq. (3)/(5): vol = q·size_p + n_t·size_n + q·size_p/2.
    let volume_bytes = q * size_p + n_t * node_size as f64 + q * size_p / 2.0;

    Breakdown {
        queries: q,
        communications,
        transmitted_nodes: n_t,
        volume_bytes,
        latency_time: communications * link.latency,
        transfer_time: link.transfer_time(volume_bytes),
    }
}

/// Predict a *level-batched* navigational multi-level expand: one IN-list
/// query per tree level (plus the final empty-frontier probe) instead of one
/// query per node. Not a strategy the paper evaluates, but the natural
/// SQL-92 alternative its Approach 2 should be judged against; requests grow
/// with the frontier, so deep levels may need several packets (§5.4's q_r
/// effect applies to requests here too).
///
/// `visible_per_level[i]` is the (realized or expected) number of visible
/// nodes at level i+1; `id_bytes` the rendered size of one IN-list entry.
pub fn batched_mle_response(
    visible_per_level: &[f64],
    early: bool,
    branching: f64,
    link: &LinkProfile,
    node_size: usize,
    base_request_bytes: usize,
    id_bytes: usize,
) -> Breakdown {
    let size_p = link.packet_size as f64;
    let mut request_packets = 0.0;
    let mut transmitted = 0.0;
    let mut communications = 0.0;

    // Level 0's frontier is the root alone; the loop continues while the
    // previous level had visible nodes, plus the final probe of the deepest
    // visible frontier (which returns nothing).
    let mut frontier = 1.0;
    let mut level = 0usize;
    while frontier > 0.0 {
        let bytes = base_request_bytes as f64 + frontier * id_bytes as f64;
        request_packets += (bytes / size_p).ceil().max(1.0);
        communications += 2.0;
        let visible_children = visible_per_level.get(level).copied().unwrap_or(0.0);
        transmitted += if early {
            visible_children
        } else {
            // late evaluation ships all children of the frontier
            frontier * branching
        };
        frontier = visible_children;
        level += 1;
    }

    let volume_bytes =
        request_packets * size_p + transmitted * node_size as f64 + request_packets * size_p / 2.0;
    Breakdown {
        queries: communications / 2.0,
        communications,
        transmitted_nodes: transmitted,
        volume_bytes,
        latency_time: communications * link.latency,
        transfer_time: link.transfer_time(volume_bytes),
    }
}

/// Percentage saving of `optimized` relative to `baseline` total time
/// (the "saving in %" rows of Tables 3 and 4).
pub fn saving_percent(baseline: &Breakdown, optimized: &Breakdown) -> f64 {
    100.0 * (baseline.total() - optimized.total()) / baseline.total()
}

#[cfg(test)]
mod tests {
    use super::*;

    const NODE: usize = 512;

    fn tree_a() -> KaryTree {
        KaryTree::new(3, 9, 0.6)
    }
    fn tree_b() -> KaryTree {
        KaryTree::new(9, 3, 0.6)
    }
    fn tree_c() -> KaryTree {
        KaryTree::new(7, 5, 0.6)
    }

    fn check(b: &Breakdown, latency: f64, transfer: f64) {
        assert!(
            (b.latency_time - latency).abs() < 0.007,
            "latency {} vs paper {latency}",
            b.latency_time
        );
        assert!(
            (b.transfer_time - transfer).abs() < 0.007,
            "transfer {} vs paper {transfer}",
            b.transfer_time
        );
    }

    // ---- Table 2 (late evaluation) ----

    #[test]
    fn table2_wan256_row() {
        let link = LinkProfile::wan_256();
        check(
            &response(&tree_a(), Action::Query, Strategy::LateEval, &link, NODE, 0),
            0.30,
            12.98,
        );
        check(
            &response(
                &tree_a(),
                Action::Expand,
                Strategy::LateEval,
                &link,
                NODE,
                0,
            ),
            0.30,
            0.33,
        );
        check(
            &response(
                &tree_a(),
                Action::MultiLevelExpand,
                Strategy::LateEval,
                &link,
                NODE,
                0,
            ),
            57.91,
            41.19,
        );
        check(
            &response(&tree_b(), Action::Query, Strategy::LateEval, &link, NODE, 0),
            0.30,
            461.48,
        );
        check(
            &response(
                &tree_b(),
                Action::MultiLevelExpand,
                Strategy::LateEval,
                &link,
                NODE,
                0,
            ),
            133.52,
            95.01,
        );
        check(
            &response(&tree_c(), Action::Query, Strategy::LateEval, &link, NODE, 0),
            0.30,
            1526.05,
        );
        check(
            &response(
                &tree_c(),
                Action::MultiLevelExpand,
                Strategy::LateEval,
                &link,
                NODE,
                0,
            ),
            984.00,
            700.39,
        );
    }

    #[test]
    fn table2_wan512_and_1024_rows() {
        let link = LinkProfile::wan_512();
        check(
            &response(&tree_a(), Action::Query, Strategy::LateEval, &link, NODE, 0),
            0.30,
            6.49,
        );
        check(
            &response(
                &tree_c(),
                Action::MultiLevelExpand,
                Strategy::LateEval,
                &link,
                NODE,
                0,
            ),
            984.00,
            350.20,
        );
        let link = LinkProfile::wan_1024();
        check(
            &response(&tree_b(), Action::Query, Strategy::LateEval, &link, NODE, 0),
            0.10,
            115.37,
        );
        check(
            &response(
                &tree_c(),
                Action::MultiLevelExpand,
                Strategy::LateEval,
                &link,
                NODE,
                0,
            ),
            328.00,
            175.10,
        );
    }

    // ---- Table 3 (early evaluation) ----

    #[test]
    fn table3_wan256_row() {
        let link = LinkProfile::wan_256();
        check(
            &response(
                &tree_a(),
                Action::Query,
                Strategy::EarlyEval,
                &link,
                NODE,
                0,
            ),
            0.30,
            3.19,
        );
        check(
            &response(
                &tree_a(),
                Action::Expand,
                Strategy::EarlyEval,
                &link,
                NODE,
                0,
            ),
            0.30,
            0.27,
        );
        check(
            &response(
                &tree_a(),
                Action::MultiLevelExpand,
                Strategy::EarlyEval,
                &link,
                NODE,
                0,
            ),
            57.91,
            39.19,
        );
        check(
            &response(
                &tree_b(),
                Action::Query,
                Strategy::EarlyEval,
                &link,
                NODE,
                0,
            ),
            0.30,
            7.13,
        );
        check(
            &response(
                &tree_c(),
                Action::MultiLevelExpand,
                Strategy::EarlyEval,
                &link,
                NODE,
                0,
            ),
            984.00,
            666.23,
        );
    }

    #[test]
    fn table3_savings() {
        let link = LinkProfile::wan_256();
        let late = response(&tree_b(), Action::Query, Strategy::LateEval, &link, NODE, 0);
        let early = response(
            &tree_b(),
            Action::Query,
            Strategy::EarlyEval,
            &link,
            NODE,
            0,
        );
        let s = saving_percent(&late, &early);
        assert!((s - 98.39).abs() < 0.02, "saving {s} vs paper 98.39");

        let late = response(
            &tree_a(),
            Action::Expand,
            Strategy::LateEval,
            &link,
            NODE,
            0,
        );
        let early = response(
            &tree_a(),
            Action::Expand,
            Strategy::EarlyEval,
            &link,
            NODE,
            0,
        );
        let s = saving_percent(&late, &early);
        assert!((s - 8.96).abs() < 0.02, "saving {s} vs paper 8.96");

        // The paper's headline negative result: early evaluation alone saves
        // only ~2% on multi-level expands.
        let late = response(
            &tree_a(),
            Action::MultiLevelExpand,
            Strategy::LateEval,
            &link,
            NODE,
            0,
        );
        let early = response(
            &tree_a(),
            Action::MultiLevelExpand,
            Strategy::EarlyEval,
            &link,
            NODE,
            0,
        );
        let s = saving_percent(&late, &early);
        assert!((s - 2.02).abs() < 0.02, "saving {s} vs paper 2.02");
    }

    // ---- Table 4 (recursive queries) ----

    #[test]
    fn table4_recursive_mle() {
        let link = LinkProfile::wan_256();
        let r = response(
            &tree_a(),
            Action::MultiLevelExpand,
            Strategy::Recursive,
            &link,
            NODE,
            0,
        );
        check(&r, 0.30, 3.19);
        let late = response(
            &tree_a(),
            Action::MultiLevelExpand,
            Strategy::LateEval,
            &link,
            NODE,
            0,
        );
        let s = saving_percent(&late, &r);
        assert!((s - 96.48).abs() < 0.02, "saving {s} vs paper 96.48");

        let r = response(
            &tree_c(),
            Action::MultiLevelExpand,
            Strategy::Recursive,
            &link,
            NODE,
            0,
        );
        check(&r, 0.30, 51.42);
        let late = response(
            &tree_c(),
            Action::MultiLevelExpand,
            Strategy::LateEval,
            &link,
            NODE,
            0,
        );
        let s = saving_percent(&late, &r);
        assert!((s - 96.93).abs() < 0.02, "saving {s} vs paper 96.93");

        let link = LinkProfile::wan_512();
        let r = response(
            &tree_b(),
            Action::MultiLevelExpand,
            Strategy::Recursive,
            &link,
            NODE,
            0,
        );
        let late = response(
            &tree_b(),
            Action::MultiLevelExpand,
            Strategy::LateEval,
            &link,
            NODE,
            0,
        );
        let s = saving_percent(&late, &r);
        assert!((s - 97.87).abs() < 0.02, "saving {s} vs paper 97.87");
    }

    #[test]
    fn recursive_query_larger_than_packet_costs_more_packets() {
        let link = LinkProfile::wan_256();
        let small = response(
            &tree_a(),
            Action::MultiLevelExpand,
            Strategy::Recursive,
            &link,
            NODE,
            100,
        );
        let big = response(
            &tree_a(),
            Action::MultiLevelExpand,
            Strategy::Recursive,
            &link,
            NODE,
            10_000,
        );
        assert_eq!(small.queries, 1.0);
        assert_eq!(big.queries, 3.0);
        assert!(big.volume_bytes > small.volume_bytes);
        // but communications stay 2 — that's the whole point
        assert_eq!(small.communications, 2.0);
        assert_eq!(big.communications, 2.0);
    }

    #[test]
    fn batched_mle_sits_between_navigational_and_recursive() {
        let link = LinkProfile::wan_256();
        let tree = tree_c(); // δ=7, β=5, γ=0.6 → γβ = 3
        let per_level: Vec<f64> = (1..=7).map(|i| 3f64.powi(i)).collect();
        let batched = batched_mle_response(&per_level, true, 5.0, &link, NODE, 200, 7);
        let nav = response(
            &tree,
            Action::MultiLevelExpand,
            Strategy::EarlyEval,
            &link,
            NODE,
            0,
        );
        let rec = response(
            &tree,
            Action::MultiLevelExpand,
            Strategy::Recursive,
            &link,
            NODE,
            0,
        );
        // 8 round trips (7 levels + final probe)
        assert_eq!(batched.queries, 8.0);
        assert!(rec.total() < batched.total());
        assert!(batched.total() < nav.total());
        // same payload as early navigational
        assert!((batched.transmitted_nodes - nav.transmitted_nodes).abs() < 1e-9);
    }

    #[test]
    fn batched_requests_span_packets_on_wide_frontiers() {
        let link = LinkProfile::wan_256();
        // one huge level: 5000 visible nodes at level 1
        let per_level = [5000.0];
        let b = batched_mle_response(&per_level, true, 5000.0, &link, NODE, 200, 8);
        // 2 queries (root expand + empty probe of the 5000 frontier)
        assert_eq!(b.queries, 2.0);
        // the second request carries 5000 ids ≈ 40 kB → about 10 packets
        assert!(b.volume_bytes > 10.0 * 4096.0);
    }

    #[test]
    fn latency_dominates_navigational_mle_but_not_recursive() {
        let link = LinkProfile::wan_256();
        let nav = response(
            &tree_b(),
            Action::MultiLevelExpand,
            Strategy::LateEval,
            &link,
            NODE,
            0,
        );
        assert!(nav.latency_time > nav.transfer_time);
        let rec = response(
            &tree_b(),
            Action::MultiLevelExpand,
            Strategy::Recursive,
            &link,
            NODE,
            0,
        );
        assert!(rec.latency_time < rec.transfer_time);
    }
}
