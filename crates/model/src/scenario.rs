//! The paper's evaluation scenarios: three tree shapes × three network
//! settings, γ = 0.6, 512-byte nodes, 4 kB packets.

use pdm_net::LinkProfile;

use crate::tree::KaryTree;

/// Average node size used throughout the paper's tables (512 bytes).
pub const NODE_SIZE_BYTES: usize = 512;

/// A named tree shape (δ, β, γ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeScenario {
    pub depth: u32,
    pub branching: u32,
    pub gamma: f64,
}

impl TreeScenario {
    pub fn new(depth: u32, branching: u32, gamma: f64) -> Self {
        TreeScenario {
            depth,
            branching,
            gamma,
        }
    }

    pub fn tree(&self) -> KaryTree {
        KaryTree::new(self.depth, self.branching, self.gamma)
    }

    /// Header label in paper style, e.g. "δ=3, β=9, γ=0.6".
    pub fn label(&self) -> String {
        format!("δ={}, β={}, γ={}", self.depth, self.branching, self.gamma)
    }
}

/// The complete evaluation grid of the paper.
#[derive(Debug, Clone)]
pub struct PaperScenario {
    pub trees: Vec<TreeScenario>,
    pub networks: Vec<LinkProfile>,
    pub node_size: usize,
}

impl PaperScenario {
    /// Tables 2–4: (δ=3,β=9), (δ=9,β=3), (δ=7,β=5) with γ=0.6, against
    /// 256/512/1024 kbit/s links.
    pub fn paper() -> Self {
        PaperScenario {
            trees: vec![
                TreeScenario::new(3, 9, 0.6),
                TreeScenario::new(9, 3, 0.6),
                TreeScenario::new(7, 5, 0.6),
            ],
            networks: LinkProfile::paper_wans().to_vec(),
            node_size: NODE_SIZE_BYTES,
        }
    }

    /// Figure 4's single setting: δ=9, β=3, γ=0.6, T_Lat=150 ms,
    /// dtr=512 kbit/s.
    pub fn figure4() -> (TreeScenario, LinkProfile) {
        (TreeScenario::new(9, 3, 0.6), LinkProfile::wan_512())
    }

    /// Figure 5's single setting: δ=7, β=5, γ=0.6, T_Lat=150 ms,
    /// dtr=256 kbit/s.
    pub fn figure5() -> (TreeScenario, LinkProfile) {
        (TreeScenario::new(7, 5, 0.6), LinkProfile::wan_256())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_shape() {
        let s = PaperScenario::paper();
        assert_eq!(s.trees.len(), 3);
        assert_eq!(s.networks.len(), 3);
        assert_eq!(s.node_size, 512);
        assert_eq!(s.trees[0].tree().total_nodes_exact(), 819);
        assert_eq!(s.trees[2].tree().total_nodes_exact(), 97_655);
    }

    #[test]
    fn figure_settings() {
        let (t, l) = PaperScenario::figure4();
        assert_eq!((t.depth, t.branching), (9, 3));
        assert_eq!(l.dtr_kbit, 512.0);
        let (t, l) = PaperScenario::figure5();
        assert_eq!((t.depth, t.branching), (7, 5));
        assert_eq!(l.dtr_kbit, 256.0);
    }

    #[test]
    fn label_formats() {
        assert_eq!(TreeScenario::new(3, 9, 0.6).label(), "δ=3, β=9, γ=0.6");
    }
}
