//! Generators for the paper's tables and figures, with paper-style text
//! rendering. Each structure is plain data so the bench binaries can print
//! it and the tests can assert against it.

use std::fmt;

use pdm_net::LinkProfile;

use crate::response::{response, saving_percent, Action, Breakdown, Strategy};
use crate::scenario::{PaperScenario, TreeScenario};

/// One cell of a response-time table: the latency/transfer split the paper
/// prints as stacked rows, plus the optional saving against late evaluation.
#[derive(Debug, Clone, Copy)]
pub struct TableCell {
    pub scenario: TreeScenario,
    pub action: Action,
    pub breakdown: Breakdown,
    /// Percentage saved vs. the late-evaluation baseline (Tables 3 and 4).
    pub saving_pct: Option<f64>,
}

/// One network-setting block (three rows in the paper's layout).
#[derive(Debug, Clone)]
pub struct NetworkBlock {
    pub link: LinkProfile,
    pub cells: Vec<TableCell>,
}

/// A full paper table: title plus one block per network setting.
#[derive(Debug, Clone)]
pub struct PaperTable {
    pub title: String,
    pub actions: Vec<Action>,
    pub scenarios: Vec<TreeScenario>,
    pub blocks: Vec<NetworkBlock>,
}

impl PaperTable {
    /// Find a cell by (dtr, scenario index, action).
    pub fn cell(&self, dtr_kbit: f64, scenario_idx: usize, action: Action) -> Option<&TableCell> {
        self.blocks
            .iter()
            .find(|b| (b.link.dtr_kbit - dtr_kbit).abs() < 1e-9)?
            .cells
            .iter()
            .find(|c| {
                c.action == action
                    && c.scenario.depth == self.scenarios[scenario_idx].depth
                    && c.scenario.branching == self.scenarios[scenario_idx].branching
            })
    }
}

fn build_table(
    title: &str,
    strategy: Strategy,
    actions: &[Action],
    with_savings: bool,
) -> PaperTable {
    let grid = PaperScenario::paper();
    let mut blocks = Vec::new();
    for link in &grid.networks {
        let mut cells = Vec::new();
        for scenario in &grid.trees {
            let tree = scenario.tree();
            for &action in actions {
                let breakdown = response(&tree, action, strategy, link, grid.node_size, 0);
                let saving_pct = if with_savings {
                    let base = response(&tree, action, Strategy::LateEval, link, grid.node_size, 0);
                    Some(saving_percent(&base, &breakdown))
                } else {
                    None
                };
                cells.push(TableCell {
                    scenario: *scenario,
                    action,
                    breakdown,
                    saving_pct,
                });
            }
        }
        blocks.push(NetworkBlock { link: *link, cells });
    }
    PaperTable {
        title: title.to_string(),
        actions: actions.to_vec(),
        scenarios: grid.trees.clone(),
        blocks,
    }
}

/// Table 2: response times under late (client-side) rule evaluation.
pub fn table2() -> PaperTable {
    build_table(
        "Table 2. Response times for several scenarios in today's environments",
        Strategy::LateEval,
        &Action::ALL,
        false,
    )
}

/// Table 3: response times with early rule evaluation, plus savings.
pub fn table3() -> PaperTable {
    build_table(
        "Table 3. Response times for several scenarios with early rule evaluation",
        Strategy::EarlyEval,
        &Action::ALL,
        true,
    )
}

/// Table 4: multi-level expands with recursive queries, plus savings.
pub fn table4() -> PaperTable {
    build_table(
        "Table 4. Response times for multi-level expands with recursive queries",
        Strategy::Recursive,
        &[Action::MultiLevelExpand],
        true,
    )
}

impl fmt::Display for PaperTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        writeln!(
            f,
            "size_packet = 4kB, size_node = 512B; dtr in kbit/s, times in seconds"
        )?;
        // header
        write!(f, "{:<24}", "")?;
        for s in &self.scenarios {
            for a in &self.actions {
                write!(f, "{:>12}", format!("{} {}", s_label_short(s), a.label()))?;
            }
        }
        writeln!(f)?;
        for block in &self.blocks {
            let head = format!(
                "T_Lat={:.2} dtr={:.0}",
                block.link.latency, block.link.dtr_kbit
            );
            // latency row
            write!(f, "{:<24}", format!("{head}  latency"))?;
            for c in &block.cells {
                write!(f, "{:>12.2}", c.breakdown.latency_time)?;
            }
            writeln!(f)?;
            // transfer row
            write!(f, "{:<24}", "          transfer")?;
            for c in &block.cells {
                write!(f, "{:>12.2}", c.breakdown.transfer_time)?;
            }
            writeln!(f)?;
            // total row
            write!(f, "{:<24}", "          T = total")?;
            for c in &block.cells {
                write!(f, "{:>12.2}", c.breakdown.total())?;
            }
            writeln!(f)?;
            // savings row
            if block.cells.iter().any(|c| c.saving_pct.is_some()) {
                write!(f, "{:<24}", "          saving in %")?;
                for c in &block.cells {
                    match c.saving_pct {
                        Some(s) => write!(f, "{:>12.2}", s)?,
                        None => write!(f, "{:>12}", "-")?,
                    }
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

fn s_label_short(s: &TreeScenario) -> String {
    format!("δ{}β{}", s.depth, s.branching)
}

/// One bar of a Figure 4/5 chart.
#[derive(Debug, Clone, Copy)]
pub struct FigureBar {
    pub strategy: Strategy,
    pub action: Action,
    pub seconds: f64,
}

/// A figure: a titled series of bars grouped by strategy.
#[derive(Debug, Clone)]
pub struct FigureSeries {
    pub title: String,
    pub scenario: TreeScenario,
    pub link: LinkProfile,
    pub bars: Vec<FigureBar>,
}

impl FigureSeries {
    pub fn value(&self, strategy: Strategy, action: Action) -> Option<f64> {
        self.bars
            .iter()
            .find(|b| b.strategy == strategy && b.action == action)
            .map(|b| b.seconds)
    }
}

fn build_figure(title: &str, scenario: TreeScenario, link: LinkProfile) -> FigureSeries {
    let tree = scenario.tree();
    let mut bars = Vec::new();
    for strategy in Strategy::ALL {
        for action in Action::ALL {
            let b = response(
                &tree,
                action,
                strategy,
                &link,
                crate::scenario::NODE_SIZE_BYTES,
                0,
            );
            bars.push(FigureBar {
                strategy,
                action,
                seconds: b.total(),
            });
        }
    }
    FigureSeries {
        title: title.to_string(),
        scenario,
        link,
        bars,
    }
}

/// Figure 4: δ=9, β=3, γ=0.6, T_Lat=150 ms, dtr=512 kbit/s.
pub fn figure4() -> FigureSeries {
    let (s, l) = PaperScenario::figure4();
    build_figure(
        "Figure 4. Response times for δ=9, β=3, γ=0.6, T_Lat=150ms, dtr=512kBit/s",
        s,
        l,
    )
}

/// Figure 5: δ=7, β=5, γ=0.6, T_Lat=150 ms, dtr=256 kbit/s.
pub fn figure5() -> FigureSeries {
    let (s, l) = PaperScenario::figure5();
    build_figure(
        "Figure 5. Response times for δ=7, β=5, γ=0.6, T_Lat=150ms, dtr=256kBit/s",
        s,
        l,
    )
}

impl fmt::Display for FigureSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let max = self
            .bars
            .iter()
            .map(|b| b.seconds)
            .fold(f64::NEG_INFINITY, f64::max);
        for strategy in Strategy::ALL {
            writeln!(f, "  [{}]", strategy.label())?;
            for action in Action::ALL {
                if let Some(v) = self.value(strategy, action) {
                    let width = ((v / max) * 50.0).round() as usize;
                    writeln!(
                        f,
                        "    {:<6} {:>9.2}s |{}",
                        action.label(),
                        v,
                        "#".repeat(width.max(if v > 0.0 { 1 } else { 0 }))
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_close(actual: f64, expected: f64) {
        assert!(
            (actual - expected).abs() < 0.02,
            "{actual} vs paper {expected}"
        );
    }

    #[test]
    fn table2_totals_match_paper() {
        let t = table2();
        // (dtr, scenario index, action) → paper total
        let expect = [
            (256.0, 0, Action::Query, 13.28),
            (256.0, 0, Action::Expand, 0.63),
            (256.0, 0, Action::MultiLevelExpand, 99.10),
            (256.0, 1, Action::Query, 461.78),
            (256.0, 1, Action::Expand, 0.53),
            (256.0, 1, Action::MultiLevelExpand, 228.53),
            (256.0, 2, Action::Query, 1526.35),
            (256.0, 2, Action::Expand, 0.57),
            (256.0, 2, Action::MultiLevelExpand, 1684.39),
            (512.0, 0, Action::Query, 6.79),
            (512.0, 1, Action::MultiLevelExpand, 181.02),
            (512.0, 2, Action::MultiLevelExpand, 1334.20),
            (1024.0, 0, Action::MultiLevelExpand, 29.60),
            (1024.0, 1, Action::Query, 115.47),
            (1024.0, 2, Action::MultiLevelExpand, 503.10),
        ];
        for (dtr, s, a, total) in expect {
            let cell = t.cell(dtr, s, a).expect("cell exists");
            paper_close(cell.breakdown.total(), total);
        }
    }

    #[test]
    fn table3_totals_and_savings_match_paper() {
        let t = table3();
        let expect = [
            (256.0, 0, Action::Query, 3.49, 73.74),
            (256.0, 1, Action::Query, 7.43, 98.39),
            (256.0, 2, Action::Query, 51.72, 96.61),
            (256.0, 0, Action::MultiLevelExpand, 97.10, 2.02),
            (512.0, 1, Action::Query, 3.86, 98.33),
            (512.0, 2, Action::MultiLevelExpand, 1317.12, 1.28),
            (1024.0, 0, Action::Query, 0.90, 73.19),
            (1024.0, 2, Action::MultiLevelExpand, 494.56, 1.70),
        ];
        for (dtr, s, a, total, saving) in expect {
            let cell = t.cell(dtr, s, a).expect("cell exists");
            paper_close(cell.breakdown.total(), total);
            paper_close(cell.saving_pct.unwrap(), saving);
        }
    }

    #[test]
    fn table4_totals_and_savings_match_paper() {
        let t = table4();
        let expect = [
            (256.0, 0, 3.49, 96.48),
            (256.0, 1, 7.43, 96.75),
            (256.0, 2, 51.72, 96.93),
            (512.0, 0, 1.89, 97.59),
            (512.0, 1, 3.86, 97.87),
            (512.0, 2, 26.01, 98.05),
            (1024.0, 0, 0.90, 96.97),
            (1024.0, 1, 1.88, 97.24),
            (1024.0, 2, 12.96, 97.42),
        ];
        for (dtr, s, total, saving) in expect {
            let cell = t.cell(dtr, s, Action::MultiLevelExpand).expect("cell");
            paper_close(cell.breakdown.total(), total);
            paper_close(cell.saving_pct.unwrap(), saving);
        }
    }

    #[test]
    fn figure4_series_shape() {
        let f = figure4();
        // Late-eval MLE ≈ 181 s, recursion MLE ≈ 3.86 s (the figure's story).
        paper_close(
            f.value(Strategy::LateEval, Action::MultiLevelExpand)
                .unwrap(),
            181.02,
        );
        paper_close(
            f.value(Strategy::EarlyEval, Action::MultiLevelExpand)
                .unwrap(),
            178.71,
        );
        paper_close(
            f.value(Strategy::Recursive, Action::MultiLevelExpand)
                .unwrap(),
            3.86,
        );
        paper_close(f.value(Strategy::LateEval, Action::Query).unwrap(), 231.04);
        paper_close(f.value(Strategy::EarlyEval, Action::Query).unwrap(), 3.86);
    }

    #[test]
    fn figure5_series_shape() {
        let f = figure5();
        paper_close(
            f.value(Strategy::LateEval, Action::MultiLevelExpand)
                .unwrap(),
            1684.39,
        );
        paper_close(
            f.value(Strategy::EarlyEval, Action::MultiLevelExpand)
                .unwrap(),
            1650.23,
        );
        paper_close(
            f.value(Strategy::Recursive, Action::MultiLevelExpand)
                .unwrap(),
            51.72,
        );
        paper_close(f.value(Strategy::LateEval, Action::Query).unwrap(), 1526.35);
    }

    #[test]
    fn tables_render_without_panicking() {
        let text = table2().to_string();
        assert!(text.contains("Table 2"));
        let text = table3().to_string();
        assert!(text.contains("saving"));
        let text = figure4().to_string();
        assert!(text.contains("recursion"));
    }
}
