#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # pdm-model — the paper's closed-form response-time model
//!
//! Implements Section 2 (equations (1)–(4)), Section 4.2 (early rule
//! evaluation), and Section 5.4 (equations (5)–(6), recursive queries) of
//! *"Tuning an SQL-Based PDM System in a Worldwide Client/Server
//! Environment"*, plus generators for every table and figure of the paper's
//! evaluation: Table 2 (late evaluation), Table 3 (early evaluation),
//! Table 4 (recursive queries), and the bar-chart series of Figures 4 and 5.
//!
//! The model works over complete β-ary trees of depth δ where a branch is
//! visible to the user with probability γ (so level *i* contributes
//! `(γβ)^i` visible nodes). Calibration notes that pin down the paper's
//! exact arithmetic (verified against Table 2 to the cent):
//!
//! * 1 kbit = 1024 bits, 1 kB = 1024 bytes;
//! * the navigational multi-level expand issues `Σ_{i=0}^{δ} (γβ)^i`
//!   queries — every *visible* node is touched once, including the root
//!   (whose data is already at the client, footnote 4, but whose expansion
//!   still costs a query) and the leaves (whose childlessness must be
//!   discovered);
//! * each response is charged a half-packet correction per request packet
//!   (eq. (3)).

pub mod response;
pub mod scenario;
pub mod tables;
pub mod tree;

pub use response::{batched_mle_response, Action, Breakdown, Strategy};
pub use scenario::{PaperScenario, TreeScenario, NODE_SIZE_BYTES};
pub use tables::{figure4, figure5, table2, table3, table4, FigureSeries, PaperTable};
pub use tree::KaryTree;
