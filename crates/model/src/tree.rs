//! Complete β-ary tree mathematics: node counts per level, visibility.

/// A complete β-ary product tree of depth δ: all internal nodes have β
/// children, all leaves sit at depth δ. A branch is visible to the user with
/// probability γ, independently per branch, so the *expected* number of
/// visible nodes at level *i* is `(γβ)^i`. Level 0 is the root, which the
/// client already holds (paper footnote 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KaryTree {
    /// Depth δ (levels 1..=δ below the root).
    pub depth: u32,
    /// Branching factor β.
    pub branching: u32,
    /// Per-branch visibility probability γ ∈ [0, 1].
    pub gamma: f64,
}

impl KaryTree {
    pub fn new(depth: u32, branching: u32, gamma: f64) -> Self {
        assert!(depth >= 1, "tree depth must be at least 1");
        assert!(branching >= 1, "branching factor must be at least 1");
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0, 1]");
        KaryTree {
            depth,
            branching,
            gamma,
        }
    }

    /// Σ_{i=a}^{b} r^i — geometric series over levels, stable for r = 1.
    fn geometric(r: f64, a: u32, b: u32) -> f64 {
        if b < a {
            return 0.0;
        }
        if (r - 1.0).abs() < 1e-12 {
            return (b - a + 1) as f64;
        }
        (r.powi(b as i32 + 1) - r.powi(a as i32)) / (r - 1.0)
    }

    /// Effective visible branching γβ.
    pub fn visible_branching(&self) -> f64 {
        self.gamma * self.branching as f64
    }

    /// All nodes below the root: Σ_{i=1}^{δ} β^i.
    pub fn total_nodes(&self) -> f64 {
        Self::geometric(self.branching as f64, 1, self.depth)
    }

    /// Visible nodes below the root (the paper's n_v): Σ_{i=1}^{δ} (γβ)^i.
    pub fn visible_nodes(&self) -> f64 {
        Self::geometric(self.visible_branching(), 1, self.depth)
    }

    /// Visible nodes at levels 0..=δ — the number of queries a navigational
    /// multi-level expand issues (root expansion plus one query per visible
    /// node, leaves included).
    pub fn mle_queries(&self) -> f64 {
        Self::geometric(self.visible_branching(), 0, self.depth)
    }

    /// Nodes transmitted by a navigational MLE under LATE rule evaluation:
    /// every expansion of a visible node at levels 0..δ-1 ships all β
    /// children (the server does not filter), so β · Σ_{i=0}^{δ-1} (γβ)^i.
    pub fn mle_transmitted_late(&self) -> f64 {
        self.branching as f64 * Self::geometric(self.visible_branching(), 0, self.depth - 1)
    }

    /// Nodes transmitted by a navigational MLE under EARLY rule evaluation:
    /// only visible children ship, γβ · Σ_{i=0}^{δ-1} (γβ)^i = n_v.
    pub fn mle_transmitted_early(&self) -> f64 {
        self.visible_nodes()
    }

    /// Expected visible nodes at the leaf level: (γβ)^δ.
    pub fn leaf_level_visible(&self) -> f64 {
        self.visible_branching().powi(self.depth as i32)
    }

    /// Exact number of nodes at level `i` ignoring visibility.
    pub fn nodes_at_level(&self, level: u32) -> u64 {
        (self.branching as u64).pow(level)
    }

    /// Total node count below the root as an exact integer.
    pub fn total_nodes_exact(&self) -> u64 {
        (1..=self.depth).map(|i| self.nodes_at_level(i)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6 * b.abs().max(1.0), "{a} vs {b}");
    }

    #[test]
    fn paper_scenario_node_counts() {
        // δ=3, β=9: 9 + 81 + 729 = 819
        close(KaryTree::new(3, 9, 0.6).total_nodes(), 819.0);
        // δ=9, β=3: (3^10 - 3)/2 = 29523
        close(KaryTree::new(9, 3, 0.6).total_nodes(), 29523.0);
        // δ=7, β=5: (5^8 - 5)/4 = 97655
        close(KaryTree::new(7, 5, 0.6).total_nodes(), 97655.0);
    }

    #[test]
    fn exact_matches_float_counts() {
        for (d, b) in [(3u32, 9u32), (9, 3), (7, 5), (1, 1), (4, 2)] {
            let t = KaryTree::new(d, b, 0.5);
            close(t.total_nodes(), t.total_nodes_exact() as f64);
        }
    }

    #[test]
    fn visible_nodes_with_gamma() {
        // δ=3, β=9, γ=0.6: 5.4 + 29.16 + 157.464 = 192.024
        close(KaryTree::new(3, 9, 0.6).visible_nodes(), 192.024);
    }

    #[test]
    fn mle_queries_include_root_and_leaves() {
        // δ=7, β=5, γ=0.6 → γβ=3: Σ_{i=0}^{7} 3^i = 3280 (reproduces the
        // 984.00 s latency figure: 2·3280·0.15).
        close(KaryTree::new(7, 5, 0.6).mle_queries(), 3280.0);
        // δ=9, β=3, γ=0.6 → γβ=1.8: Σ_{i=0}^{9} 1.8^i
        let q = KaryTree::new(9, 3, 0.6).mle_queries();
        close(2.0 * q * 0.15, 133.52 * (2.0 * q * 0.15 / 133.52));
        assert!((2.0 * q * 0.15 - 133.52).abs() < 0.01);
    }

    #[test]
    fn mle_transmitted_late_counts_all_children_of_visible_nodes() {
        // δ=7, β=5, γ=0.6: 5 · Σ_{i=0}^{6} 3^i = 5 · 1093 = 5465
        close(KaryTree::new(7, 5, 0.6).mle_transmitted_late(), 5465.0);
    }

    #[test]
    fn gamma_one_makes_visible_equal_total() {
        let t = KaryTree::new(4, 3, 1.0);
        close(t.visible_nodes(), t.total_nodes());
        close(t.mle_transmitted_late(), t.mle_transmitted_early());
    }

    #[test]
    fn gamma_zero_means_only_root_expansion() {
        let t = KaryTree::new(4, 3, 0.0);
        close(t.visible_nodes(), 0.0);
        close(t.mle_queries(), 1.0); // the root expand still happens
        close(t.mle_transmitted_late(), 3.0); // root's children still ship
    }

    #[test]
    fn unary_tree_geometric_stability() {
        // β=1, γ=1 → r=1: sums must count levels, not divide by zero.
        let t = KaryTree::new(5, 1, 1.0);
        close(t.total_nodes(), 5.0);
        close(t.visible_nodes(), 5.0);
        close(t.mle_queries(), 6.0);
    }

    #[test]
    #[should_panic]
    fn gamma_out_of_range_panics() {
        KaryTree::new(3, 3, 1.5);
    }
}
