#![allow(clippy::unwrap_used)]

//! Property-based tests on the response-time model: monotonicity, bounds,
//! and the structural identities equations (1)–(6) must satisfy.
//!
//! Uses the in-repo `pdm_prng::check` harness (explicit generator loops)
//! instead of proptest, which the offline build cannot fetch.

use pdm_prng::check::cases;
use pdm_prng::Prng;

use pdm_model::response::{response, saving_percent};
use pdm_model::{Action, KaryTree, Strategy as Variant};
use pdm_net::LinkProfile;

fn arb_tree(rng: &mut Prng) -> KaryTree {
    let d = rng.u32_inclusive(1, 7);
    let b = rng.u32_inclusive(2, 7);
    let g = rng.f64_range(0.05, 1.0);
    KaryTree::new(d, b, g)
}

fn arb_link(rng: &mut Prng) -> LinkProfile {
    let dtr = rng.f64_range(16.0, 20_000.0);
    let lat = rng.f64_range(0.0005, 0.5);
    LinkProfile::new(dtr, lat, 4096)
}

/// Faster links never increase predicted time; higher latency never
/// decreases it.
#[test]
fn monotone_in_link_parameters() {
    cases("monotone_in_link_parameters", 256, 0x11, |rng| {
        let tree = arb_tree(rng);
        let link = arb_link(rng);
        for action in Action::ALL {
            for strategy in Variant::ALL {
                let base = response(&tree, action, strategy, &link, 512, 0);
                let faster = LinkProfile::new(link.dtr_kbit * 2.0, link.latency, link.packet_size);
                let quicker = response(&tree, action, strategy, &faster, 512, 0);
                assert!(quicker.total() <= base.total() + 1e-9);

                let laggier = LinkProfile::new(link.dtr_kbit, link.latency * 2.0, link.packet_size);
                let slower = response(&tree, action, strategy, &laggier, 512, 0);
                assert!(slower.total() >= base.total() - 1e-9);
            }
        }
    });
}

/// Early evaluation never ships more nodes than late; recursive MLE
/// never uses more communications than navigational.
#[test]
fn optimizations_never_hurt() {
    cases("optimizations_never_hurt", 256, 0x12, |rng| {
        let tree = arb_tree(rng);
        let link = arb_link(rng);
        for action in Action::ALL {
            let late = response(&tree, action, Variant::LateEval, &link, 512, 0);
            let early = response(&tree, action, Variant::EarlyEval, &link, 512, 0);
            assert!(early.transmitted_nodes <= late.transmitted_nodes + 1e-9);
            assert!(early.total() <= late.total() + 1e-9);

            let rec = response(&tree, action, Variant::Recursive, &link, 512, 0);
            assert!(rec.communications <= late.communications + 1e-9);
            assert!(rec.total() <= late.total() + 1e-9);
        }
    });
}

/// The volume identity of eq. (3)/(5): vol = 1.5·q·size_p + n_t·size_n.
#[test]
fn volume_identity() {
    cases("volume_identity", 256, 0x13, |rng| {
        let tree = arb_tree(rng);
        let link = arb_link(rng);
        for action in Action::ALL {
            for strategy in Variant::ALL {
                let b = response(&tree, action, strategy, &link, 512, 0);
                let expected =
                    1.5 * b.queries * link.packet_size as f64 + b.transmitted_nodes * 512.0;
                assert!((b.volume_bytes - expected).abs() < 1e-6);
                // and eq. (4)/(6)
                assert!((b.latency_time - b.communications * link.latency).abs() < 1e-9);
                assert!((b.transfer_time - link.transfer_time(b.volume_bytes)).abs() < 1e-9);
            }
        }
    });
}

/// Savings are bounded by 100% and recursive-vs-late MLE saving is
/// positive whenever the tree has at least one visible node.
#[test]
fn savings_bounds() {
    cases("savings_bounds", 256, 0x14, |rng| {
        let tree = arb_tree(rng);
        let link = arb_link(rng);
        let late = response(
            &tree,
            Action::MultiLevelExpand,
            Variant::LateEval,
            &link,
            512,
            0,
        );
        let rec = response(
            &tree,
            Action::MultiLevelExpand,
            Variant::Recursive,
            &link,
            512,
            0,
        );
        let s = saving_percent(&late, &rec);
        assert!(s <= 100.0);
        if tree.visible_nodes() >= 1.0 {
            assert!(s > 0.0, "saving {s} for tree {tree:?}");
        }
    });
}

/// Profile-based prediction agrees with the direct formulation.
#[test]
fn profile_roundtrip() {
    cases("profile_roundtrip", 256, 0x15, |rng| {
        let tree = arb_tree(rng);
        let link = arb_link(rng);
        let p = tree.profile();
        for action in Action::ALL {
            for strategy in Variant::ALL {
                let direct = response(&tree, action, strategy, &link, 512, 0);
                let via =
                    pdm_model::response::response_from_profile(&p, action, strategy, &link, 512, 0);
                assert!((direct.total() - via.total()).abs() < 1e-9);
                assert!((direct.queries - via.queries).abs() < 1e-9);
            }
        }
    });
}

/// Tree-count identities: n_v ≤ n_total; MLE late traffic ≥ early.
#[test]
fn tree_count_identities() {
    cases("tree_count_identities", 256, 0x16, |rng| {
        let tree = arb_tree(rng);
        assert!(tree.visible_nodes() <= tree.total_nodes() + 1e-9);
        assert!(tree.mle_transmitted_early() <= tree.mle_transmitted_late() + 1e-9);
        // q_mle = 1 + n_v
        assert!((tree.mle_queries() - 1.0 - tree.visible_nodes()).abs() < 1e-6);
        // γ = 1 ⇒ everything visible
        let full = KaryTree::new(tree.depth, tree.branching, 1.0);
        assert!((full.visible_nodes() - full.total_nodes()).abs() < 1e-6);
    });
}

/// Bigger requests never reduce recursive-query cost, and communications
/// stay at 2 regardless.
#[test]
fn recursive_query_size_monotone() {
    cases("recursive_query_size_monotone", 256, 0x17, |rng| {
        let tree = arb_tree(rng);
        let link = arb_link(rng);
        let bytes = rng.usize_inclusive(0, 99_999);
        let small = response(
            &tree,
            Action::MultiLevelExpand,
            Variant::Recursive,
            &link,
            512,
            bytes,
        );
        let bigger = response(
            &tree,
            Action::MultiLevelExpand,
            Variant::Recursive,
            &link,
            512,
            bytes + 10_000,
        );
        assert!(bigger.total() >= small.total() - 1e-9);
        assert_eq!(small.communications, 2.0);
        assert_eq!(bigger.communications, 2.0);
    });
}
