//! Mutation fixtures: for every lint, a minimal source that must be
//! rejected and a corrected twin that must be accepted. The meta-test
//! walks `Lint::ALL` over these pairs, so a lint cannot be added
//! without a demonstration of what it catches and what it permits.
//!
//! Fixtures are lexed, not compiled — they only need to be
//! token-faithful Rust. They are checked under the fixture path
//! `crates/core/src/fixture.rs` (inside the unchecked-index scope) and
//! [`crate::schema::Registries::fixture`].

use crate::registry::Lint;

/// The path fixtures are linted under.
pub const FIXTURE_PATH: &str = "crates/core/src/fixture.rs";

/// Returns `(bad, good)` for `lint`.
pub fn pair(lint: Lint) -> (&'static str, &'static str) {
    match lint {
        Lint::WallClock => (
            "fn wait_deadline(&self) -> Instant {\n    let t = Instant::now();\n    t\n}\n",
            "fn wait_deadline(&self) -> Instant {\n    // lint:allow(wall-clock): condvar deadlines block real OS threads and\n    // must be measured on the OS clock, not the virtual one.\n    let t = Instant::now();\n    t\n}\n",
        ),
        Lint::AmbientRandomness => (
            "fn jitter(&self) -> u64 {\n    let mut rng = thread_rng();\n    rng.gen()\n}\n",
            "fn jitter(&self, prng: &mut Prng) -> u64 {\n    prng.next_u64()\n}\n",
        ),
        Lint::UnorderedIter => (
            "struct Cache { map: HashMap<u64, u64> }\nimpl Cache {\n    fn dump(&self) -> Vec<u64> {\n        self.map.keys().copied().collect::<Vec<u64>>()\n    }\n}\n",
            "struct Cache { map: BTreeMap<u64, u64> }\nimpl Cache {\n    fn dump(&self) -> Vec<u64> {\n        self.map.keys().copied().collect::<Vec<u64>>()\n    }\n}\n",
        ),
        Lint::LockOrderCycle => (
            "impl S {\n    fn promote(&self) {\n        let ga = self.alpha.lock();\n        let gb = self.beta.lock();\n    }\n    fn demote(&self) {\n        let gb = self.beta.lock();\n        let ga = self.alpha.lock();\n    }\n}\n",
            "impl S {\n    fn promote(&self) {\n        let ga = self.alpha.lock();\n        let gb = self.beta.lock();\n    }\n    fn demote(&self) {\n        let ga = self.alpha.lock();\n        let gb = self.beta.lock();\n    }\n}\n",
        ),
        Lint::LockAcrossBoundary => (
            "impl S {\n    fn relay(&mut self) {\n        let g = self.state.lock();\n        self.channel.exchange(g.bytes);\n    }\n}\n",
            "impl S {\n    fn relay(&mut self) {\n        let bytes = {\n            let g = self.state.lock();\n            g.bytes\n        };\n        self.channel.exchange(bytes);\n    }\n}\n",
        ),
        Lint::NestedLockReacquire => (
            "impl S {\n    fn bump(&self) {\n        let g = self.state.lock();\n        let h = self.state.lock();\n    }\n}\n",
            "impl S {\n    fn bump(&self) {\n        let g = self.state.lock();\n        drop(g);\n        let h = self.state.lock();\n    }\n}\n",
        ),
        Lint::UnboundedWait => (
            "impl S {\n    fn wait_ready(&self) {\n    let mut g = self.state.lock();\n        while !g.ready {\n            g = self.ready_cv.wait(g).into_inner();\n        }\n    }\n}\n",
            "impl S {\n    fn wait_ready(&self) {\n    let mut g = self.state.lock();\n        while !g.ready {\n            g = self.ready_cv.wait_timeout(g, WAIT_SLICE).into_inner().0;\n        }\n    }\n}\n",
        ),
        Lint::ReplayCatchall => (
            "fn replay(&mut self, record: &WalRecord) {\n    match record {\n        WalRecord::DmlCommit { version, sql } => self.dml(version, sql),\n        _ => {}\n    }\n}\n",
            FULL_REPLAY_MATCH,
        ),
        Lint::ReplayMissingVariant => (
            "fn replay(&mut self, record: &WalRecord) {\n    match record {\n        WalRecord::DmlCommit { version, sql } => self.dml(version, sql),\n        WalRecord::TokenComplete { token, rows } => self.done(token, rows),\n    }\n}\n",
            FULL_REPLAY_MATCH,
        ),
        Lint::UnfencedApply => (
            "fn apply_batch(&mut self, epoch: u64, records: &[(u64, WalRecord)]) {\n    for (seq, record) in records {\n        self.apply_one(seq, record);\n    }\n}\n",
            "fn apply_batch(&mut self, epoch: u64, records: &[(u64, WalRecord)]) -> Result<(), E> {\n    if epoch != self.epoch {\n        return Err(E::Fenced);\n    }\n    for (seq, record) in records {\n        self.apply_one(seq, record);\n    }\n    Ok(())\n}\n",
        ),
        Lint::MetricFamilyUnknown => (
            "fn wire(reg: &MetricsRegistry) -> Counter {\n    reg.counter(\"cache.hitz\")\n}\n",
            "fn wire(reg: &MetricsRegistry) -> Counter {\n    reg.counter(\"cache.hits\")\n}\n",
        ),
        Lint::SpanKindUnregistered => (
            "fn probe_kind() -> SpanKind {\n    SpanKind::new(\"session\", \"adhoc_probe\")\n}\n",
            "fn probe_kind() -> SpanKind {\n    kinds::SESSION_QUERY\n}\n",
        ),
        Lint::TimeoutWithoutFlight => (
            "fn lag_error(&self, waited_s: f64) -> SessionError {\n    SessionError::ReplicaLagTimeout { waited_s }\n}\n",
            "fn lag_error(&self, waited_s: f64) -> SessionError {\n    SessionError::ReplicaLagTimeout {\n        waited_s,\n        context: FlightDump::at(&self.recorder),\n    }\n}\n",
        ),
        Lint::OrphanSpan => (
            "fn finish(&mut self, latency: f64) {\n    self.obs.record_closed(kinds::NET_EXCHANGE, \"q\", 0.0, latency, &[], \"\");\n}\n",
            "fn finish(&mut self, latency: f64) {\n    if let Some(ctx) = self.ctx {\n        self.obs.record_closed(\n            kinds::NET_EXCHANGE,\n            \"q\",\n            0.0,\n            latency,\n            &[(\"trace_id\", ctx.trace_id as f64)],\n            \"\",\n        );\n    }\n}\n",
        ),
        Lint::UncheckedIndex => (
            "fn frame_seq(frame: &[u8], at: usize) -> u8 {\n    frame[at]\n}\n",
            "fn frame_seq(frame: &[u8], at: usize) -> Option<u8> {\n    frame.get(at).copied()\n}\n",
        ),
        Lint::UncheckedProtocolArith => (
            "fn advance(&mut self) -> u64 {\n    let seq = self.next_seq;\n    self.next_seq = self.next_seq + 1;\n    seq\n}\n",
            "fn advance(&mut self) -> u64 {\n    let seq = self.next_seq;\n    self.next_seq = self.next_seq.saturating_add(1);\n    seq\n}\n",
        ),
        Lint::AllowHygiene => (
            "// lint:allow(wall-clock)\nfn quiet() -> u64 {\n    7\n}\n",
            "fn quiet() -> u64 {\n    7\n}\n",
        ),
    }
}

const FULL_REPLAY_MATCH: &str = "fn replay(&mut self, record: &WalRecord) {\n    match record {\n        WalRecord::DmlCommit { version, sql } => self.dml(version, sql),\n        WalRecord::CheckoutGrant { token, assy_ids, comp_ids } => self.grant(token, assy_ids, comp_ids),\n        WalRecord::CheckoutRelease { ids } => self.release(ids),\n        WalRecord::TokenComplete { token, rows } => self.done(token, rows),\n    }\n}\n";
