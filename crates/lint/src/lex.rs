//! A minimal Rust lexer sufficient for token-level static analysis.
//!
//! The analyzer does not parse Rust; it works on the token stream plus a
//! handful of structural recoveries (brace matching, `#[cfg(test)]`
//! region masking, function tables). The lexer therefore only needs to
//! classify tokens and — critically — get string literals, character
//! literals, lifetimes, and comments right so that nothing inside them
//! is ever mistaken for code.
//!
//! Comments are not discarded entirely: `lint:allow(<lint-id>): <reason>`
//! markers are extracted from them and drive the suppression layer (see
//! [`crate::registry`]).

/// Token classification. Deliberately coarse: the lints only ever care
/// about identifiers, literals, and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `_`).
    Ident,
    /// Numeric literal (integer or float, any radix).
    Number,
    /// String literal; `text` holds the *contents* without quotes.
    Str,
    /// Character or byte literal.
    Char,
    /// Lifetime such as `'a` (also the `'static` keyword).
    Lifetime,
    /// Operator / delimiter, longest-match up to three characters.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is(&self, kind: TokKind, text: &str) -> bool {
        self.kind == kind && self.text == text
    }

    pub fn is_ident(&self, text: &str) -> bool {
        self.is(TokKind::Ident, text)
    }

    pub fn is_punct(&self, text: &str) -> bool {
        self.is(TokKind::Punct, text)
    }
}

/// A `lint:allow(<id>): <reason>` or `lint:allow-file(<id>): <reason>`
/// marker found in a comment.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// 1-based line of the comment line holding the marker.
    pub line: u32,
    /// The lint id being suppressed (not yet validated).
    pub id: String,
    /// Free-text justification after the closing paren (may be empty,
    /// which the hygiene lint rejects).
    pub reason: String,
    /// True for `lint:allow-file(..)`: suppresses the named lint for the
    /// whole file instead of a window of nearby lines. Reserved for
    /// framing-style code where per-site markers would dominate the file.
    pub file_scope: bool,
}

/// Lexer output: the token stream and any allow markers seen in comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub allows: Vec<AllowMarker>,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Multi-character operators, longest first within each length class.
const PUNCT3: &[&str] = &["..=", "...", "<<=", ">>="];
const PUNCT2: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "&&", "||", "..", "<<",
    ">>", "&=", "|=", "^=",
];

/// Scan a comment's text for `lint:allow(...)` and
/// `lint:allow-file(...)` markers.
fn scan_markers(text: &str, line: u32, out: &mut Vec<AllowMarker>) {
    scan_marker_form(text, line, "lint:allow(", false, out);
    scan_marker_form(text, line, "lint:allow-file(", true, out);
}

fn scan_marker_form(
    text: &str,
    line: u32,
    needle: &str,
    file_scope: bool,
    out: &mut Vec<AllowMarker>,
) {
    let mut rest = text;
    let mut line = line;
    loop {
        // Advance the line counter for markers inside block comments.
        let Some(pos) = rest.find(needle) else {
            return;
        };
        line += rest[..pos].matches('\n').count() as u32;
        let after = &rest[pos + needle.len()..];
        let Some(close) = after.find(')') else {
            return;
        };
        let id = after[..close].trim().to_string();
        let tail = &after[close + 1..];
        let reason = tail
            .strip_prefix(':')
            .map(|r| {
                let line_end = r.find('\n').unwrap_or(r.len());
                r[..line_end].trim().to_string()
            })
            .unwrap_or_default();
        out.push(AllowMarker {
            line,
            id,
            reason,
            file_scope,
        });
        rest = tail;
    }
}

/// Lex `src` into tokens and allow markers. Never fails: unterminated
/// constructs simply consume to end of input (the workspace being linted
/// must already compile, so this path only matters for fixtures).
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($kind:expr, $text:expr, $line:expr) => {
            out.toks.push(Tok {
                kind: $kind,
                text: $text,
                line: $line,
            })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            scan_markers(&text, line, &mut out.allows);
            continue;
        }
        // Block comment (nested).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let text: String = chars[start..i].iter().collect();
            scan_markers(&text, start_line, &mut out.allows);
            continue;
        }
        // Identifier, keyword, or a raw/byte string prefix.
        if is_ident_start(c) {
            let start = i;
            while i < chars.len() && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            // Raw / byte string forms: r"..", r#".."#, b"..", br#".."#.
            if matches!(text.as_str(), "r" | "b" | "br")
                && matches!(chars.get(i), Some('"') | Some('#'))
            {
                let (s, consumed, newlines) = lex_raw_or_byte_string(&chars[i..], &text);
                push!(TokKind::Str, s, line);
                line += newlines;
                i += consumed;
                continue;
            }
            // Byte char literal b'x'.
            if text == "b" && chars.get(i) == Some(&'\'') {
                let (consumed, _) = lex_char_body(&chars[i..]);
                push!(TokKind::Char, String::new(), line);
                i += consumed;
                continue;
            }
            push!(TokKind::Ident, text, line);
            continue;
        }
        // Cooked string literal.
        if c == '"' {
            let start_line = line;
            let mut s = String::new();
            i += 1;
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\\' && i + 1 < chars.len() {
                    s.push(chars[i]);
                    s.push(chars[i + 1]);
                    if chars[i + 1] == '\n' {
                        line += 1;
                    }
                    i += 2;
                    continue;
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                s.push(chars[i]);
                i += 1;
            }
            i += 1; // closing quote
            push!(TokKind::Str, s, start_line);
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(n) if is_ident_start(n) => chars.get(i + 2) == Some(&'\''),
                Some(_) => true,
                None => false,
            };
            if is_char {
                let (consumed, _) = lex_char_body(&chars[i..]);
                push!(TokKind::Char, String::new(), line);
                i += consumed;
            } else {
                let start = i + 1;
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                push!(TokKind::Lifetime, text, line);
            }
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len()
                && (is_ident_continue(chars[i])
                    || (chars[i] == '.'
                        && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                        && chars.get(i.wrapping_sub(1)) != Some(&'.')))
            {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            push!(TokKind::Number, text, line);
            continue;
        }
        // Punctuation, longest match first.
        let take = |n: usize| -> String { chars[i..(i + n).min(chars.len())].iter().collect() };
        let three = take(3);
        if PUNCT3.contains(&three.as_str()) {
            push!(TokKind::Punct, three, line);
            i += 3;
            continue;
        }
        let two = take(2);
        if PUNCT2.contains(&two.as_str()) {
            push!(TokKind::Punct, two, line);
            i += 2;
            continue;
        }
        push!(TokKind::Punct, c.to_string(), line);
        i += 1;
    }
    out
}

/// Consume a char/byte-char literal starting at the opening quote.
/// Returns (chars consumed, newlines crossed — always 0 in valid code).
fn lex_char_body(chars: &[char]) -> (usize, u32) {
    let mut i = 1; // opening quote
    while i < chars.len() && chars[i] != '\'' {
        if chars[i] == '\\' {
            i += 1;
        }
        i += 1;
    }
    (i + 1, 0)
}

/// Consume a raw or byte string whose prefix ident (`r`, `b`, `br`) was
/// already read; `chars` starts at the `#` or `"`. Returns the contents,
/// chars consumed, and newlines crossed.
fn lex_raw_or_byte_string(chars: &[char], prefix: &str) -> (String, usize, u32) {
    let raw = prefix.contains('r');
    let mut i = 0usize;
    let mut hashes = 0usize;
    if raw {
        while chars.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
    }
    if chars.get(i) != Some(&'"') {
        return (String::new(), i.max(1), 0);
    }
    i += 1;
    let mut s = String::new();
    let mut newlines = 0u32;
    while i < chars.len() {
        if !raw && chars[i] == '\\' && i + 1 < chars.len() {
            s.push(chars[i]);
            s.push(chars[i + 1]);
            i += 2;
            continue;
        }
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                i += 1 + hashes;
                return (s, i, newlines);
            }
        }
        if chars[i] == '\n' {
            newlines += 1;
        }
        s.push(chars[i]);
        i += 1;
    }
    (s, i, newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_comments_and_lifetimes_do_not_leak_tokens() {
        let src = r##"
            // Instant::now() in a comment
            let s = "Instant::now() in a string";
            let r = r#"HashMap in raw"#;
            let c = '{';
            fn f<'a>(x: &'a str) {}
        "##;
        let lexed = lex(src);
        let idents: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(!idents.contains(&"Instant"), "{idents:?}");
        assert!(!idents.contains(&"HashMap"), "{idents:?}");
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Lifetime));
        // The string *contents* are preserved on Str tokens.
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text.contains("Instant")));
    }

    #[test]
    fn allow_markers_are_extracted_with_reason() {
        let src = "// lint:allow(wall-clock): condvar deadline\nlet t = Instant::now();\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].id, "wall-clock");
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[0].reason, "condvar deadline");
    }

    #[test]
    fn marker_without_reason_has_empty_reason() {
        let src = "// lint:allow(unchecked-index)\nx[i];\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert!(lexed.allows[0].reason.is_empty());
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let a = \"one\ntwo\nthree\";\nlet b = 1;\n";
        let lexed = lex(src);
        let b = lexed.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 4);
    }
}
