//! Determinism lints: wall-clock reads, ambient randomness, and
//! hash-order iteration. The simulation's virtual clock and seeded PRNG
//! are the only sanctioned sources of time and randomness (DESIGN.md §2);
//! hash iteration order must never reach serialized output.

use std::collections::BTreeSet;

use crate::lex::TokKind;
use crate::registry::{Finding, Lint};
use crate::source::LintFile;

pub fn run(files: &[LintFile], out: &mut Vec<Finding>) {
    for f in files {
        wall_clock(f, out);
        ambient_randomness(f, out);
        unordered_iter(f, out);
    }
}

/// `Instant::now()`, `SystemTime::now()`, `UNIX_EPOCH` in non-test code.
fn wall_clock(f: &LintFile, out: &mut Vec<Finding>) {
    for (i, t) in f.toks.iter().enumerate() {
        if f.test_mask[i] {
            continue;
        }
        let two_ahead = |a: &str, b: &str| {
            f.toks.get(i + 1).is_some_and(|t| t.is_punct(a))
                && f.toks.get(i + 2).is_some_and(|t| t.is_ident(b))
        };
        if (t.is_ident("Instant") || t.is_ident("SystemTime")) && two_ahead("::", "now") {
            out.push(Finding::new(
                Lint::WallClock,
                &f.path,
                t.line,
                format!(
                    "{}::now() reads the OS clock; measured time must come from the \
                     virtual clock (annotate advisory uses with lint:allow)",
                    t.text
                ),
            ));
        }
        if t.is_ident("UNIX_EPOCH") {
            out.push(Finding::new(
                Lint::WallClock,
                &f.path,
                t.line,
                "UNIX_EPOCH anchors wall time into the deterministic domain",
            ));
        }
    }
}

/// Entropy-backed constructs that make runs irreproducible.
const RANDOM_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "RandomState",
    "getrandom",
    "OsRng",
];

fn ambient_randomness(f: &LintFile, out: &mut Vec<Finding>) {
    for (i, t) in f.toks.iter().enumerate() {
        if f.test_mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if RANDOM_IDENTS.contains(&t.text.as_str()) {
            out.push(Finding::new(
                Lint::AmbientRandomness,
                &f.path,
                t.line,
                format!(
                    "{} draws ambient entropy; all randomness must flow from a seeded \
                     pdm_prng::Prng",
                    t.text
                ),
            ));
        }
    }
}

/// Iterator sinks whose result is independent of visit order.
const ORDER_INSENSITIVE_SINKS: &[&str] = &[
    "count",
    "sum",
    "min",
    "max",
    "all",
    "any",
    "len",
    "max_by_key",
    "min_by_key",
    "max_by",
    "min_by",
    "product",
    "find",
    "position",
];

/// Collections whose `collect` target re-establishes a canonical order
/// (or is itself unordered, deferring the question to its own uses).
const ORDERED_COLLECT_TARGETS: &[&str] =
    &["BTreeMap", "BTreeSet", "BinaryHeap", "HashMap", "HashSet"];

/// Methods that enumerate a hash collection in hash order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Taint names bound to `HashMap`/`HashSet` (directly via type ascription
/// or constructor, transitively via `let x = ...tainted...`), then flag
/// hash-order enumerations that do not end in an order-insensitive sink.
fn unordered_iter(f: &LintFile, out: &mut Vec<Finding>) {
    let toks = &f.toks;
    let mut tainted: BTreeSet<String> = BTreeSet::new();

    // Pass 1: direct bindings — `name : .. HashMap ..` (field or let
    // ascription) and `name = HashMap::new()`-style constructors.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || crate::source::is_keyword(&t.text) {
            continue;
        }
        let Some(next) = toks.get(i + 1) else {
            continue;
        };
        let window = if next.is_punct(":") {
            12
        } else if next.is_punct("=") {
            4
        } else {
            continue;
        };
        for w in &toks[i + 2..(i + 2 + window).min(toks.len())] {
            if w.is_punct(";") || w.is_punct(",") || w.is_punct(")") || w.is_punct("{") {
                break;
            }
            if next.is_punct(":") && w.is_punct("=") {
                break;
            }
            if w.is_ident("HashMap") || w.is_ident("HashSet") {
                tainted.insert(t.text.clone());
                break;
            }
        }
    }

    // Pass 2 (fixpoint): `let x = <rhs using a tainted ident as a whole
    // value> ;` propagates taint through guards and aliases
    // (`let g = lock(&self.map);`, `let m = &self.map;`). A tainted
    // ident followed by `.` or `[` is extracting a contained value
    // (`pushed.remove(&k)`, `site_of[&id]`), which carries no iteration
    // order, so it does not propagate.
    loop {
        let mut grew = false;
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("let") {
                continue;
            }
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j) else { continue };
            if name.kind != TokKind::Ident || !toks.get(j + 1).is_some_and(|t| t.is_punct("=")) {
                continue;
            }
            if tainted.contains(&name.text) {
                continue;
            }
            let mut k = j + 2;
            while k < toks.len() && !toks[k].is_punct(";") {
                let whole_value = toks[k].kind == TokKind::Ident
                    && tainted.contains(&toks[k].text)
                    && toks
                        .get(k + 1)
                        .is_some_and(|n| !n.is_punct(".") && !n.is_punct("["));
                if whole_value {
                    tainted.insert(name.text.clone());
                    grew = true;
                    break;
                }
                k += 1;
            }
        }
        if !grew {
            break;
        }
    }

    // Per-function shadowing: a binding of the same name whose ascribed
    // type is visibly NOT a hash collection (`filters: &[Expr]`,
    // `let touched: Vec<usize> = ..`) untaints the name inside that
    // function — unless the same function also hash-binds it.
    let mut shadow: Vec<(String, usize, usize)> = Vec::new();
    for func in &f.fns {
        let Some((open, close)) = func.body else {
            continue;
        };
        let mut nonhash: BTreeSet<&str> = BTreeSet::new();
        let mut hash: BTreeSet<&str> = BTreeSet::new();
        for i in func.sig_start..close {
            let t = &toks[i];
            if t.kind != TokKind::Ident || crate::source::is_keyword(&t.text) {
                continue;
            }
            if !toks.get(i + 1).is_some_and(|n| n.is_punct(":")) {
                continue;
            }
            let mut is_hash = false;
            for w in &toks[i + 2..(i + 14).min(toks.len())] {
                if w.is_punct(";") || w.is_punct(",") || w.is_punct("{") || w.is_punct("=") {
                    break;
                }
                if w.is_ident("HashMap") || w.is_ident("HashSet") {
                    is_hash = true;
                    break;
                }
            }
            if is_hash {
                hash.insert(&t.text);
            } else {
                nonhash.insert(&t.text);
            }
        }
        for n in nonhash.difference(&hash) {
            shadow.push(((*n).to_string(), open, close));
        }
    }

    // Flag enumerations of tainted names.
    for (i, t) in toks.iter().enumerate() {
        if f.test_mask[i] || t.kind != TokKind::Ident || !tainted.contains(&t.text) {
            continue;
        }
        if shadow
            .iter()
            .any(|(n, open, close)| *n == t.text && i > *open && i < *close)
        {
            continue;
        }
        // `name . iter_method (`
        let is_enum_call = toks.get(i + 1).is_some_and(|t| t.is_punct("."))
            && toks
                .get(i + 2)
                .is_some_and(|t| ITER_METHODS.contains(&t.text.as_str()))
            && toks.get(i + 3).is_some_and(|t| t.is_punct("("));
        // `for pat in [&[mut]] name {`
        let mut back = i;
        while back > 0 && (toks[back - 1].is_punct("&") || toks[back - 1].is_ident("mut")) {
            back -= 1;
        }
        let is_for_loop = back > 0
            && toks[back - 1].is_ident("in")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("{"));
        if !is_enum_call && !is_for_loop {
            continue;
        }
        if is_enum_call && statement_is_order_insensitive(toks, i + 3) {
            continue;
        }
        if is_enum_call && collected_then_sorted(toks, i) {
            continue;
        }
        out.push(Finding::new(
            Lint::UnorderedIter,
            &f.path,
            t.line,
            format!(
                "`{}` is hash-ordered; its iteration order can reach output — \
                 use a BTree collection, sort, or an order-insensitive sink",
                t.text
            ),
        ));
    }
}

/// The collect-then-sort idiom: the enumeration is bound by a `let` and
/// a following statement sorts the binding
/// (`let mut v: Vec<_> = m.keys().collect(); v.sort_unstable();`),
/// which re-establishes a canonical order before anything observes it.
fn collected_then_sorted(toks: &[crate::lex::Tok], at: usize) -> bool {
    // Statement start: walk back to the previous `;`, `{`, or `}`.
    let mut s = at;
    while s > 0 {
        let p = &toks[s - 1];
        if p.is_punct(";") || p.is_punct("{") || p.is_punct("}") {
            break;
        }
        s -= 1;
    }
    if !toks.get(s).is_some_and(|t| t.is_ident("let")) {
        return false;
    }
    let mut n = s + 1;
    if toks.get(n).is_some_and(|t| t.is_ident("mut")) {
        n += 1;
    }
    let Some(name) = toks.get(n) else {
        return false;
    };
    if name.kind != TokKind::Ident {
        return false;
    }
    // Statement end: first `;` at the statement's own depth.
    let mut depth = 0i64;
    let mut k = at;
    let end = loop {
        if k >= toks.len() {
            return false;
        }
        let t = &toks[k];
        if t.is_punct("(") || t.is_punct("{") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("}") || t.is_punct("]") {
            depth -= 1;
            if depth < 0 {
                return false;
            }
        } else if t.is_punct(";") && depth == 0 {
            break k;
        }
        k += 1;
    };
    // Look for `name . sort*` shortly after.
    for k in (end + 1)..(end + 60).min(toks.len().saturating_sub(2)) {
        if toks[k].is_ident(&name.text)
            && toks[k + 1].is_punct(".")
            && toks[k + 2].text.starts_with("sort")
        {
            return true;
        }
    }
    false
}

/// From the opening paren of the iter call, scan the rest of the
/// statement for an order-insensitive terminal sink or an
/// order-restoring `collect::<BTree..>()`.
fn statement_is_order_insensitive(toks: &[crate::lex::Tok], from: usize) -> bool {
    let mut depth = 0i64;
    let mut k = from;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct("(") || t.is_punct("{") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("}") || t.is_punct("]") {
            depth -= 1;
            if depth < 0 {
                return false;
            }
        } else if depth == 0 && t.is_punct(";") {
            return false;
        } else if t.is_punct(".") {
            if let Some(m) = toks.get(k + 1) {
                if ORDER_INSENSITIVE_SINKS.contains(&m.text.as_str()) {
                    return true;
                }
                if m.is_ident("collect") {
                    // `.collect::<Target>()` — look ahead for the target.
                    for w in &toks[k + 2..(k + 10).min(toks.len())] {
                        if w.is_punct("(") {
                            break;
                        }
                        if ORDERED_COLLECT_TARGETS.contains(&w.text.as_str()) {
                            return true;
                        }
                    }
                }
            }
        }
        k += 1;
    }
    false
}
