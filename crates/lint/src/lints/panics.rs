//! Panic-surface lints: unchecked indexing and bare counter arithmetic
//! in the protocol crates, where a panic means losing a server or
//! corrupting a replication epoch rather than failing one query.

use crate::lex::TokKind;
use crate::registry::{Finding, Lint};
use crate::source::{is_keyword, matching_brace_like, LintFile};

/// Crates where a panic is a protocol failure. The SQL engine returns
/// typed errors per statement and is covered by unchecked-protocol-arith
/// only.
const INDEX_SCOPE: &[&str] = &[
    "crates/core/",
    "crates/wal/",
    "crates/obs/",
    "crates/netsim/",
    "crates/prng/",
];

pub fn run(files: &[LintFile], out: &mut Vec<Finding>) {
    for f in files {
        if INDEX_SCOPE.iter().any(|p| f.path.starts_with(p)) {
            unchecked_index(f, out);
        }
        unchecked_protocol_arith(f, out);
    }
}

/// `expr[i]` / `expr[a..b]` with a non-literal index. Literal-only
/// indices and ranges (`buf[0]`, `&frame[4..]`) are in-bounds by
/// construction against checked lengths and stay allowed.
fn unchecked_index(f: &LintFile, out: &mut Vec<Finding>) {
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        if f.test_mask[i] || !t.is_punct("[") || i == 0 {
            continue;
        }
        let prev = &toks[i - 1];
        let indexable = match prev.kind {
            TokKind::Ident => !is_keyword(&prev.text),
            TokKind::Punct => prev.is_punct(")") || prev.is_punct("]"),
            _ => false,
        };
        if !indexable {
            continue;
        }
        let close = matching_brace_like(toks, i, "[", "]");
        let has_ident = toks[i + 1..close]
            .iter()
            .any(|t| t.kind == TokKind::Ident && !is_keyword(&t.text));
        if has_ident {
            out.push(Finding::new(
                Lint::UncheckedIndex,
                &f.path,
                t.line,
                "non-literal index/slice — prefer .get()/.get_mut() or a checked \
                 length guard with a lint:allow justification",
            ));
        }
    }
}

/// Identifier names whose arithmetic is protocol state.
fn is_protocol_counter(name: &str) -> bool {
    let n = name;
    n == "seq"
        || n == "epoch"
        || n == "version"
        || n == "token"
        || n == "next_seq"
        || n == "next_token"
        || n == "applied_seq"
        || n == "base_seq"
        || n == "promoted_seq"
        || n.ends_with("_seq")
        || n.ends_with("_epoch")
        || n.ends_with("_version")
        || n.ends_with("_token")
}

const ARITH_OPS: &[&str] = &["+", "-", "+=", "-="];

fn unchecked_protocol_arith(f: &LintFile, out: &mut Vec<Finding>) {
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        if f.test_mask[i] || t.kind != TokKind::Punct || !ARITH_OPS.contains(&t.text.as_str()) {
            continue;
        }
        let prev_hit =
            i > 0 && toks[i - 1].kind == TokKind::Ident && is_protocol_counter(&toks[i - 1].text);
        let next_hit = toks
            .get(i + 1)
            .is_some_and(|n| n.kind == TokKind::Ident && is_protocol_counter(&n.text));
        if prev_hit || next_hit {
            let name = if prev_hit {
                &toks[i - 1].text
            } else {
                &toks[i + 1].text
            };
            out.push(Finding::new(
                Lint::UncheckedProtocolArith,
                &f.path,
                t.line,
                format!(
                    "bare `{}` on protocol counter `{}` — use checked_/saturating_ \
                     arithmetic so overflow cannot corrupt ordering",
                    t.text, name
                ),
            ));
        }
    }
}
