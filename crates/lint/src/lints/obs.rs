//! Observability-closure lints: metric families and span kinds must be
//! members of closed registries, and timeout-shaped session errors must
//! carry a flight-recorder dump.

use crate::lex::TokKind;
use crate::registry::{Finding, Lint};
use crate::schema::Registries;
use crate::source::{matching_brace, matching_brace_like, LintFile};

pub fn run(files: &[LintFile], reg: &Registries, out: &mut Vec<Finding>) {
    for f in files {
        metric_families(f, reg, out);
        span_kinds(f, out);
        timeout_context(f, reg, out);
        orphan_span(f, out);
    }
}

const METRIC_METHODS: &[&str] = &["counter", "gauge", "histogram"];

/// `.counter("name")` / `.gauge(..)` / `.histogram(..)`: the name must
/// be a literal member of the closed family registry. Registration via
/// a non-literal defeats the closure property and is flagged as such.
fn metric_families(f: &LintFile, reg: &Registries, out: &mut Vec<Finding>) {
    if reg.metric_families.is_empty() || f.path.ends_with("crates/obs/src/metrics.rs") {
        return;
    }
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        if f.test_mask[i] || !t.is_punct(".") {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        if !METRIC_METHODS.contains(&m.text.as_str())
            || !toks.get(i + 2).is_some_and(|t| t.is_punct("("))
        {
            continue;
        }
        let Some(arg) = toks.get(i + 3) else { continue };
        match arg.kind {
            TokKind::Str => {
                if !reg.metric_families.contains(&arg.text) {
                    out.push(Finding::new(
                        Lint::MetricFamilyUnknown,
                        &f.path,
                        arg.line,
                        format!(
                            "metric \"{}\" is not in pdm_obs::metrics::families::ALL — \
                             add it to the closed registry or fix the name",
                            arg.text
                        ),
                    ));
                }
            }
            TokKind::Punct if arg.is_punct(")") => {}
            _ => {
                out.push(Finding::new(
                    Lint::MetricFamilyUnknown,
                    &f.path,
                    arg.line,
                    format!(
                        ".{}() called with a non-literal name — dynamic metric names \
                         defeat the closed family registry",
                        m.text
                    ),
                ));
            }
        }
    }
}

/// `SpanKind::new(..)` is only legal inside the `kinds` registry module
/// in crates/obs/src/span.rs.
fn span_kinds(f: &LintFile, out: &mut Vec<Finding>) {
    if f.path.ends_with("crates/obs/src/span.rs") {
        return;
    }
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        if f.test_mask[i] || !t.is_ident("SpanKind") {
            continue;
        }
        if toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("new"))
        {
            out.push(Finding::new(
                Lint::SpanKindUnregistered,
                &f.path,
                t.line,
                "SpanKind constructed outside the closed kinds registry in pdm-obs \
                 — register the kind there instead",
            ));
        }
    }
}

/// A function that closes spans directly (`.record_closed(..)`) without
/// referencing any trace context can never contribute to a causal tree:
/// the span carries no `v_s`/ids linkage and silently falls out of the
/// cross-site assembly (DESIGN.md §15). Direct closers must either thread
/// the propagated `ctx` or touch the per-action trace buffer (any
/// identifier containing "trace").
fn orphan_span(f: &LintFile, out: &mut Vec<Finding>) {
    if f.path.ends_with("crates/obs/src/span.rs") {
        return; // the recorder crate defines the primitive itself
    }
    for func in &f.fns {
        if func.is_test {
            continue;
        }
        let Some((open, close)) = func.body else {
            continue;
        };
        let body = &f.toks[open..=close];
        let mut call_line = None;
        for (k, t) in body.iter().enumerate() {
            if t.is_punct(".")
                && body.get(k + 1).is_some_and(|t| t.is_ident("record_closed"))
                && body.get(k + 2).is_some_and(|t| t.is_punct("("))
            {
                call_line = Some(body[k + 1].line);
                break;
            }
        }
        let Some(line) = call_line else { continue };
        let references_trace = f.toks[func.sig_start..=close].iter().any(|t| {
            t.kind == TokKind::Ident
                && (t.text == "ctx" || t.text.to_ascii_lowercase().contains("trace"))
        });
        if !references_trace {
            out.push(Finding::new(
                Lint::OrphanSpan,
                &f.path,
                line,
                format!(
                    "fn {} closes spans via record_closed but never references a trace \
                     context — its spans can never join a causal tree",
                    func.name
                ),
            ));
        }
    }
}

/// A construction `SessionError::<TimeoutShaped> { .. fields .. }` must
/// mention `context` (patterns are excused by the `..` rest syntax).
fn timeout_context(f: &LintFile, reg: &Registries, out: &mut Vec<Finding>) {
    if reg.timeout_variants.is_empty() {
        return;
    }
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        if f.test_mask[i] || !t.is_ident("SessionError") {
            continue;
        }
        let Some(v) = toks.get(i + 2) else { continue };
        if !toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            || !reg.timeout_variants.iter().any(|tv| v.is_ident(tv))
            || !toks.get(i + 3).is_some_and(|t| t.is_punct("{"))
        {
            continue;
        }
        let close = matching_brace(toks, i + 3);
        let body = &toks[i + 4..close];
        // Only inspect this construction's own depth-0 fields: nested
        // braces (e.g. a FlightDump construction) are skipped.
        let mut has_context = false;
        let mut has_rest = false;
        let mut d = 0i64;
        let mut k = 0usize;
        while k < body.len() {
            let b = &body[k];
            if b.is_punct("{") || b.is_punct("(") || b.is_punct("[") {
                d += 1;
                // Skip the nested region entirely.
                let open_txt = b.text.as_str();
                let close_txt = match open_txt {
                    "{" => "}",
                    "(" => ")",
                    _ => "]",
                };
                let end = matching_brace_like(&toks[i + 4..close], k, open_txt, close_txt);
                k = end;
                d -= 1;
            } else if d == 0 {
                if b.is_ident("context") {
                    has_context = true;
                }
                if b.is_punct("..") {
                    has_rest = true;
                }
            }
            k += 1;
        }
        if !has_context && !has_rest {
            out.push(Finding::new(
                Lint::TimeoutWithoutFlight,
                &f.path,
                v.line,
                format!(
                    "SessionError::{} built without FlightDump context — timeout-shaped \
                     errors must carry the flight recorder dump",
                    v.text
                ),
            ));
        }
    }
}
