//! Lock-discipline lints: a static lock-acquisition model built from
//! `lock_unpoisoned(&path)` / `path.lock()` sites, guard scopes recovered
//! from bindings and brace structure, and a name-based intra-workspace
//! call graph propagating may-acquire and may-reach-boundary sets.
//!
//! The model is deliberately conservative-but-honest: lock identity is
//! `defining-file + field name`, call edges resolve by bare function
//! name (so a call to `.len()` reaches every workspace `fn len`), and
//! guard scopes over-extend to the enclosing block. Findings that the
//! design intends (fsync under the commit gate) carry `lint:allow`
//! markers with the architectural justification.

use std::collections::{BTreeMap, BTreeSet};

use crate::lex::{Tok, TokKind};
use crate::registry::{Finding, Lint};
use crate::source::{is_keyword, LintFile};

/// Functions whose bodies ARE the generic locking mechanism; their
/// internal `m.lock()` is not an acquisition of a nameable lock.
const LOCK_HELPERS: &[&str] = &["lock_unpoisoned", "lock"];

/// Calls that cross a network or durability boundary. Transitive
/// callers inherit the property through the call graph.
const BOUNDARY_BASE: &[&str] = &[
    "try_send_request",
    "try_receive_response",
    "exchange",
    "receive_ship",
    "ship_batch",
    "sync",
    "fsync",
];

/// Method names so ubiquitous on std collections that a name-based call
/// edge would almost always resolve to the wrong function (a `.push()`
/// on a Vec is not a call to some workspace `fn push`). Calls to these
/// names contribute no call-graph edges; the cost is that a workspace
/// function hiding lock acquisition behind such a name goes unseen —
/// an accepted trade for a cycle detector with no fabricated edges.
const CALL_DENYLIST: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "len",
    "is_empty",
    "clear",
    "contains",
    "contains_key",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "keys",
    "values",
    "values_mut",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "map_err",
    "and_then",
    "filter",
    "fold",
    "any",
    "all",
    "count",
    "position",
    "find",
    "chain",
    "zip",
    "rev",
    "enumerate",
    "flat_map",
    "copied",
    "cloned",
    "sum",
    "last",
    "first",
    "min",
    "max",
    "collect",
    "extend",
    "retain",
    "drain",
    "sort",
    "sort_by",
    "sort_by_key",
    "split_off",
    "take",
    "replace",
    "swap",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "ok_or",
    "ok_or_else",
    "ok",
    "err",
    "clone",
    "to_vec",
    "to_string",
    "into",
    "from",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "as_bytes",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "starts_with",
    "ends_with",
    "trim",
    "split",
    "join",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "new",
    "with_capacity",
    "wrapping_add",
    "saturating_add",
    "checked_add",
    "saturating_sub",
    "checked_sub",
    "min_by_key",
    "max_by_key",
    "abs",
    "format",
    "write",
    "to_owned",
    "into_inner",
    "notify_all",
    "notify_one",
    "wait",
    "wait_timeout",
    "load",
    "store",
    "fetch_add",
    "elapsed",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
];

/// One lock acquisition with its recovered guard scope (token indices
/// within the owning file).
#[derive(Debug)]
struct Acq {
    lock: String,
    tok: usize,
    line: u32,
    scope_end: usize,
}

/// One analyzed function.
#[derive(Debug)]
struct FnModel {
    file: usize,
    name: String,
    acqs: Vec<Acq>,
    /// (callee name, token index, line)
    calls: Vec<(String, usize, u32)>,
}

pub fn run(files: &[LintFile], out: &mut Vec<Finding>) {
    scan_unbounded_waits(files, out);
    let models = build_models(files);

    // Direct lock sets and the call graph, merged by function name.
    let mut direct: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut callees: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for m in &models {
        let d = direct.entry(&m.name).or_default();
        for a in &m.acqs {
            d.insert(&a.lock);
        }
        let c = callees.entry(&m.name).or_default();
        for (callee, _, _) in &m.calls {
            c.insert(callee);
        }
    }

    // may_acquire fixpoint: locks a call to `name` may take, transitively.
    let mut may: BTreeMap<&str, BTreeSet<&str>> = direct.clone();
    loop {
        let mut grew = false;
        let snapshot = may.clone();
        for (name, cs) in &callees {
            let mut acc = snapshot.get(name).cloned().unwrap_or_default();
            for c in cs {
                if let Some(s) = snapshot.get(c) {
                    acc.extend(s.iter().copied());
                }
            }
            if acc.len() > may.get(name).map_or(0, |s| s.len()) {
                may.insert(name, acc);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // boundary-reaching fixpoint.
    let mut boundary: BTreeSet<&str> = BOUNDARY_BASE.iter().copied().collect();
    loop {
        let mut grew = false;
        for (name, cs) in &callees {
            if !boundary.contains(name) && cs.iter().any(|c| boundary.contains(c)) {
                boundary.insert(name);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // Lock-order edges and in-scope checks.
    let mut edges: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut edge_site: BTreeMap<(String, String), String> = BTreeMap::new();
    for m in &models {
        let f = &files[m.file];
        for a in &m.acqs {
            // Direct nested acquisitions within the guard scope.
            for b in &m.acqs {
                if b.tok <= a.tok || b.tok > a.scope_end {
                    continue;
                }
                if b.lock == a.lock {
                    out.push(Finding::new(
                        Lint::NestedLockReacquire,
                        &f.path,
                        b.line,
                        format!(
                            "`{}` re-acquired at line {} while the guard taken at line {} \
                             is live — std::sync::Mutex self-deadlocks",
                            a.lock, b.line, a.line
                        ),
                    ));
                } else {
                    edges
                        .entry(a.lock.clone())
                        .or_default()
                        .insert(b.lock.clone());
                    edge_site
                        .entry((a.lock.clone(), b.lock.clone()))
                        .or_insert_with(|| format!("{}:{} (fn {})", f.path, b.line, m.name));
                }
            }
            // Calls inside the guard scope: lock edges via may-acquire,
            // boundary crossings via the boundary set.
            for (callee, tok, line) in &m.calls {
                if *tok <= a.tok || *tok > a.scope_end {
                    continue;
                }
                // A call bearing the enclosing function's own name is
                // almost always a same-named method on a child value
                // (`fn snapshot` calling `histogram.snapshot()`), which
                // name merging would turn into false recursion edges.
                if *callee == m.name {
                    continue;
                }
                if let Some(locks) = may.get(callee.as_str()) {
                    for l in locks {
                        if *l != a.lock {
                            edges
                                .entry(a.lock.clone())
                                .or_default()
                                .insert((*l).to_string());
                            edge_site
                                .entry((a.lock.clone(), (*l).to_string()))
                                .or_insert_with(|| {
                                    format!(
                                        "{}:{} (call to {} in fn {})",
                                        f.path, line, callee, m.name
                                    )
                                });
                        }
                    }
                }
                if boundary.contains(callee.as_str()) {
                    out.push(Finding::new(
                        Lint::LockAcrossBoundary,
                        &f.path,
                        a.line,
                        format!(
                            "guard for `{}` (taken at line {}) is held across boundary \
                             call `{}` at line {}",
                            a.lock, a.line, callee, line
                        ),
                    ));
                }
            }
        }
    }

    if let Some(cycle) = find_cycle(&edges) {
        let sites: Vec<String> = cycle
            .windows(2)
            .filter_map(|w| edge_site.get(&(w[0].clone(), w[1].clone())).cloned())
            .collect();
        // Anchor the finding at the first edge's site (file:line).
        let (file, line) = sites
            .first()
            .and_then(|s| {
                let mut it = s.split(':');
                let f = it.next()?.to_string();
                let l = it.next()?.parse().ok()?;
                Some((f, l))
            })
            .unwrap_or_else(|| ("workspace".to_string(), 0));
        out.push(Finding::new(
            Lint::LockOrderCycle,
            &file,
            line,
            format!(
                "lock-order cycle {}; edges observed at [{}]",
                cycle.join(" -> "),
                sites.join("; ")
            ),
        ));
    }
}

/// Deterministic cycle finder over an adjacency map. Returns a closed
/// path `[a, b, .., a]` if the graph has a cycle. Public so the
/// property tests can pit it against a reference detector.
pub fn find_cycle(graph: &BTreeMap<String, BTreeSet<String>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut nodes: BTreeSet<&String> = graph.keys().collect();
    for vs in graph.values() {
        nodes.extend(vs.iter());
    }
    let mut color: BTreeMap<&String, Color> = nodes.iter().map(|n| (*n, Color::White)).collect();

    fn dfs<'a>(
        n: &'a String,
        graph: &'a BTreeMap<String, BTreeSet<String>>,
        color: &mut BTreeMap<&'a String, Color>,
        stack: &mut Vec<&'a String>,
    ) -> Option<Vec<String>> {
        color.insert(n, Color::Gray);
        stack.push(n);
        if let Some(next) = graph.get(n) {
            for m in next {
                match color.get(m).copied().unwrap_or(Color::White) {
                    Color::Gray => {
                        let start = stack.iter().position(|s| *s == m).unwrap_or(0);
                        let mut cycle: Vec<String> =
                            stack[start..].iter().map(|s| (*s).clone()).collect();
                        cycle.push(m.clone());
                        return Some(cycle);
                    }
                    Color::White => {
                        if let Some(c) = dfs(m, graph, color, stack) {
                            return Some(c);
                        }
                    }
                    Color::Black => {}
                }
            }
        }
        stack.pop();
        color.insert(n, Color::Black);
        None
    }

    let keys: Vec<&String> = nodes.iter().copied().collect();
    for n in keys {
        if color.get(n) == Some(&Color::White) {
            let mut stack = Vec::new();
            if let Some(c) = dfs(n, graph, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}

/// Flag bare `Condvar::wait` calls. The receiver is judged by name: an
/// ident containing `cv` or `cond` is a condition variable (the
/// workspace convention — `sf_cv`, `queue_cv`, `cond`); `barrier.wait()`
/// and the netsim `channel.wait(seconds)` pass untouched. Bare waits
/// block forever, so a deadline or shutdown cannot interrupt them —
/// every condvar wait must be a `wait_timeout` slice re-checked in a
/// loop (DESIGN.md §14: no unbounded blocking point).
fn scan_unbounded_waits(files: &[LintFile], out: &mut Vec<Finding>) {
    for f in files {
        for func in &f.fns {
            if func.is_test {
                continue;
            }
            let Some((open, close)) = func.body else {
                continue;
            };
            let toks = &f.toks;
            for i in open + 1..close.saturating_sub(2) {
                if !(toks[i].is_punct(".")
                    && toks[i + 1].is_ident("wait")
                    && toks[i + 2].is_punct("("))
                {
                    continue;
                }
                let recv = &toks[i - 1];
                if recv.kind != TokKind::Ident {
                    continue;
                }
                let name = recv.text.to_ascii_lowercase();
                if name.contains("cv") || name.contains("cond") {
                    out.push(Finding::new(
                        Lint::UnboundedWait,
                        &f.path,
                        toks[i + 1].line,
                        format!(
                            "bare `{}.wait(..)` blocks without a deadline; use a \
                             `wait_timeout` slice re-checked in a loop",
                            recv.text
                        ),
                    ));
                }
            }
        }
    }
}

/// Short lock-id prefix for a file path: `crates/core/src/shared.rs`
/// becomes `core/shared.rs`.
fn file_short(path: &str) -> String {
    let p = path.strip_prefix("crates/").unwrap_or(path);
    p.replace("/src/", "/")
}

fn build_models(files: &[LintFile]) -> Vec<FnModel> {
    let mut models = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        let short = file_short(&f.path);
        for func in &f.fns {
            if func.is_test || LOCK_HELPERS.contains(&func.name.as_str()) {
                continue;
            }
            let Some((open, close)) = func.body else {
                continue;
            };
            let toks = &f.toks;
            // Brace depth per token within the body, relative to `open`.
            let mut depth = vec![0i64; close + 1 - open];
            let mut d = 0i64;
            for (k, slot) in depth.iter_mut().enumerate() {
                let t = &toks[open + k];
                if t.is_punct("{") {
                    d += 1;
                }
                *slot = d;
                if t.is_punct("}") {
                    d -= 1;
                }
            }
            let depth_at = |idx: usize| depth[idx - open];

            let mut acqs = Vec::new();
            let mut calls = Vec::new();
            let mut i = open + 1;
            while i < close {
                let t = &toks[i];
                // Acquisition: bare helper call `lock_unpoisoned(&path)` /
                // `lock(&path)`.
                let bare_helper = t.kind == TokKind::Ident
                    && LOCK_HELPERS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
                    && !toks[i - 1].is_punct(".")
                    && !toks[i - 1].is_ident("fn");
                // Acquisition: method call `path.lock()`.
                let method_lock = t.is_punct(".")
                    && toks.get(i + 1).is_some_and(|t| t.is_ident("lock"))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct("("));
                if bare_helper || method_lock {
                    let (name, expr_start) = if bare_helper {
                        let end = crate::source::matching_brace_like(toks, i + 1, "(", ")");
                        let mut last = None;
                        for w in &toks[i + 2..end] {
                            if w.kind == TokKind::Ident && !is_keyword(&w.text) {
                                last = Some(w.text.clone());
                            }
                        }
                        (last.unwrap_or_else(|| "anon".into()), i)
                    } else {
                        // Walk the receiver path back to its start.
                        let mut s = i;
                        while s > open + 1 {
                            let p = &toks[s - 1];
                            let part_of_path = p.kind == TokKind::Ident
                                || p.is_punct(".")
                                || p.is_punct("::")
                                || p.is_punct("&");
                            if part_of_path
                                && !(p.kind == TokKind::Ident
                                    && is_keyword(&p.text)
                                    && !p.is_ident("self"))
                            {
                                s -= 1;
                            } else {
                                break;
                            }
                        }
                        let name = if toks[i - 1].kind == TokKind::Ident {
                            toks[i - 1].text.clone()
                        } else {
                            "anon".into()
                        };
                        (name, s)
                    };
                    let lock = format!("{short}#{name}");
                    let line = toks[i].line;
                    let scope_end = guard_scope_end(toks, open, close, expr_start, i, &depth_at);
                    acqs.push(Acq {
                        lock,
                        tok: i,
                        line,
                        scope_end,
                    });
                    i += if bare_helper { 2 } else { 3 };
                    continue;
                }
                // Call: `name (` — both free calls and method calls.
                if t.kind == TokKind::Ident
                    && !is_keyword(&t.text)
                    && !CALL_DENYLIST.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
                {
                    calls.push((t.text.clone(), i, t.line));
                }
                i += 1;
            }
            models.push(FnModel {
                file: fi,
                name: func.name.clone(),
                acqs,
                calls,
            });
        }
    }
    models
}

/// Recover the guard's scope end (token index). A `let`-bound guard
/// lives to the end of its enclosing block or an explicit `drop(name)`;
/// a temporary lives to the end of its statement.
fn guard_scope_end(
    toks: &[Tok],
    open: usize,
    close: usize,
    expr_start: usize,
    _acq: usize,
    depth_at: &dyn Fn(usize) -> i64,
) -> usize {
    // `let [mut] NAME = <expr..>`?
    let mut binding: Option<&str> = None;
    if expr_start >= open + 3 && toks[expr_start - 1].is_punct("=") {
        let mut n = expr_start - 2;
        if toks[n].kind == TokKind::Ident && !is_keyword(&toks[n].text) {
            let name_idx = n;
            if n >= 1 && toks[n - 1].is_ident("mut") {
                n -= 1;
            }
            if n >= 1 && toks[n - 1].is_ident("let") {
                binding = Some(&toks[name_idx].text);
            }
        }
    }
    match binding {
        Some(name) => {
            let here = depth_at(expr_start);
            let mut k = expr_start + 1;
            while k < close {
                if depth_at(k) < here {
                    return k;
                }
                // Explicit `drop(name)`.
                if toks[k].is_ident("drop")
                    && toks.get(k + 1).is_some_and(|t| t.is_punct("("))
                    && toks.get(k + 2).is_some_and(|t| t.is_ident(name))
                    && toks.get(k + 3).is_some_and(|t| t.is_punct(")"))
                {
                    return k;
                }
                k += 1;
            }
            close
        }
        None => {
            // Temporary: to the end of the statement at this depth.
            let here = depth_at(expr_start);
            let mut k = expr_start + 1;
            while k < close {
                if toks[k].is_punct(";") && depth_at(k) <= here {
                    return k;
                }
                if depth_at(k) < here {
                    return k;
                }
                k += 1;
            }
            close
        }
    }
}
