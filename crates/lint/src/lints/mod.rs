//! The lint passes, one module per family.

pub mod determinism;
pub mod locks;
pub mod obs;
pub mod panics;
pub mod replay;
