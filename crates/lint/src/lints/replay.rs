//! Replay-exhaustiveness lints: every `match` over `WalRecord` must name
//! every variant with no catch-all arm (a new record type must fail to
//! compile at every replay site, not silently skip), and every function
//! that applies shipped records must fence its epoch argument.

use std::collections::BTreeSet;

use crate::lex::{Tok, TokKind};
use crate::registry::{Finding, Lint};
use crate::schema::Registries;
use crate::source::{matching_brace, LintFile};

pub fn run(files: &[LintFile], reg: &Registries, out: &mut Vec<Finding>) {
    for f in files {
        wal_matches(f, reg, out);
    }
    unfenced_apply(files, out);
}

/// Scan every non-test `match` body; if any arm pattern mentions
/// `WalRecord ::`, the match is a replay site and gets both checks.
fn wal_matches(f: &LintFile, reg: &Registries, out: &mut Vec<Finding>) {
    let toks = &f.toks;
    for (i, t) in toks.iter().enumerate() {
        if f.test_mask[i] || !t.is_ident("match") {
            continue;
        }
        // The match body is the next `{` at scrutinee depth zero.
        let mut open = i + 1;
        let mut d = 0i64;
        while open < toks.len() {
            let t = &toks[open];
            if t.is_punct("(") || t.is_punct("[") {
                d += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                d -= 1;
            } else if t.is_punct("{") && d == 0 {
                break;
            } else if t.is_punct(";") && d == 0 {
                // `match` used as an identifier-ish fragment; bail.
                open = toks.len();
            }
            open += 1;
        }
        if open >= toks.len() {
            continue;
        }
        let close = matching_brace(toks, open);
        let arms = split_arms(toks, open, close);
        let mentions_wal = arms
            .iter()
            .any(|(ps, pe, _)| range_has_path(toks, *ps, *pe, "WalRecord"));
        if !mentions_wal {
            continue;
        }
        let mut named: BTreeSet<String> = BTreeSet::new();
        for (ps, pe, _) in &arms {
            // Variants named via `WalRecord :: X`.
            let mut k = *ps;
            while k + 2 <= *pe {
                if toks[k].is_ident("WalRecord")
                    && toks[k + 1].is_punct("::")
                    && toks[k + 2].kind == TokKind::Ident
                {
                    named.insert(toks[k + 2].text.clone());
                }
                k += 1;
            }
            // Catch-all: a pattern that is a single bare identifier
            // (`_` or a binding) at top level.
            let top: Vec<&Tok> = toks[*ps..=*pe].iter().collect();
            if top.len() == 1 && top[0].kind == TokKind::Ident {
                out.push(Finding::new(
                    Lint::ReplayCatchall,
                    &f.path,
                    top[0].line,
                    format!(
                        "catch-all arm `{}` in a WalRecord match — a new record type \
                         would silently skip replay here",
                        top[0].text
                    ),
                ));
            }
        }
        if !reg.wal_variants.is_empty() {
            let missing: Vec<&String> = reg
                .wal_variants
                .iter()
                .filter(|v| !named.contains(*v))
                .collect();
            if !missing.is_empty() && !named.is_empty() {
                let line = toks[i].line;
                out.push(Finding::new(
                    Lint::ReplayMissingVariant,
                    &f.path,
                    line,
                    format!(
                        "WalRecord match does not name {}",
                        missing
                            .iter()
                            .map(|v| v.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                ));
            }
        }
    }
}

/// Split a match body into arms: `(pattern_start, pattern_end, body_end)`
/// token ranges. The pattern runs to the `=>` at arm depth.
fn split_arms(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize, usize)> {
    let mut arms = Vec::new();
    let mut i = open + 1;
    while i < close {
        let ps = i;
        // Find `=>` at depth 0 relative to the arm.
        let mut d = 0i64;
        let mut arrow = None;
        let mut k = i;
        while k < close {
            let t = &toks[k];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                d += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                d -= 1;
            } else if t.is_punct("=>") && d == 0 {
                arrow = Some(k);
                break;
            }
            k += 1;
        }
        let Some(arrow) = arrow else { break };
        if arrow == ps {
            break;
        }
        // Body: a block to its matching brace, or an expression to the
        // `,` at depth 0.
        let body_end;
        if toks.get(arrow + 1).is_some_and(|t| t.is_punct("{")) {
            body_end = matching_brace(toks, arrow + 1);
        } else {
            let mut d = 0i64;
            let mut k = arrow + 1;
            loop {
                if k >= close {
                    k = close - 1;
                    break;
                }
                let t = &toks[k];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    d += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    d -= 1;
                } else if t.is_punct(",") && d == 0 {
                    break;
                }
                k += 1;
            }
            body_end = k;
        }
        arms.push((ps, arrow - 1, body_end));
        i = body_end + 1;
        // Skip a trailing comma after a block body.
        if toks.get(i).is_some_and(|t| t.is_punct(",")) {
            i += 1;
        }
    }
    arms
}

fn range_has_path(toks: &[Tok], start: usize, end: usize, ident: &str) -> bool {
    toks[start..=end.min(toks.len() - 1)]
        .iter()
        .any(|t| t.is_ident(ident))
}

/// Record-applying functions must fence their `epoch` parameter: compare
/// it, or pass it to a function that does (propagated to fixpoint).
fn unfenced_apply(files: &[LintFile], out: &mut Vec<Finding>) {
    struct Candidate<'a> {
        file: &'a LintFile,
        name: String,
        line: u32,
        applies_records: bool,
        compares: bool,
        /// Callees that receive the epoch argument.
        epoch_callees: Vec<String>,
    }

    const COMPARISONS: &[&str] = &["==", "!=", "<", ">", "<=", ">="];
    let mut cands: Vec<Candidate> = Vec::new();
    for f in files {
        for func in &f.fns {
            if func.is_test || !func.params.iter().any(|p| p == "epoch") {
                continue;
            }
            let Some((open, close)) = func.body else {
                continue;
            };
            let toks = &f.toks;
            let mut applies = false;
            let mut compares = false;
            let mut epoch_callees = Vec::new();
            for k in (open + 1)..close {
                let t = &toks[k];
                if t.is_ident("record") || t.is_ident("records") || t.is_ident("WalRecord") {
                    applies = true;
                }
                if t.is_ident("epoch") {
                    let prev = &toks[k - 1];
                    let next = toks.get(k + 1);
                    if COMPARISONS.contains(&prev.text.as_str())
                        || next.is_some_and(|n| COMPARISONS.contains(&n.text.as_str()))
                    {
                        compares = true;
                    }
                }
                // `callee ( .. epoch .. )` — epoch forwarded.
                if t.kind == TokKind::Ident && toks.get(k + 1).is_some_and(|t| t.is_punct("(")) {
                    let end = crate::source::matching_brace_like(toks, k + 1, "(", ")");
                    if toks[k + 2..end].iter().any(|a| a.is_ident("epoch")) {
                        epoch_callees.push(t.text.clone());
                    }
                }
            }
            cands.push(Candidate {
                file: f,
                name: func.name.clone(),
                line: func.line,
                applies_records: applies,
                compares,
                epoch_callees,
            });
        }
    }

    // Fenced fixpoint: compares directly, or forwards epoch to a fenced fn.
    let mut fenced: BTreeSet<String> = cands
        .iter()
        .filter(|c| c.compares)
        .map(|c| c.name.clone())
        .collect();
    loop {
        let mut grew = false;
        for c in &cands {
            if !fenced.contains(&c.name) && c.epoch_callees.iter().any(|e| fenced.contains(e)) {
                fenced.insert(c.name.clone());
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    for c in &cands {
        if c.applies_records && !fenced.contains(&c.name) {
            out.push(Finding::new(
                Lint::UnfencedApply,
                &c.file.path,
                c.line,
                format!(
                    "fn {} applies records but never compares its epoch argument \
                     (directly or via a fenced callee) — a deposed primary could roll \
                     back this site",
                    c.name
                ),
            ));
        }
    }
}
