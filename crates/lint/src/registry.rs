//! The lint registry and finding report, mirroring the diagnostics model
//! of `pdm_analyze::diag` (same severity scale, same JSON object shape)
//! so the combined `pdm-audit` output is uniform across the SQL-level
//! and source-level analyzers.

use pdm_analyze::diag::{json_escape, Severity};

/// The five lint families. Every lint belongs to exactly one; the
/// `allow-hygiene` policy lint rides in `Policy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    Determinism,
    LockDiscipline,
    Replay,
    Observability,
    PanicSurface,
    Policy,
}

impl Family {
    pub fn name(&self) -> &'static str {
        match self {
            Family::Determinism => "determinism",
            Family::LockDiscipline => "lock-discipline",
            Family::Replay => "replay",
            Family::Observability => "observability",
            Family::PanicSurface => "panic-surface",
            Family::Policy => "policy",
        }
    }
}

/// Every lint the analyzer can raise. Adding a variant here without a
/// fixture pair makes the meta-test fail — see `tests/meta.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lint {
    /// `Instant::now()` / `SystemTime::now()` on a linted path without a
    /// `lint:allow(wall-clock)` justification. The virtual clock is the
    /// only measured-time authority (DESIGN.md §2).
    WallClock,
    /// Ambient randomness (`thread_rng`, `RandomState`, entropy seeding):
    /// all randomness must flow from a seeded `pdm_prng::Prng`.
    AmbientRandomness,
    /// Iterating a `HashMap`/`HashSet` whose order can reach serialized
    /// output, WAL content, or metrics without an order-insensitive sink.
    UnorderedIter,
    /// A cycle in the static lock-acquisition order graph.
    LockOrderCycle,
    /// A mutex guard held across a network/durability boundary call
    /// (`exchange`, ship, `sync`/fsync) — latency under a lock.
    LockAcrossBoundary,
    /// Re-acquiring a lock while a guard for the same lock is live in
    /// the same function — self-deadlock with `std::sync::Mutex`.
    NestedLockReacquire,
    /// A bare `Condvar::wait` on a condition variable: waits must be
    /// sliced with `wait_timeout` so deadlines and shutdown can
    /// interrupt them (the overload layer's no-unbounded-block rule).
    UnboundedWait,
    /// A `match` over `WalRecord` with a wildcard/binding catch-all arm:
    /// new record types would silently skip replay.
    ReplayCatchall,
    /// A `match` over `WalRecord` that names only a subset of variants
    /// (reachable today only via nested patterns; kept as a backstop).
    ReplayMissingVariant,
    /// A function that applies shipped records but never compares its
    /// `epoch` argument (directly or via a fenced callee).
    UnfencedApply,
    /// A metric registered under a family name absent from the closed
    /// registry `pdm_obs::metrics::families::ALL`.
    MetricFamilyUnknown,
    /// A `SpanKind` constructed outside the closed `kinds` registry.
    SpanKindUnregistered,
    /// A timeout-shaped `SessionError` built without `FlightDump`
    /// context.
    TimeoutWithoutFlight,
    /// A function that closes spans directly (`.record_closed(..)`)
    /// without referencing any trace context — its spans can never join
    /// a causal tree (DESIGN.md §15).
    OrphanSpan,
    /// Indexing/slicing with a non-literal index in protocol crates.
    UncheckedIndex,
    /// Bare `+`/`-` arithmetic on sequence/epoch/version/token counters.
    UncheckedProtocolArith,
    /// An allow marker that is malformed, reasonless, or suppresses
    /// nothing.
    AllowHygiene,
}

impl Lint {
    pub const ALL: &'static [Lint] = &[
        Lint::WallClock,
        Lint::AmbientRandomness,
        Lint::UnorderedIter,
        Lint::LockOrderCycle,
        Lint::LockAcrossBoundary,
        Lint::NestedLockReacquire,
        Lint::UnboundedWait,
        Lint::ReplayCatchall,
        Lint::ReplayMissingVariant,
        Lint::UnfencedApply,
        Lint::MetricFamilyUnknown,
        Lint::SpanKindUnregistered,
        Lint::TimeoutWithoutFlight,
        Lint::OrphanSpan,
        Lint::UncheckedIndex,
        Lint::UncheckedProtocolArith,
        Lint::AllowHygiene,
    ];

    pub fn id(&self) -> &'static str {
        match self {
            Lint::WallClock => "wall-clock",
            Lint::AmbientRandomness => "ambient-randomness",
            Lint::UnorderedIter => "unordered-iter",
            Lint::LockOrderCycle => "lock-order-cycle",
            Lint::LockAcrossBoundary => "lock-across-boundary",
            Lint::NestedLockReacquire => "nested-lock-reacquire",
            Lint::UnboundedWait => "unbounded-wait",
            Lint::ReplayCatchall => "replay-catchall",
            Lint::ReplayMissingVariant => "replay-missing-variant",
            Lint::UnfencedApply => "unfenced-apply",
            Lint::MetricFamilyUnknown => "metric-family-unknown",
            Lint::SpanKindUnregistered => "span-kind-unregistered",
            Lint::TimeoutWithoutFlight => "timeout-without-flight",
            Lint::OrphanSpan => "orphan-span",
            Lint::UncheckedIndex => "unchecked-index",
            Lint::UncheckedProtocolArith => "unchecked-protocol-arith",
            Lint::AllowHygiene => "allow-hygiene",
        }
    }

    pub fn family(&self) -> Family {
        match self {
            Lint::WallClock | Lint::AmbientRandomness | Lint::UnorderedIter => Family::Determinism,
            Lint::LockOrderCycle
            | Lint::LockAcrossBoundary
            | Lint::NestedLockReacquire
            | Lint::UnboundedWait => Family::LockDiscipline,
            Lint::ReplayCatchall | Lint::ReplayMissingVariant | Lint::UnfencedApply => {
                Family::Replay
            }
            Lint::MetricFamilyUnknown
            | Lint::SpanKindUnregistered
            | Lint::TimeoutWithoutFlight
            | Lint::OrphanSpan => Family::Observability,
            Lint::UncheckedIndex | Lint::UncheckedProtocolArith => Family::PanicSurface,
            Lint::AllowHygiene => Family::Policy,
        }
    }

    pub fn severity(&self) -> Severity {
        match self {
            Lint::UncheckedIndex => Severity::Warning,
            _ => Severity::Error,
        }
    }

    pub fn description(&self) -> &'static str {
        match self {
            Lint::WallClock => {
                "wall-clock reads (Instant/SystemTime::now) outside annotated advisory sites"
            }
            Lint::AmbientRandomness => {
                "ambient randomness; all randomness must flow from a seeded pdm_prng::Prng"
            }
            Lint::UnorderedIter => {
                "HashMap/HashSet iteration whose order can reach serialized output"
            }
            Lint::LockOrderCycle => "cycle in the static lock-acquisition order graph",
            Lint::LockAcrossBoundary => {
                "mutex guard held across a network or durability boundary call"
            }
            Lint::NestedLockReacquire => {
                "re-acquiring a std::sync::Mutex while its guard is live (self-deadlock)"
            }
            Lint::UnboundedWait => {
                "bare Condvar::wait; waits must be wait_timeout slices so deadlines can interrupt"
            }
            Lint::ReplayCatchall => "wildcard arm in a WalRecord replay match",
            Lint::ReplayMissingVariant => "WalRecord replay match does not name every variant",
            Lint::UnfencedApply => "record-applying function never compares its epoch argument",
            Lint::MetricFamilyUnknown => {
                "metric name not in the closed pdm_obs::metrics::families registry"
            }
            Lint::SpanKindUnregistered => "SpanKind constructed outside the closed kinds registry",
            Lint::TimeoutWithoutFlight => {
                "timeout-shaped SessionError built without FlightDump context"
            }
            Lint::OrphanSpan => {
                "record_closed caller never references a trace context; spans cannot join a causal tree"
            }
            Lint::UncheckedIndex => "non-literal indexing/slicing in protocol crates",
            Lint::UncheckedProtocolArith => {
                "bare +/- arithmetic on seq/epoch/version/token counters"
            }
            Lint::AllowHygiene => "allow marker is malformed, reasonless, or suppresses nothing",
        }
    }

    pub fn from_id(id: &str) -> Option<Lint> {
        Lint::ALL.iter().copied().find(|l| l.id() == id)
    }
}

/// One finding at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: Lint,
    pub message: String,
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
}

impl Finding {
    pub fn new(lint: Lint, file: &str, line: u32, message: impl Into<String>) -> Finding {
        Finding {
            lint,
            message: message.into(),
            file: file.to_string(),
            line,
        }
    }

    pub fn location(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

/// The report produced by a lint run, after allow-marker suppression.
#[derive(Debug, Default)]
pub struct LintReport {
    pub findings: Vec<Finding>,
    /// Number of raw findings silenced by valid allow markers.
    pub suppressed: usize,
    /// Number of files analyzed.
    pub files: usize,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    pub fn flags(&self, lint: Lint) -> bool {
        self.findings.iter().any(|f| f.lint == lint)
    }

    pub fn count(&self, lint: Lint) -> usize {
        self.findings.iter().filter(|f| f.lint == lint).count()
    }

    pub fn has_errors(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.lint.severity() == Severity::Error)
    }

    /// JSON rendering; each finding object matches pdm-analyze's shape
    /// (`check`/`severity`/`message`/`location`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files\": {},\n", self.files));
        out.push_str(&format!("  \"suppressed\": {},\n", self.suppressed));
        out.push_str(&format!("  \"total\": {},\n", self.findings.len()));
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"check\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\", \"location\": \"{}\"}}{}\n",
                f.lint.id(),
                f.lint.severity(),
                json_escape(&f.message),
                json_escape(&f.location()),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_ids_are_unique_and_kebab_case() {
        let mut seen = std::collections::BTreeSet::new();
        for lint in Lint::ALL {
            let id = lint.id();
            assert!(seen.insert(id), "duplicate lint id {id}");
            assert!(
                id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "id {id} is not kebab-case"
            );
            assert!(!lint.description().is_empty());
            assert_eq!(Lint::from_id(id), Some(*lint));
        }
    }

    #[test]
    fn every_family_has_at_least_one_lint() {
        for fam in [
            Family::Determinism,
            Family::LockDiscipline,
            Family::Replay,
            Family::Observability,
            Family::PanicSurface,
            Family::Policy,
        ] {
            assert!(
                Lint::ALL.iter().any(|l| l.family() == fam),
                "family {} has no lints",
                fam.name()
            );
        }
    }

    #[test]
    fn report_json_shape_matches_analyze() {
        let mut r = LintReport::default();
        r.findings
            .push(Finding::new(Lint::WallClock, "a.rs", 3, "msg \"quoted\""));
        let json = r.to_json();
        assert!(json.contains("\"check\": \"wall-clock\""));
        assert!(json.contains("\"severity\": \"error\""));
        assert!(json.contains("\"location\": \"a.rs:3\""));
        assert!(json.contains("msg \\\"quoted\\\""));
    }
}
