#![cfg_attr(test, allow(clippy::unwrap_used))]
//! pdm-lint: workspace-wide protocol-invariant static analyzer.
//!
//! Where `pdm-analyze` audits the *SQL corpus* against the paper's
//! tuning rules, this crate audits the *Rust source* against the
//! simulator's own protocol invariants — the properties every other
//! test suite assumes but nothing enforced statically:
//!
//! - **determinism**: no wall clock, no ambient randomness, no hash
//!   iteration order reaching serialized output;
//! - **lock discipline**: acyclic lock-acquisition order, no guard held
//!   across network/durability boundaries, no self-reacquire;
//! - **replay exhaustiveness**: every `WalRecord` match names every
//!   variant; record-applying functions fence their epoch;
//! - **observability closure**: metric families and span kinds are
//!   members of closed registries; timeout-shaped errors carry flight
//!   dumps;
//! - **panic surface**: no unchecked indexing or bare counter
//!   arithmetic in protocol crates.
//!
//! The analyzer is token-level (a hand-rolled lexer plus structural
//! recovery — no external parser), which keeps it dependency-free and
//! fast, at the price of being a conservative approximation. Intended
//! deviations are annotated in-source with
//! `// lint:allow(<lint-id>): <reason>` markers (or, for framing-style
//! files where per-site markers would dominate,
//! `// lint:allow-file(<lint-id>): <reason>`), which the tool itself
//! audits: a marker with an unknown id, an empty reason, or nothing to
//! suppress is a finding.

pub mod fixtures;
pub mod lex;
pub mod lints;
pub mod registry;
pub mod schema;
pub mod source;

use std::io;
use std::path::Path;

use registry::{Finding, Lint, LintReport};
use schema::Registries;
use source::LintFile;

/// How many lines below its comment line an allow marker covers. Two
/// lines of comment above the annotated expression is the common shape.
const ALLOW_WINDOW: u32 = 3;

/// Lint a set of already-loaded sources against `reg`.
pub fn lint_sources(inputs: &[(String, String)], reg: &Registries) -> LintReport {
    let files: Vec<LintFile> = inputs.iter().map(|(p, s)| LintFile::parse(p, s)).collect();
    run_passes(&files, reg)
}

/// Lint a single source text — the fixture entry point.
pub fn lint_source(path: &str, text: &str, reg: &Registries) -> LintReport {
    lint_sources(&[(path.to_string(), text.to_string())], reg)
}

/// Lint the workspace rooted at `root`: collect `crates/*/src`, extract
/// the closed registries from the source itself, run every pass.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let inputs = source::collect_workspace(root)?;
    let files: Vec<LintFile> = inputs.iter().map(|(p, s)| LintFile::parse(p, s)).collect();
    let reg = Registries::from_files(&files);
    let mut report = run_passes(&files, &reg);
    // The registries are load-bearing: if extraction found nothing, the
    // dependent lints silently pass, so report that as a finding.
    if reg.wal_variants.is_empty() {
        report.findings.push(Finding::new(
            Lint::ReplayMissingVariant,
            "crates/wal/src/record.rs",
            1,
            "could not extract the WalRecord variant registry from source",
        ));
    }
    if reg.metric_families.is_empty() {
        report.findings.push(Finding::new(
            Lint::MetricFamilyUnknown,
            "crates/obs/src/metrics.rs",
            1,
            "could not extract the metric family registry (mod families) from source",
        ));
    }
    if reg.timeout_variants.is_empty() {
        report.findings.push(Finding::new(
            Lint::TimeoutWithoutFlight,
            "crates/core/src/session.rs",
            1,
            "could not extract the flight-carrying SessionError variants from source",
        ));
    }
    Ok(report)
}

fn run_passes(files: &[LintFile], reg: &Registries) -> LintReport {
    let mut raw: Vec<Finding> = Vec::new();
    lints::determinism::run(files, &mut raw);
    lints::locks::run(files, &mut raw);
    lints::replay::run(files, reg, &mut raw);
    lints::obs::run(files, reg, &mut raw);
    lints::panics::run(files, &mut raw);
    apply_allows(files, raw)
}

/// Suppress raw findings covered by valid allow markers and emit the
/// hygiene findings for the markers themselves.
fn apply_allows(files: &[LintFile], raw: Vec<Finding>) -> LintReport {
    let mut report = LintReport {
        files: files.len(),
        ..LintReport::default()
    };
    // marker index parallel to files[i].allows: usage count.
    let mut used: Vec<Vec<usize>> = files.iter().map(|f| vec![0; f.allows.len()]).collect();

    'findings: for finding in raw {
        for (fi, f) in files.iter().enumerate() {
            if f.path != finding.file {
                continue;
            }
            for (mi, m) in f.allows.iter().enumerate() {
                let covers = m.file_scope
                    || (finding.line >= m.line && finding.line <= m.line + ALLOW_WINDOW);
                if covers && m.id == finding.lint.id() && !m.reason.trim().is_empty() {
                    used[fi][mi] += 1;
                    report.suppressed += 1;
                    continue 'findings;
                }
            }
        }
        report.findings.push(finding);
    }

    // Marker hygiene: unknown id, empty reason, or suppressed nothing.
    for (fi, f) in files.iter().enumerate() {
        let test_lines = f.test_lines();
        for (mi, m) in f.allows.iter().enumerate() {
            if test_lines.contains(&m.line) || test_lines.contains(&(m.line + 1)) {
                continue;
            }
            let message = if Lint::from_id(&m.id).is_none() {
                Some(format!("allow marker names unknown lint `{}`", m.id))
            } else if m.reason.trim().is_empty() {
                Some(format!(
                    "allow marker for `{}` has no reason — justify the deviation",
                    m.id
                ))
            } else if used[fi][mi] == 0 {
                Some(format!(
                    "allow marker for `{}` suppresses nothing — remove it",
                    m.id
                ))
            } else {
                None
            };
            if let Some(message) = message {
                report
                    .findings
                    .push(Finding::new(Lint::AllowHygiene, &f.path, m.line, message));
            }
        }
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.lint.id()).cmp(&(&b.file, b.line, b.lint.id())));
    report
}
