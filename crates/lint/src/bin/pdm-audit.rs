//! pdm-audit: the combined static-analysis gate — the SQL-level corpus
//! audit (`pdm-analyze`) and the source-level protocol lints
//! (`pdm-lint`) in one run with one exit code.
//!
//! ```text
//! pdm-audit [--json] [ROOT]
//! ```

#![allow(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::ExitCode;

use pdm_analyze::diag::Severity;
use pdm_lint::lint_workspace;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: pdm-audit [--json] [ROOT]");
                return ExitCode::from(2);
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            _ => {
                eprintln!("usage: pdm-audit [--json] [ROOT]");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = PathBuf::from(".");
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });

    // SQL-level: the paper's tuning rules over the query corpus. The
    // corpus intentionally includes anti-pattern exemplars, so only
    // error-severity diagnostics gate.
    let mut sql_errors = 0usize;
    let mut sql_diags = 0usize;
    let mut sql_queries = 0usize;
    for (_, report) in pdm_analyze::audit_corpus() {
        sql_queries += 1;
        for d in &report.diagnostics {
            sql_diags += 1;
            if d.severity == Severity::Error {
                sql_errors += 1;
            }
        }
    }
    for (_, report) in pdm_analyze::audit_statement_corpus() {
        sql_queries += 1;
        for d in &report.diagnostics {
            sql_diags += 1;
            if d.severity == Severity::Error {
                sql_errors += 1;
            }
        }
    }

    // Source-level: the protocol lints.
    let lint_report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pdm-audit: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{{");
        println!(
            "  \"sql\": {{\"queries\": {sql_queries}, \"diagnostics\": {sql_diags}, \"errors\": {sql_errors}}},"
        );
        let lint_json = lint_report.to_json();
        let indented: String = lint_json
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 0 {
                    format!("  \"source\": {l}")
                } else {
                    format!("  {l}")
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        println!("{indented}");
        println!("}}");
    } else {
        println!(
            "sql: {sql_queries} corpus queries, {sql_diags} diagnostics ({sql_errors} errors)"
        );
        for f in &lint_report.findings {
            println!(
                "source: {}: {} [{}] {}",
                f.lint.severity(),
                f.location(),
                f.lint.id(),
                f.message
            );
        }
        println!(
            "source: {} files, {} finding(s), {} suppressed",
            lint_report.files,
            lint_report.findings.len(),
            lint_report.suppressed
        );
    }

    if sql_errors == 0 && lint_report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
