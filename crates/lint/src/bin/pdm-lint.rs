//! pdm-lint: run the protocol-invariant lints over the workspace.
//!
//! ```text
//! pdm-lint [--json] [--list-lints] [ROOT]
//! ```
//!
//! Exits 0 when the tree is clean, 1 when any finding survives
//! suppression, 2 on usage or I/O errors — the same contract as
//! `pdm-analyze`.

#![allow(clippy::unwrap_used)]

use std::path::PathBuf;
use std::process::ExitCode;

use pdm_lint::lint_workspace;
use pdm_lint::registry::Lint;

fn usage() -> ExitCode {
    eprintln!("usage: pdm-lint [--json] [--list-lints] [ROOT]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut list = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--list-lints" => list = true,
            "--help" | "-h" => return usage(),
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            _ => return usage(),
        }
    }

    if list {
        if json {
            println!("[");
            for (i, lint) in Lint::ALL.iter().enumerate() {
                println!(
                    "  {{\"id\": \"{}\", \"family\": \"{}\", \"severity\": \"{}\", \"description\": \"{}\"}}{}",
                    lint.id(),
                    lint.family().name(),
                    lint.severity(),
                    lint.description(),
                    if i + 1 < Lint::ALL.len() { "," } else { "" }
                );
            }
            println!("]");
        } else {
            for lint in Lint::ALL {
                println!(
                    "{:26} {:15} {:7}  {}",
                    lint.id(),
                    lint.family().name(),
                    lint.severity().to_string(),
                    lint.description()
                );
            }
        }
        return ExitCode::SUCCESS;
    }

    // Default root: the current directory if it looks like the
    // workspace, else the workspace this binary was built from.
    let root = root.unwrap_or_else(|| {
        let cwd = PathBuf::from(".");
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pdm-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!(
                "{}: {} [{}] {}",
                f.lint.severity(),
                f.location(),
                f.lint.id(),
                f.message
            );
        }
        println!(
            "pdm-lint: {} file(s), {} finding(s), {} suppressed by allow markers",
            report.files,
            report.findings.len(),
            report.suppressed
        );
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
