//! Structural recovery on top of the token stream: test-region masking,
//! function tables, and the workspace file walker.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

use crate::lex::{lex, AllowMarker, Tok, TokKind};

/// A lexed source file plus the structural facts every lint needs.
#[derive(Debug)]
pub struct LintFile {
    /// Repo-relative path with forward slashes (e.g. `crates/core/src/shared.rs`).
    pub path: String,
    pub toks: Vec<Tok>,
    pub allows: Vec<AllowMarker>,
    /// Per-token flag: true when the token sits inside a `#[cfg(test)]`
    /// item or a `#[test]` function. Lints skip masked tokens.
    pub test_mask: Vec<bool>,
    /// Functions found in the file (including test fns, flagged).
    pub fns: Vec<FnInfo>,
}

/// One `fn` item recovered from the token stream.
#[derive(Debug)]
pub struct FnInfo {
    pub name: String,
    /// Parameter binding names (best effort; `self` excluded).
    pub params: Vec<String>,
    /// Token index of the body's `{` and its matching `}` (inclusive).
    /// `None` for bodiless declarations (trait methods).
    pub body: Option<(usize, usize)>,
    /// Token index of the `fn` keyword (signature start).
    pub sig_start: usize,
    pub line: u32,
    pub is_test: bool,
}

impl LintFile {
    pub fn parse(path: &str, src: &str) -> LintFile {
        let lexed = lex(src);
        let test_mask = compute_test_mask(&lexed.toks);
        let fns = collect_fns(&lexed.toks, &test_mask);
        LintFile {
            path: path.to_string(),
            toks: lexed.toks,
            allows: lexed.allows,
            test_mask,
            fns,
        }
    }

    /// Lines (1-based) that fall inside test regions — used to exempt
    /// allow markers written inside tests from hygiene checking.
    pub fn test_lines(&self) -> BTreeSet<u32> {
        self.toks
            .iter()
            .zip(&self.test_mask)
            .filter(|(_, m)| **m)
            .map(|(t, _)| t.line)
            .collect()
    }
}

/// Find the matching `}` for the `{` at `open` (token index).
/// Returns the index of the closing brace, or the last token on overflow.
pub fn matching_brace(toks: &[Tok], open: usize) -> usize {
    matching_brace_like(toks, open, "{", "}")
}

/// Generic matching close delimiter for the open one at `open`.
pub fn matching_brace_like(toks: &[Tok], open: usize, o: &str, c: &str) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Mark every token covered by `#[cfg(test)]` items or `#[test]` fns.
fn compute_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct("#") || !toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            i += 1;
            continue;
        }
        // Inspect the attribute body.
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1i64;
        let mut is_test_attr = false;
        let mut saw_cfg = false;
        while j < toks.len() && depth > 0 {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
            } else if toks[j].is_ident("cfg") {
                saw_cfg = true;
            } else if toks[j].is_ident("test") {
                // `#[test]` or `#[cfg(test)]` / `#[cfg(all(test, ..))]`.
                if saw_cfg || j == i + 2 {
                    is_test_attr = true;
                }
            }
            j += 1;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut k = j;
        while k < toks.len()
            && toks[k].is_punct("#")
            && toks.get(k + 1).is_some_and(|t| t.is_punct("["))
        {
            let mut d = 1i64;
            k += 2;
            while k < toks.len() && d > 0 {
                if toks[k].is_punct("[") {
                    d += 1;
                } else if toks[k].is_punct("]") {
                    d -= 1;
                }
                k += 1;
            }
        }
        // The item runs to its body's closing brace, or to a `;`.
        let mut end = k;
        while end < toks.len() {
            if toks[end].is_punct("{") {
                end = matching_brace(toks, end);
                break;
            }
            if toks[end].is_punct(";") {
                break;
            }
            end += 1;
        }
        for m in mask
            .iter_mut()
            .take((end + 1).min(toks.len()))
            .skip(attr_start)
        {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Rust keywords that can directly precede `[` or otherwise look like
/// expression heads but are not.
pub const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "true", "type", "unsafe",
    "use", "where", "while", "async", "await",
];

pub fn is_keyword(text: &str) -> bool {
    KEYWORDS.contains(&text)
}

fn collect_fns(toks: &[Tok], mask: &[bool]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        // Find the parameter list opening paren (skipping generics).
        let mut j = i + 2;
        let mut angle = 0i64;
        while j < toks.len() {
            if toks[j].is_punct("<") {
                angle += 1;
            } else if toks[j].is_punct(">") {
                angle -= 1;
            } else if toks[j].is_punct("(") && angle <= 0 {
                break;
            }
            j += 1;
        }
        // Parameter names: `ident :` at paren depth 1.
        let mut params = Vec::new();
        let mut depth = 0i64;
        let mut k = j;
        while k < toks.len() {
            if toks[k].is_punct("(") {
                depth += 1;
            } else if toks[k].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1
                && toks[k].kind == TokKind::Ident
                && !is_keyword(&toks[k].text)
                && toks.get(k + 1).is_some_and(|t| t.is_punct(":"))
                && toks
                    .get(k.wrapping_sub(1))
                    .is_none_or(|t| !t.is_punct(":") && !t.is_punct("::"))
            {
                params.push(toks[k].text.clone());
            }
            k += 1;
        }
        // Body: next `{` before a `;`.
        let mut body = None;
        let mut b = k + 1;
        while b < toks.len() {
            if toks[b].is_punct(";") {
                break;
            }
            if toks[b].is_punct("{") {
                body = Some((b, matching_brace(toks, b)));
                break;
            }
            b += 1;
        }
        let is_test = mask.get(i).copied().unwrap_or(false);
        fns.push(FnInfo {
            name,
            params,
            body,
            sig_start: i,
            line,
            is_test,
        });
        i += 2;
    }
    fns
}

/// Crates excluded from linting. The bench harness measures real wall
/// time by design, and this crate's own fixtures would self-flag.
const SKIP_CRATES: &[&str] = &["bench", "lint"];

/// Collect `(path, contents)` for every linted source file under `root`,
/// in deterministic path order: `crates/*/src/**/*.rs` (minus skipped
/// crates) plus the workspace root `src/` if present. `tests/` and
/// `examples/` directories are out of scope — they are test surface.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_names: Vec<String> = Vec::new();
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            if entry.path().is_dir() {
                crate_names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
    }
    crate_names.sort();
    for name in crate_names {
        if SKIP_CRATES.contains(&name.as_str()) {
            continue;
        }
        let src = crates_dir.join(&name).join("src");
        if src.is_dir() {
            walk_rs(&src, &format!("crates/{name}/src"), &mut files)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, "src", &mut files)?;
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files)
}

fn walk_rs(dir: &Path, rel: &str, out: &mut Vec<(String, String)>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<Vec<_>>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            walk_rs(&path, &format!("{rel}/{name}"), out)?;
        } else if name.ends_with(".rs") {
            let text = fs::read_to_string(&path)?;
            out.push((format!("{rel}/{name}"), text));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_are_masked() {
        let src = "fn live() { x(); }\n#[cfg(test)]\nmod tests {\n fn dead() { y(); }\n}\nfn live2() {}\n";
        let f = LintFile::parse("a.rs", src);
        let masked: Vec<&str> = f
            .toks
            .iter()
            .zip(&f.test_mask)
            .filter(|(_, m)| **m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"dead"));
        assert!(!masked.contains(&"live"));
        assert!(!masked.contains(&"live2"));
    }

    #[test]
    fn test_attribute_masks_following_fn() {
        let src = "#[test]\nfn probe() { z(); }\nfn real() {}\n";
        let f = LintFile::parse("a.rs", src);
        let probe = f.fns.iter().find(|f| f.name == "probe").unwrap();
        let real = f.fns.iter().find(|f| f.name == "real").unwrap();
        assert!(probe.is_test);
        assert!(!real.is_test);
    }

    #[test]
    fn fn_table_captures_params_and_body() {
        let src = "pub fn apply_batch(&mut self, epoch: u64, records: &[(u64, W)]) -> R { body() }";
        let f = LintFile::parse("a.rs", src);
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "apply_batch");
        assert_eq!(f.fns[0].params, vec!["epoch", "records"]);
        let (open, close) = f.fns[0].body.unwrap();
        assert!(f.toks[open].is_punct("{"));
        assert!(f.toks[close].is_punct("}"));
    }

    #[test]
    fn generic_fn_params_are_found_past_angle_brackets() {
        let src = "fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> { m.lock().unwrap() }";
        let f = LintFile::parse("a.rs", src);
        assert_eq!(f.fns[0].params, vec!["m"]);
    }
}
