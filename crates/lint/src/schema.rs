//! Closed registries the lints check membership against, extracted from
//! the workspace source itself so the tool never drifts from the code:
//! the `WalRecord` variant list, the metric family registry, and the
//! timeout-shaped `SessionError` variants that must carry flight context.

use std::collections::BTreeSet;

use crate::lex::TokKind;
use crate::source::{matching_brace, LintFile};

/// The extracted registries. Empty collections mean the defining file
/// was not part of the input (fixture runs) or extraction failed —
/// `lint_workspace` reports the latter as a finding rather than
/// silently passing.
#[derive(Debug, Default, Clone)]
pub struct Registries {
    /// Variants of `pdm_wal::WalRecord`, in declaration order.
    pub wal_variants: Vec<String>,
    /// Closed metric family names (`pdm_obs::metrics::families::ALL`).
    pub metric_families: BTreeSet<String>,
    /// `SessionError` variants that carry a `context: FlightDump` field.
    pub timeout_variants: Vec<String>,
}

impl Registries {
    /// Extract all registries from the parsed workspace.
    pub fn from_files(files: &[LintFile]) -> Registries {
        let mut reg = Registries::default();
        for f in files {
            if f.path.ends_with("crates/wal/src/record.rs") || f.path == "crates/wal/src/record.rs"
            {
                reg.wal_variants = enum_variants(f, "WalRecord")
                    .into_iter()
                    .map(|(name, _)| name)
                    .collect();
            }
            if f.path.ends_with("crates/obs/src/metrics.rs") {
                reg.metric_families = families_strings(f);
            }
            if f.path.ends_with("crates/core/src/session.rs") {
                reg.timeout_variants = enum_variants(f, "SessionError")
                    .into_iter()
                    .filter(|(_, fields)| fields.iter().any(|fld| fld == "context"))
                    .map(|(name, _)| name)
                    .collect();
            }
        }
        reg
    }

    /// The fixture registry used by the meta-tests: a stable stand-in
    /// mirroring the real workspace's shape.
    pub fn fixture() -> Registries {
        Registries {
            wal_variants: [
                "DmlCommit",
                "CheckoutGrant",
                "CheckoutRelease",
                "TokenComplete",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            metric_families: ["cache.hits", "wal.appends", "server.queries"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            timeout_variants: [
                "Timeout",
                "LinkDown",
                "ReplicaLagTimeout",
                "PrimaryUnavailable",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        }
    }
}

/// Variants of `enum <name>` in `f`, each with the field names of its
/// brace body (empty for tuple/unit variants).
fn enum_variants(f: &LintFile, name: &str) -> Vec<(String, Vec<String>)> {
    let toks = &f.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].is_ident("enum") && toks[i + 1].is_ident(name) {
            // Skip generics to the opening brace.
            let mut open = i + 2;
            while open < toks.len() && !toks[open].is_punct("{") {
                open += 1;
            }
            let close = matching_brace(toks, open);
            let mut depth = 0i64;
            let mut expecting_variant = true;
            let mut j = open;
            while j <= close {
                let t = &toks[j];
                if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if depth == 1 {
                    if t.is_punct(",") {
                        expecting_variant = true;
                    } else if t.is_punct("#") {
                        // Attribute on the next variant; skip its brackets.
                        if toks.get(j + 1).is_some_and(|t| t.is_punct("[")) {
                            let end = matching_delim(toks, j + 1, "[", "]");
                            j = end;
                        }
                    } else if expecting_variant && t.kind == TokKind::Ident {
                        let vname = t.text.clone();
                        let mut fields = Vec::new();
                        if toks.get(j + 1).is_some_and(|t| t.is_punct("{")) {
                            let fend = matching_brace(toks, j + 1);
                            let mut d = 0i64;
                            for k in (j + 1)..=fend {
                                if toks[k].is_punct("{") || toks[k].is_punct("<") {
                                    d += 1;
                                } else if toks[k].is_punct("}") || toks[k].is_punct(">") {
                                    d -= 1;
                                } else if d == 1
                                    && toks[k].kind == TokKind::Ident
                                    && toks.get(k + 1).is_some_and(|t| t.is_punct(":"))
                                {
                                    fields.push(toks[k].text.clone());
                                }
                            }
                            j = fend;
                        }
                        out.push((vname, fields));
                        expecting_variant = false;
                    }
                }
                j += 1;
            }
            return out;
        }
        i += 1;
    }
    out
}

/// All string literals inside `mod families { .. }` — the closed metric
/// family registry.
fn families_strings(f: &LintFile) -> BTreeSet<String> {
    let toks = &f.toks;
    let mut out = BTreeSet::new();
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if toks[i].is_ident("mod") && toks[i + 1].is_ident("families") && toks[i + 2].is_punct("{")
        {
            let close = matching_brace(toks, i + 2);
            for t in &toks[i + 2..=close] {
                if t.kind == TokKind::Str && !t.text.is_empty() {
                    out.insert(t.text.clone());
                }
            }
            return out;
        }
        i += 1;
    }
    out
}

/// Matching close delimiter for the open one at `open`.
fn matching_delim(toks: &[crate::lex::Tok], open: usize, o: &str, c: &str) -> usize {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::LintFile;

    #[test]
    fn enum_variants_with_brace_fields() {
        let src = "pub enum SessionError {\n  #[doc = \"x\"]\n  Timeout { waited_s: f64, context: FlightDump },\n  Parse(String),\n  LinkDown { context: FlightDump },\n  Other,\n}\n";
        let f = LintFile::parse("crates/core/src/session.rs", src);
        let vars = enum_variants(&f, "SessionError");
        let names: Vec<&str> = vars.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Timeout", "Parse", "LinkDown", "Other"]);
        let reg = Registries::from_files(&[f]);
        assert_eq!(reg.timeout_variants, vec!["Timeout", "LinkDown"]);
    }

    #[test]
    fn families_registry_is_collected() {
        let src = "pub mod families {\n pub const ALL: &[&str] = &[\"cache.hits\", \"wal.appends\"];\n}\n";
        let f = LintFile::parse("crates/obs/src/metrics.rs", src);
        let reg = Registries::from_files(&[f]);
        assert!(reg.metric_families.contains("cache.hits"));
        assert!(reg.metric_families.contains("wal.appends"));
        assert_eq!(reg.metric_families.len(), 2);
    }

    #[test]
    fn wal_variants_in_declaration_order() {
        let src = "pub enum WalRecord {\n DmlCommit { version: u64, sql: String },\n CheckoutGrant { token: u64, assy_ids: Vec<u64>, comp_ids: Vec<u64> },\n CheckoutRelease { ids: Vec<u64> },\n TokenComplete { token: u64, rows: Option<ResultSet> },\n}\n";
        let f = LintFile::parse("crates/wal/src/record.rs", src);
        let reg = Registries::from_files(&[f]);
        assert_eq!(
            reg.wal_variants,
            vec![
                "DmlCommit",
                "CheckoutGrant",
                "CheckoutRelease",
                "TokenComplete"
            ]
        );
    }
}
