//! Meta-tests over the lint registry itself: every lint must reject its
//! mutation fixture and accept the corrected twin, so the registry
//! cannot grow an undemonstrated (or vacuous) lint.

use pdm_lint::fixtures::{pair, FIXTURE_PATH};
use pdm_lint::lint_source;
use pdm_lint::registry::{Family, Lint};
use pdm_lint::schema::Registries;

#[test]
fn every_lint_rejects_its_fixture_and_accepts_the_twin() {
    let reg = Registries::fixture();
    for lint in Lint::ALL {
        let (bad, good) = pair(*lint);
        let rbad = lint_source(FIXTURE_PATH, bad, &reg);
        assert!(
            rbad.flags(*lint),
            "lint {} did not fire on its bad fixture; findings: {:?}",
            lint.id(),
            rbad.findings
        );
        let rgood = lint_source(FIXTURE_PATH, good, &reg);
        assert!(
            !rgood.flags(*lint),
            "lint {} fired on its good twin; findings: {:?}",
            lint.id(),
            rgood.findings
        );
    }
}

#[test]
fn fixtures_are_minimal_enough_to_differ() {
    for lint in Lint::ALL {
        let (bad, good) = pair(*lint);
        assert_ne!(bad, good, "fixture pair for {} is identical", lint.id());
        assert!(!bad.trim().is_empty() && !good.trim().is_empty());
    }
}

#[test]
fn five_families_each_carry_multiple_lints() {
    for fam in [
        Family::Determinism,
        Family::LockDiscipline,
        Family::Replay,
        Family::Observability,
        Family::PanicSurface,
    ] {
        let n = Lint::ALL.iter().filter(|l| l.family() == fam).count();
        assert!(n >= 2, "family {} has only {n} lints", fam.name());
    }
    assert_eq!(
        Lint::ALL.len(),
        17,
        "lint count drifted; update fixtures and docs together"
    );
}

#[test]
fn allow_marker_with_reason_suppresses_and_counts() {
    let reg = Registries::fixture();
    let (_, good) = pair(Lint::WallClock);
    let r = lint_source(FIXTURE_PATH, good, &reg);
    assert_eq!(
        r.suppressed, 1,
        "the annotated wall-clock site must count as suppressed"
    );
    assert!(
        !r.flags(Lint::AllowHygiene),
        "a used, reasoned marker is hygienic"
    );
}

#[test]
fn markers_cannot_suppress_a_different_lint() {
    let reg = Registries::fixture();
    // A wall-clock marker over an ambient-randomness site: the finding
    // survives and the marker is flagged as suppressing nothing.
    let src = "fn f() -> u64 {\n    // lint:allow(wall-clock): wrong id on purpose\n    let mut rng = thread_rng();\n    rng.gen()\n}\n";
    let r = lint_source(FIXTURE_PATH, src, &reg);
    assert!(r.flags(Lint::AmbientRandomness));
    assert!(r.flags(Lint::AllowHygiene));
}

#[test]
fn file_scoped_marker_covers_distant_sites_of_its_lint_only() {
    let reg = Registries::fixture();
    // Two unchecked-index sites far below the marker: both suppressed.
    let src = "// lint:allow-file(unchecked-index): framing code; every read is length-guarded\n\
               fn a(buf: &[u8], i: usize) -> u8 { buf[i] }\n\n\n\n\n\n\n\n\n\
               fn b(buf: &[u8], i: usize) -> u8 { buf[i + 1] }\n";
    let r = lint_source("crates/wal/src/fixture.rs", src, &reg);
    assert!(
        !r.flags(Lint::UncheckedIndex),
        "file marker must cover the whole file: {:?}",
        r.findings
    );
    assert_eq!(r.suppressed, 2);
    assert!(!r.flags(Lint::AllowHygiene));
    // The file marker does not leak onto other lints.
    let src2 = "// lint:allow-file(unchecked-index): framing code\n\
                fn f() -> u64 { thread_rng().gen() }\n";
    let r2 = lint_source(FIXTURE_PATH, src2, &reg);
    assert!(r2.flags(Lint::AmbientRandomness));
    assert!(
        r2.flags(Lint::AllowHygiene),
        "an unused file marker is flagged"
    );
}

#[test]
fn unknown_lint_id_in_marker_is_flagged() {
    let reg = Registries::fixture();
    let src = "// lint:allow(made-up-lint): because\nfn f() {}\n";
    let r = lint_source(FIXTURE_PATH, src, &reg);
    assert!(r.flags(Lint::AllowHygiene));
}

#[test]
fn test_code_is_out_of_scope() {
    let reg = Registries::fixture();
    let src = "#[cfg(test)]\nmod tests {\n    fn clock() -> Instant { Instant::now() }\n}\n";
    let r = lint_source(FIXTURE_PATH, src, &reg);
    assert!(r.is_clean(), "findings in cfg(test) code: {:?}", r.findings);
}
