//! The tree must lint clean: every true positive has been fixed or
//! carries a reasoned `lint:allow` marker. This is the same gate CI
//! runs via the `pdm-lint` binary.

use std::path::PathBuf;

use pdm_lint::lint_workspace;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

#[test]
fn workspace_lints_clean() {
    let report = lint_workspace(&repo_root()).expect("workspace walk succeeds");
    assert!(
        report.files > 30,
        "walker found too few files: {}",
        report.files
    );
    if !report.is_clean() {
        let mut msg = String::new();
        for f in &report.findings {
            msg.push_str(&format!(
                "  {} [{}] {}\n",
                f.location(),
                f.lint.id(),
                f.message
            ));
        }
        panic!(
            "workspace has {} lint finding(s):\n{msg}",
            report.findings.len()
        );
    }
    assert!(
        report.suppressed > 0,
        "the annotated advisory wall-clock sites should register as suppressions"
    );
}
