//! Property tests for the lock-order cycle detector: on random directed
//! graphs, `find_cycle` must agree with an independent reference
//! (Kahn's topological sort), and any cycle it reports must be a real
//! closed walk in the graph.

use std::collections::{BTreeMap, BTreeSet};

use pdm_lint::lints::locks::find_cycle;
use pdm_prng::check::cases;
use pdm_prng::Prng;

fn random_graph(prng: &mut Prng) -> BTreeMap<String, BTreeSet<String>> {
    let n = 2 + (prng.next_u64() % 9) as usize; // 2..=10 nodes
    let edge_permille = prng.next_u64() % 400; // density 0..40%
    let mut g: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            if prng.next_u64() % 1000 < edge_permille {
                g.entry(format!("L{a}"))
                    .or_default()
                    .insert(format!("L{b}"));
            }
        }
    }
    g
}

/// Reference detector: Kahn's algorithm — the graph is acyclic iff a
/// topological order covers every node.
fn has_cycle_reference(g: &BTreeMap<String, BTreeSet<String>>) -> bool {
    let mut nodes: BTreeSet<&String> = g.keys().collect();
    for vs in g.values() {
        nodes.extend(vs.iter());
    }
    let mut indeg: BTreeMap<&String, usize> = nodes.iter().map(|n| (*n, 0)).collect();
    for vs in g.values() {
        for v in vs {
            *indeg.get_mut(v).expect("node") += 1;
        }
    }
    let mut queue: Vec<&String> = indeg
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(n, _)| *n)
        .collect();
    let mut removed = 0usize;
    while let Some(n) = queue.pop() {
        removed += 1;
        if let Some(vs) = g.get(n) {
            for v in vs {
                let d = indeg.get_mut(v).expect("node");
                *d -= 1;
                if *d == 0 {
                    queue.push(v);
                }
            }
        }
    }
    removed != nodes.len()
}

#[test]
fn detector_agrees_with_kahn_reference() {
    cases("lock-graph-vs-kahn", 300, 0x5eed_10c4, |prng| {
        let g = random_graph(prng);
        let found = find_cycle(&g).is_some();
        let reference = has_cycle_reference(&g);
        assert_eq!(
            found, reference,
            "detector and Kahn reference disagree on {g:?}"
        );
    });
}

#[test]
fn reported_cycles_are_real_closed_walks() {
    cases("lock-graph-cycle-validity", 300, 0xc0de_600d, |prng| {
        let g = random_graph(prng);
        if let Some(cycle) = find_cycle(&g) {
            assert!(cycle.len() >= 2, "cycle too short: {cycle:?}");
            assert_eq!(
                cycle.first(),
                cycle.last(),
                "cycle is not closed: {cycle:?}"
            );
            for w in cycle.windows(2) {
                assert!(
                    g.get(&w[0]).is_some_and(|vs| vs.contains(&w[1])),
                    "edge {} -> {} not in graph {g:?}",
                    w[0],
                    w[1]
                );
            }
        }
    });
}

#[test]
fn known_small_graphs() {
    let mut g: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    g.entry("a".into()).or_default().insert("b".into());
    g.entry("b".into()).or_default().insert("c".into());
    assert!(find_cycle(&g).is_none(), "a chain has no cycle");
    g.entry("c".into()).or_default().insert("a".into());
    let cycle = find_cycle(&g).expect("3-cycle");
    assert_eq!(cycle.first(), cycle.last());
    // Self-loop.
    let mut s: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    s.entry("x".into()).or_default().insert("x".into());
    assert!(find_cycle(&s).is_some(), "self-loop is a cycle");
}
