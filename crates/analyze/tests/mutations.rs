//! Mutation fixtures: for every analyzer check, at least one corrupted
//! query or rule table that the analyzer provably rejects.
//!
//! The meta-test at the bottom walks [`Check::ALL`], so adding a check to
//! the registry without adding a fixture here fails the build.

#![allow(clippy::unwrap_used)]

use pdm_analyze::corpus::{paper_rules, visibility_rules};
use pdm_analyze::placement::check_placement;
use pdm_analyze::{Analyzer, Check, Report, SchemaInfo};
use pdm_core::query::modificator::Modificator;
use pdm_core::query::{navigational, recursive};
use pdm_core::rules::condition::{CmpOp, Condition, FnArg, RowPredicate};
use pdm_core::rules::table::RuleTable;
use pdm_core::rules::translate::row_predicate_expr;
use pdm_core::rules::{ActionKind, Rule};
use pdm_sql::ast::{Expr, Query, Select, SelectItem, SetExpr, TableWithJoins};
use pdm_sql::parser::parse_query;
use pdm_sql::Value;
use std::collections::HashSet;

/// Run the full query analysis over a SQL string fixture.
fn analyze_sql(sql: &str) -> Report {
    let q = parse_query(sql).unwrap();
    Analyzer::paper().analyze(&q)
}

fn analyze_rules(rules: RuleTable) -> Report {
    Analyzer::paper().analyze_rule_table(&rules)
}

/// Run the statement-level analysis over a SQL string fixture (the
/// recovery-replay DML path).
fn analyze_statement_sql(sql: &str) -> Report {
    let stmt = pdm_sql::parser::parse_statement(sql).unwrap();
    Analyzer::paper().analyze_statement(&stmt)
}

fn row_rule(object_type: &str, pred: RowPredicate) -> Rule {
    Rule::for_all_users(ActionKind::Access, object_type, Condition::Row(pred))
}

/// The §5.5 query, modified by the paper rule set, with its ModReport.
fn modified_mle() -> (Query, pdm_core::query::modificator::ModReport) {
    let rules = paper_rules();
    let views = HashSet::new();
    let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
    let mut q = recursive::mle_query(1);
    let report = m.modify_recursive(&mut q).unwrap();
    (q, report)
}

fn placement_fixture_missing() -> Report {
    // Unmodified recursive query audited against rules that demand
    // injections: every mandated predicate is missing.
    let q = recursive::mle_query(1);
    let mut r = Report::new();
    check_placement(
        &q,
        &paper_rules(),
        "scott",
        ActionKind::MultiLevelExpand,
        None,
        &mut r,
    );
    r
}

fn placement_fixture_misplaced() -> Report {
    // Splice the assy visibility predicate onto the *comp* branch of the
    // expand union — a predicate the plan expects only in the assy branch.
    let mut q = navigational::expand_query(42);
    let pred = row_predicate_expr(
        &RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA"),
        "assy",
    );
    let SetExpr::SetOp { right, .. } = &mut q.body else {
        panic!("expand query is a union");
    };
    let SetExpr::Select(sel) = right.as_mut() else {
        panic!("union branch is a select");
    };
    sel.and_where(pred);
    let mut r = Report::new();
    check_placement(
        &q,
        &visibility_rules(),
        "scott",
        ActionKind::Expand,
        None,
        &mut r,
    );
    r
}

fn placement_fixture_report_mismatch() -> Report {
    // Tamper with the modificator's own account: drop one recorded site.
    let (q, mut mr) = modified_mle();
    mr.sites.pop();
    let mut r = Report::new();
    check_placement(
        &q,
        &paper_rules(),
        "scott",
        ActionKind::MultiLevelExpand,
        Some(&mr),
        &mut r,
    );
    r
}

fn drift_fixture() -> Report {
    // A function name with a space renders as SQL that cannot re-parse.
    let mut sel = Select::new();
    sel.projection = vec![SelectItem::expr(Expr::Function {
        name: "no such fn".into(),
        args: vec![],
        star: false,
    })];
    sel.from.push(TableWithJoins::table("assy"));
    let q = Query {
        with: None,
        body: SetExpr::Select(Box::new(sel)),
        order_by: Vec::new(),
        limit: None,
    };
    Analyzer::new(SchemaInfo::paper().lenient()).analyze(&q)
}

fn fixtures() -> Vec<(Check, Report)> {
    vec![
        // -- name/scope resolution ------------------------------------
        (
            Check::UnknownTable,
            analyze_sql("SELECT name FROM nonesuch"),
        ),
        (Check::UnknownColumn, analyze_sql("SELECT bogus FROM assy")),
        (
            Check::AmbiguousColumn,
            analyze_sql("SELECT name FROM assy JOIN comp ON assy.obid = comp.obid"),
        ),
        (
            Check::UnknownFunction,
            analyze_sql("SELECT frobnicate(obid) FROM assy"),
        ),
        (
            Check::CteArityMismatch,
            analyze_sql("WITH c (a, b) AS (SELECT obid FROM assy) SELECT a FROM c"),
        ),
        (
            Check::SetOpArityMismatch,
            analyze_sql("SELECT obid FROM assy UNION SELECT obid, name FROM comp"),
        ),
        (
            Check::AggregateInWhere,
            analyze_sql("SELECT obid FROM assy WHERE COUNT(*) > 0"),
        ),
        (
            Check::OrderByOutOfRange,
            analyze_sql("SELECT obid FROM assy ORDER BY 3"),
        ),
        // -- recursive-CTE safety -------------------------------------
        (
            Check::NoSeedTerm,
            analyze_sql(
                "WITH RECURSIVE r (n) AS (SELECT r.n FROM r JOIN link ON r.n = link.left) \
                 SELECT n FROM r",
            ),
        ),
        (
            Check::NonLinearRecursion,
            analyze_sql(
                "WITH RECURSIVE r (n) AS (SELECT obid FROM assy UNION \
                 SELECT a.n FROM r AS a JOIN r AS b ON a.n = b.n) SELECT n FROM r",
            ),
        ),
        (
            Check::RecursiveAggregate,
            analyze_sql(
                "WITH RECURSIVE r (n) AS (SELECT obid FROM assy UNION \
                 SELECT MAX(link.left) FROM r JOIN link ON r.n = link.left) SELECT n FROM r",
            ),
        ),
        (
            Check::RecursiveDistinct,
            analyze_sql(
                "WITH RECURSIVE r (n) AS (SELECT obid FROM assy UNION \
                 SELECT DISTINCT link.left FROM r JOIN link ON r.n = link.left) SELECT n FROM r",
            ),
        ),
        (
            Check::RecursiveSubqueryRef,
            analyze_sql(
                "WITH RECURSIVE r (n) AS (SELECT obid FROM assy UNION \
                 SELECT link.left FROM r JOIN link ON r.n = link.left \
                 WHERE EXISTS (SELECT * FROM r)) SELECT n FROM r",
            ),
        ),
        (
            Check::RecursiveNoDescent,
            analyze_sql(
                "WITH RECURSIVE r (n) AS (SELECT obid FROM assy UNION SELECT r.n FROM r) \
                 SELECT n FROM r",
            ),
        ),
        (
            Check::NonUnionRecursion,
            analyze_sql(
                "WITH RECURSIVE r (n) AS (SELECT obid FROM assy EXCEPT \
                 SELECT link.left FROM r JOIN link ON r.n = link.left) SELECT n FROM r",
            ),
        ),
        (
            Check::UnionAllRecursion,
            analyze_sql(
                "WITH RECURSIVE r (n) AS (SELECT obid FROM assy UNION ALL \
                 SELECT link.left FROM r JOIN link ON r.n = link.left) SELECT n FROM r",
            ),
        ),
        // -- predicate placement --------------------------------------
        (Check::MissingPredicate, placement_fixture_missing()),
        (Check::MisplacedPredicate, placement_fixture_misplaced()),
        (Check::ReportMismatch, placement_fixture_report_mismatch()),
        // -- rule-table analysis --------------------------------------
        (Check::UnsatisfiableRule, {
            let mut t = RuleTable::new();
            t.add(row_rule(
                "assy",
                RowPredicate::compare("payload", CmpOp::Lt, 10i64).and(RowPredicate::compare(
                    "payload",
                    CmpOp::Gt,
                    20i64,
                )),
            ));
            analyze_rules(t)
        }),
        (Check::TautologicalRule, {
            let mut t = RuleTable::new();
            t.add(row_rule(
                "assy",
                RowPredicate::compare("payload", CmpOp::Eq, 1i64).or(RowPredicate::compare(
                    "payload",
                    CmpOp::NotEq,
                    1i64,
                )),
            ));
            analyze_rules(t)
        }),
        (Check::EmptyEffectivity, {
            let mut t = RuleTable::new();
            t.add(row_rule(
                "link",
                RowPredicate::StoredFn {
                    name: "overlaps_interval".into(),
                    args: vec![
                        FnArg::Attr("eff_from".into()),
                        FnArg::Attr("eff_to".into()),
                        FnArg::Const(Value::Int(9)),
                        FnArg::Const(Value::Int(4)),
                    ],
                },
            ));
            analyze_rules(t)
        }),
        (Check::SubsumedRule, {
            let mut t = RuleTable::new();
            t.add(row_rule(
                "assy",
                RowPredicate::compare("payload", CmpOp::Gt, 5i64),
            ));
            t.add(Rule::new(
                pdm_core::rules::UserPattern::Named("scott".into()),
                ActionKind::Query,
                "assy",
                Condition::Row(RowPredicate::compare("payload", CmpOp::Gt, 10i64)),
            ));
            analyze_rules(t)
        }),
        (Check::DuplicateRule, {
            let mut t = RuleTable::new();
            let p = RowPredicate::compare("dec", CmpOp::Eq, "+");
            t.add(row_rule("assy", p.clone()));
            t.add(row_rule("assy", p));
            analyze_rules(t)
        }),
        // -- pipeline integrity ---------------------------------------
        (Check::PrintParseDrift, drift_fixture()),
        // -- statement-level DML (recovery replay path) ----------------
        (
            Check::DmlArityMismatch,
            // spec has 3 columns; 2 values.
            analyze_statement_sql("INSERT INTO spec VALUES ('spec', 1)"),
        ),
        (
            Check::UnknownTable,
            analyze_statement_sql("UPDATE nowhere SET obid = 1"),
        ),
        (
            Check::UnknownColumn,
            analyze_statement_sql("UPDATE assy SET checkedout = TRUE WHERE ghost = 3"),
        ),
    ]
}

#[test]
fn every_check_has_a_rejecting_fixture() {
    let fx = fixtures();
    for check in Check::ALL {
        let hits: Vec<&Report> = fx
            .iter()
            .filter(|(c, _)| *c == check)
            .map(|(_, r)| r)
            .collect();
        assert!(
            !hits.is_empty(),
            "no mutation fixture exercises check '{}'",
            check.id()
        );
        for report in hits {
            assert!(
                report.flags(check),
                "fixture for '{}' does not trigger it; got:\n{report}",
                check.id()
            );
        }
    }
}

#[test]
fn clean_fixtures_stay_clean() {
    // The inverse control: a well-formed query over the paper schema and a
    // sane rule table produce no diagnostics at all.
    let r = analyze_sql(
        "SELECT assy.name FROM assy JOIN link ON assy.obid = link.right WHERE link.left = 1",
    );
    assert!(r.is_clean(), "{r}");
    let mut t = RuleTable::new();
    t.add(row_rule(
        "assy",
        RowPredicate::compare("make_or_buy", CmpOp::NotEq, "buy"),
    ));
    assert!(analyze_rules(t).is_clean());
}
