//! Name/scope resolution and structural well-formedness.
//!
//! Walks a [`Query`] without executing it and verifies that every table
//! reference resolves (schema, CTEs in scope, aliases), every column
//! reference binds unambiguously — including correlation into outer scopes
//! from EXISTS / IN / scalar subqueries — and that the query's structure is
//! internally consistent (CTE and set-operation arities, ORDER BY ordinals,
//! no aggregates in WHERE).

use std::collections::HashMap;

use pdm_sql::ast::{
    is_aggregate_name, Expr, OrderItem, Query, Select, SetExpr, TableFactor, TableWithJoins,
};

use crate::diag::{Check, Report};
use crate::schema::SchemaInfo;

/// One name visible in a FROM scope: its binding name and, when known, its
/// column names. `None` columns means the relation is opaque (a view, a
/// derived table with wildcard projection, or an unknown table in lenient
/// mode) and accepts any column.
struct Binding {
    name: String,
    columns: Option<Vec<String>>,
}

/// The bindings of one SELECT block.
struct Scope {
    bindings: Vec<Binding>,
}

/// CTEs visible at some point of the walk: name → columns (if declared or
/// derivable).
type CteMap = HashMap<String, Option<Vec<String>>>;

/// Run resolution over a whole query, appending findings to `report`.
pub fn check_query(query: &Query, schema: &SchemaInfo, report: &mut Report) {
    let mut r = Resolver { schema, report };
    r.query(query, &CteMap::new(), &mut Vec::new());
}

struct Resolver<'a, 'r> {
    schema: &'a SchemaInfo,
    report: &'r mut Report,
}

impl Resolver<'_, '_> {
    fn query(&mut self, query: &Query, outer_ctes: &CteMap, scopes: &mut Vec<Scope>) {
        let mut ctes = outer_ctes.clone();
        if let Some(with) = &query.with {
            for cte in &with.ctes {
                let body_arity = setexpr_arity(&cte.query.body);
                let declared = if cte.columns.is_empty() {
                    None
                } else {
                    Some(
                        cte.columns
                            .iter()
                            .map(|c| c.to_ascii_lowercase())
                            .collect::<Vec<_>>(),
                    )
                };
                if let (Some(cols), Some(arity)) = (&declared, body_arity) {
                    if cols.len() != arity {
                        self.report.emit_at(
                            Check::CteArityMismatch,
                            format!(
                                "CTE '{}' declares {} column(s) but its body projects {}",
                                cte.name,
                                cols.len(),
                                arity
                            ),
                            format!("CTE '{}'", cte.name),
                        );
                    }
                }
                let columns = declared.or_else(|| setexpr_column_names(&cte.query.body));
                // A recursive CTE is visible inside its own body; a plain CTE
                // only in subsequent CTEs and the outer body.
                if with.recursive {
                    ctes.insert(cte.name.to_ascii_lowercase(), columns.clone());
                    self.query(&cte.query, &ctes, scopes);
                } else {
                    self.query(&cte.query, &ctes, scopes);
                    ctes.insert(cte.name.to_ascii_lowercase(), columns);
                }
            }
        }
        self.setexpr(&query.body, &ctes, scopes);
        self.order_by(&query.order_by, &query.body, &ctes, scopes);
    }

    fn setexpr(&mut self, body: &SetExpr, ctes: &CteMap, scopes: &mut Vec<Scope>) {
        if let SetExpr::SetOp { left, right, .. } = body {
            if let (Some(l), Some(r)) = (setexpr_arity(left), setexpr_arity(right)) {
                if l != r {
                    self.report.emit(
                        Check::SetOpArityMismatch,
                        format!("set operation combines a {l}-column side with a {r}-column side"),
                    );
                }
            }
        }
        match body {
            SetExpr::Select(sel) => self.select(sel, ctes, scopes),
            SetExpr::SetOp { left, right, .. } => {
                self.setexpr(left, ctes, scopes);
                self.setexpr(right, ctes, scopes);
            }
        }
    }

    fn select(&mut self, sel: &Select, ctes: &CteMap, scopes: &mut Vec<Scope>) {
        // Build this block's scope from the FROM clause. Join ON conditions
        // are checked after the full scope exists (SQL scopes ON clauses to
        // the whole FROM in this engine's semantics).
        let mut scope = Scope {
            bindings: Vec::new(),
        };
        for twj in &sel.from {
            self.add_factor(&twj.base, ctes, scopes, &mut scope);
            for j in &twj.joins {
                self.add_factor(&j.factor, ctes, scopes, &mut scope);
            }
        }
        scopes.push(scope);

        for twj in &sel.from {
            self.join_conditions(twj, ctes, scopes);
        }
        for item in &sel.projection {
            if let pdm_sql::ast::SelectItem::Expr { expr, .. } = item {
                self.expr(expr, ctes, scopes);
            }
        }
        if let Some(w) = &sel.where_clause {
            if w.contains_aggregate() {
                self.report.emit(
                    Check::AggregateInWhere,
                    format!("aggregate call in WHERE clause: {w}"),
                );
            }
            self.expr(w, ctes, scopes);
        }
        for g in &sel.group_by {
            self.expr(g, ctes, scopes);
        }
        if let Some(h) = &sel.having {
            self.expr(h, ctes, scopes);
        }

        scopes.pop();
    }

    fn join_conditions(&mut self, twj: &TableWithJoins, ctes: &CteMap, scopes: &mut Vec<Scope>) {
        for j in &twj.joins {
            if let Some(on) = &j.on {
                self.expr(on, ctes, scopes);
            }
        }
    }

    /// Resolve one FROM factor into a binding, flagging unknown tables.
    fn add_factor(
        &mut self,
        factor: &TableFactor,
        ctes: &CteMap,
        scopes: &mut Vec<Scope>,
        scope: &mut Scope,
    ) {
        match factor {
            TableFactor::Table { name, alias } => {
                let key = name.to_ascii_lowercase();
                let columns = if let Some(cols) = ctes.get(&key) {
                    cols.clone()
                } else if let Some(cols) = self.schema.table_columns(&key) {
                    Some(cols.clone())
                } else if self.schema.has_view(&key) {
                    // Views resolve but are opaque to the analyzer, like
                    // they are to the query modificator (§5.5 caveat).
                    None
                } else if self.schema.is_lenient() {
                    None
                } else {
                    self.report.emit(
                        Check::UnknownTable,
                        format!("unknown table '{name}' in FROM clause"),
                    );
                    None
                };
                scope.bindings.push(Binding {
                    name: alias.as_deref().unwrap_or(name).to_ascii_lowercase(),
                    columns,
                });
            }
            TableFactor::Derived { subquery, alias } => {
                self.query(subquery, ctes, scopes);
                scope.bindings.push(Binding {
                    name: alias.to_ascii_lowercase(),
                    columns: setexpr_column_names(&subquery.body),
                });
            }
        }
    }

    fn order_by(
        &mut self,
        order_by: &[OrderItem],
        body: &SetExpr,
        ctes: &CteMap,
        scopes: &mut Vec<Scope>,
    ) {
        if order_by.is_empty() {
            return;
        }
        let arity = setexpr_arity(body);
        // ORDER BY expressions bind against the first SELECT's scope.
        let first = first_select(body);
        for item in order_by {
            if let Expr::Literal(pdm_sql::Value::Int(n)) = &item.expr {
                if let Some(arity) = arity {
                    if *n < 1 || *n > arity as i64 {
                        self.report.emit(
                            Check::OrderByOutOfRange,
                            format!("ORDER BY ordinal {n} outside 1..={arity} (projection arity)"),
                        );
                    }
                }
            } else if let Some(sel) = first {
                // Re-enter the SELECT's scope to resolve column references.
                let mut scope = Scope {
                    bindings: Vec::new(),
                };
                for twj in &sel.from {
                    self.add_factor_silent(&twj.base, ctes, &mut scope);
                    for j in &twj.joins {
                        self.add_factor_silent(&j.factor, ctes, &mut scope);
                    }
                }
                scopes.push(scope);
                self.expr(&item.expr, ctes, scopes);
                scopes.pop();
            }
        }
    }

    /// Like [`Self::add_factor`] but without re-emitting unknown-table
    /// diagnostics (the SELECT walk already reported them).
    fn add_factor_silent(&mut self, factor: &TableFactor, ctes: &CteMap, scope: &mut Scope) {
        match factor {
            TableFactor::Table { name, alias } => {
                let key = name.to_ascii_lowercase();
                let columns = ctes
                    .get(&key)
                    .cloned()
                    .unwrap_or_else(|| self.schema.table_columns(&key).cloned());
                scope.bindings.push(Binding {
                    name: alias.as_deref().unwrap_or(name).to_ascii_lowercase(),
                    columns,
                });
            }
            TableFactor::Derived { subquery, alias } => {
                scope.bindings.push(Binding {
                    name: alias.to_ascii_lowercase(),
                    columns: setexpr_column_names(&subquery.body),
                });
            }
        }
    }

    /// Resolve an expression: columns against the scope stack (innermost
    /// scope last in `scopes`; correlation reaches outward), functions
    /// against the registry, subqueries recursively with this scope pushed.
    fn expr(&mut self, expr: &Expr, ctes: &CteMap, scopes: &mut Vec<Scope>) {
        match expr {
            Expr::Column { qualifier, name } => self.column(qualifier.as_deref(), name, scopes),
            Expr::Literal(_) => {}
            Expr::BinaryOp { left, right, .. } => {
                self.expr(left, ctes, scopes);
                self.expr(right, ctes, scopes);
            }
            Expr::Not(e) | Expr::Negate(e) | Expr::Cast { expr: e, .. } => {
                self.expr(e, ctes, scopes)
            }
            Expr::IsNull { expr, .. } => self.expr(expr, ctes, scopes),
            Expr::InList { expr, list, .. } => {
                self.expr(expr, ctes, scopes);
                for e in list {
                    self.expr(e, ctes, scopes);
                }
            }
            Expr::InSubquery { expr, query, .. } => {
                self.expr(expr, ctes, scopes);
                self.query(query, ctes, scopes);
            }
            Expr::Exists { query, .. } | Expr::ScalarSubquery(query) => {
                self.query(query, ctes, scopes);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                self.expr(expr, ctes, scopes);
                self.expr(low, ctes, scopes);
                self.expr(high, ctes, scopes);
            }
            Expr::Like { expr, pattern, .. } => {
                self.expr(expr, ctes, scopes);
                self.expr(pattern, ctes, scopes);
            }
            Expr::Function { name, args, .. } => {
                if !is_aggregate_name(&name.to_ascii_lowercase()) && !self.schema.has_function(name)
                {
                    self.report.emit(
                        Check::UnknownFunction,
                        format!("call to unknown function '{name}'"),
                    );
                }
                for a in args {
                    self.expr(a, ctes, scopes);
                }
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    self.expr(c, ctes, scopes);
                    self.expr(r, ctes, scopes);
                }
                if let Some(e) = else_expr {
                    self.expr(e, ctes, scopes);
                }
            }
        }
    }

    fn column(&mut self, qualifier: Option<&str>, name: &str, scopes: &[Scope]) {
        let lname = name.to_ascii_lowercase();
        match qualifier {
            Some(q) => {
                let lq = q.to_ascii_lowercase();
                // Innermost scope owning the qualifier wins (correlation).
                for scope in scopes.iter().rev() {
                    if let Some(b) = scope.bindings.iter().find(|b| b.name == lq) {
                        if let Some(cols) = &b.columns {
                            if !cols.contains(&lname) {
                                self.report.emit(
                                    Check::UnknownColumn,
                                    format!("column '{name}' not found in '{q}'"),
                                );
                            }
                        }
                        return;
                    }
                }
                self.report.emit(
                    Check::UnknownColumn,
                    format!("qualifier '{q}' does not name a table in scope (in '{q}.{name}')"),
                );
            }
            None => {
                let mut any_opaque = false;
                for scope in scopes.iter().rev() {
                    let mut hits = 0usize;
                    for b in &scope.bindings {
                        match &b.columns {
                            Some(cols) if cols.contains(&lname) => hits += 1,
                            None => any_opaque = true,
                            _ => {}
                        }
                    }
                    if hits > 1 {
                        self.report.emit(
                            Check::AmbiguousColumn,
                            format!("column '{name}' is ambiguous ({hits} candidate bindings)"),
                        );
                        return;
                    }
                    if hits == 1 {
                        return;
                    }
                }
                if !any_opaque {
                    self.report.emit(
                        Check::UnknownColumn,
                        format!("column '{name}' not found in any table in scope"),
                    );
                }
            }
        }
    }
}

/// Projection arity of a set expression (its first SELECT), `None` if a
/// wildcard makes it schema-dependent.
pub fn setexpr_arity(body: &SetExpr) -> Option<usize> {
    let sel = first_select(body)?;
    let mut n = 0usize;
    for item in &sel.projection {
        match item {
            pdm_sql::ast::SelectItem::Expr { .. } => n += 1,
            _ => return None,
        }
    }
    Some(n)
}

/// Output column names of a set expression, `None` if not derivable.
pub fn setexpr_column_names(body: &SetExpr) -> Option<Vec<String>> {
    let sel = first_select(body)?;
    let mut names = Vec::with_capacity(sel.projection.len());
    for item in &sel.projection {
        match item {
            pdm_sql::ast::SelectItem::Expr { expr, alias } => {
                let n = match (alias, expr) {
                    (Some(a), _) => a.clone(),
                    (None, Expr::Column { name, .. }) => name.clone(),
                    // Unnamed computed column: still occupies a slot.
                    (None, _) => String::from("?column?"),
                };
                names.push(n.to_ascii_lowercase());
            }
            _ => return None,
        }
    }
    Some(names)
}

fn first_select(body: &SetExpr) -> Option<&Select> {
    match body {
        SetExpr::Select(sel) => Some(sel),
        SetExpr::SetOp { left, .. } => first_select(left),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_sql::parser::parse_query;

    fn run(sql: &str) -> Report {
        let q = parse_query(sql).expect("parse");
        let mut report = Report::new();
        check_query(&q, &SchemaInfo::paper(), &mut report);
        report
    }

    #[test]
    fn clean_join_resolves() {
        let r = run(
            "SELECT assy.name FROM link JOIN assy ON link.right = assy.obid \
             WHERE link.left = 1",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn unknown_table_flagged() {
        let r = run("SELECT 1 FROM nonesuch");
        assert!(r.flags(Check::UnknownTable));
    }

    #[test]
    fn unknown_column_flagged() {
        let r = run("SELECT assy.nonexistent FROM assy");
        assert!(r.flags(Check::UnknownColumn));
    }

    #[test]
    fn ambiguous_unqualified_column() {
        let r = run("SELECT obid FROM assy, comp");
        assert!(r.flags(Check::AmbiguousColumn));
    }

    #[test]
    fn correlated_exists_resolves_outer_binding() {
        let r = run(
            "SELECT comp.name FROM comp WHERE EXISTS (SELECT * FROM specified_by AS s \
             JOIN spec ON s.right = spec.obid WHERE s.left = comp.obid)",
        );
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn cte_projection_visible() {
        let r = run(
            "WITH RECURSIVE rtbl (a, b) AS (SELECT obid, name FROM assy UNION \
             SELECT comp.obid, comp.name FROM rtbl JOIN link ON rtbl.a = link.left \
             JOIN comp ON link.right = comp.obid) SELECT a, b FROM rtbl",
        );
        assert!(r.is_clean(), "{r}");
        let bad =
            run("WITH RECURSIVE rtbl (a) AS (SELECT obid FROM assy) SELECT missing FROM rtbl");
        assert!(bad.flags(Check::UnknownColumn));
    }

    #[test]
    fn cte_arity_mismatch_flagged() {
        let r = run(
            "WITH RECURSIVE rtbl (a, b, c) AS (SELECT obid, name FROM assy) SELECT a FROM rtbl",
        );
        assert!(r.flags(Check::CteArityMismatch));
    }

    #[test]
    fn setop_arity_mismatch_flagged() {
        let r = run("SELECT obid, name FROM assy UNION SELECT obid FROM comp");
        assert!(r.flags(Check::SetOpArityMismatch));
    }

    #[test]
    fn aggregate_in_where_flagged() {
        let r = run("SELECT obid FROM assy WHERE COUNT(*) > 1");
        assert!(r.flags(Check::AggregateInWhere));
    }

    #[test]
    fn order_by_ordinal_bounds() {
        assert!(run("SELECT obid FROM assy ORDER BY 2").flags(Check::OrderByOutOfRange));
        assert!(run("SELECT obid FROM assy ORDER BY 1").is_clean());
    }

    #[test]
    fn unknown_function_is_warning() {
        let r = run("SELECT MYSTERY(obid) FROM assy");
        assert!(r.flags(Check::UnknownFunction));
        assert!(!r.has_errors());
    }

    #[test]
    fn lenient_mode_accepts_unknown_tables() {
        let q = parse_query("SELECT anything FROM design_view").expect("parse");
        let mut report = Report::new();
        check_query(&q, &SchemaInfo::paper().lenient(), &mut report);
        assert!(report.is_clean(), "{report}");
    }
}
