//! `pdm-analyze`: static verification of the rule → SQL compilation
//! pipeline.
//!
//! The paper's query modificator (§4.1, §5.5) splices access-rule
//! predicates into generated SQL; a bug there silently widens or narrows
//! what a user can see. This crate checks any generated [`Query`] **without
//! executing it**:
//!
//! 1. **name/scope resolution** ([`resolve`]) — every table, column,
//!    alias, CTE projection, and correlated reference binds against the
//!    schema;
//! 2. **recursive-CTE safety** ([`recursion`]) — the §5.2 `WITH RECURSIVE`
//!    shape is linear, seeded, aggregate-free, and actually descends;
//! 3. **predicate placement** ([`placement`]) — re-derives from the rule
//!    table which condition class must land in which SELECT block (§5.5
//!    steps A–D) and diffs that against the query and the modificator's own
//!    [`ModReport`](pdm_core::query::modificator::ModReport);
//! 4. **rule-table analysis** ([`rules`]) — unsatisfiable, tautological,
//!    empty-effectivity, duplicate, and subsumed rules;
//! 5. **print→parse drift** — the rendered SQL must re-parse to the same
//!    AST, or every other check is validating a fiction.
//!
//! Wired at three layers: a debug-build audit hook over every generated
//! query ([`hook`]), the `pdm-analyze` CLI auditing the fixed [`corpus`],
//! and a CI job failing on any diagnostic.

pub mod corpus;
pub mod diag;
pub mod hook;
pub mod placement;
pub mod recursion;
pub mod resolve;
pub mod rules;
pub mod schema;
pub mod statement;

pub use diag::{Check, Diagnostic, Report, Severity};
pub use schema::SchemaInfo;

use pdm_core::query::modificator::ModReport;
use pdm_core::rules::table::RuleTable;
use pdm_core::rules::ActionKind;
use pdm_sql::ast::{Query, Statement};

/// Facade bundling a schema environment with the per-query checks.
pub struct Analyzer {
    schema: SchemaInfo,
}

impl Analyzer {
    pub fn new(schema: SchemaInfo) -> Self {
        Analyzer { schema }
    }

    /// Analyzer over the strict Figure-2 paper schema.
    pub fn paper() -> Self {
        Analyzer::new(SchemaInfo::paper())
    }

    pub fn schema(&self) -> &SchemaInfo {
        &self.schema
    }

    /// Run the query-shape checks: resolution, recursion safety, and
    /// print→parse drift.
    pub fn analyze(&self, query: &Query) -> Report {
        let mut report = Report::new();
        resolve::check_query(query, &self.schema, &mut report);
        recursion::check_recursion(query, &mut report);
        self.check_drift(query, &mut report);
        report
    }

    /// [`Self::analyze`] plus predicate-placement verification against the
    /// rule table that (supposedly) modified the query.
    pub fn analyze_with_rules(
        &self,
        query: &Query,
        rules: &RuleTable,
        user: &str,
        action: ActionKind,
        mod_report: Option<&ModReport>,
    ) -> Report {
        let mut report = self.analyze(query);
        placement::check_placement(query, rules, user, action, mod_report, &mut report);
        report
    }

    /// Statement-level checks (the DML shapes the recovery path replays):
    /// target/column resolution, INSERT arity, expression analysis in the
    /// target table's scope, and statement print→parse drift.
    pub fn analyze_statement(&self, stmt: &Statement) -> Report {
        let mut report = Report::new();
        statement::check_statement(stmt, &self.schema, &mut report);
        report
    }

    /// Rule-table analysis alone (no query involved).
    pub fn analyze_rule_table(&self, rules: &RuleTable) -> Report {
        let mut report = Report::new();
        rules::check_rule_table(rules, &self.schema, &mut report);
        report
    }

    /// The rendered SQL must parse back to a structurally identical AST.
    fn check_drift(&self, query: &Query, report: &mut Report) {
        let sql = query.to_string();
        match pdm_sql::parser::parse_query(&sql) {
            Ok(reparsed) => {
                if reparsed != *query {
                    report.emit(
                        Check::PrintParseDrift,
                        "rendered SQL re-parses to a different AST".to_string(),
                    );
                }
            }
            Err(e) => report.emit(
                Check::PrintParseDrift,
                format!("rendered SQL does not re-parse: {e}"),
            ),
        }
    }
}

/// Audit the whole generator corpus: per-entry query checks, placement
/// verification where a rule table applies, and rule-table analysis.
pub fn audit_corpus() -> Vec<(corpus::CorpusEntry, Report)> {
    let analyzer = Analyzer::paper();
    corpus::build_corpus()
        .into_iter()
        .map(|entry| {
            let mut report = match &entry.rules {
                Some(rules) => {
                    let mut r = analyzer.analyze_with_rules(
                        &entry.query,
                        rules,
                        entry.user,
                        entry.action,
                        entry.report.as_ref(),
                    );
                    r.extend(analyzer.analyze_rule_table(rules));
                    r
                }
                None => analyzer.analyze(&entry.query),
            };
            // The stored SQL must match what the AST renders now.
            if entry.sql != entry.query.to_string() {
                report.emit(
                    Check::PrintParseDrift,
                    format!("corpus entry '{}' SQL text is stale", entry.name),
                );
            }
            (entry, report)
        })
        .collect()
}

/// Audit the recovery-path statement corpus: every DML shape the WAL logs
/// and recovery re-executes must be statically clean, including
/// statement-level print→parse round-tripping (recovery replays the
/// rendered SQL).
pub fn audit_statement_corpus() -> Vec<(corpus::StatementEntry, Report)> {
    let analyzer = Analyzer::paper();
    corpus::recovery_statement_corpus()
        .into_iter()
        .map(|entry| {
            let mut report = analyzer.analyze_statement(&entry.statement);
            if entry.sql != entry.statement.to_string() {
                report.emit(
                    Check::PrintParseDrift,
                    format!("statement corpus entry '{}' SQL text is stale", entry.name),
                );
            }
            (entry, report)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_corpus_audit_is_clean() {
        for (entry, report) in audit_statement_corpus() {
            assert!(
                report.is_clean(),
                "statement corpus entry '{}' has diagnostics:\n{report}\nSQL: {}",
                entry.name,
                entry.sql
            );
        }
    }

    #[test]
    fn corpus_audit_is_clean() {
        for (entry, report) in audit_corpus() {
            assert!(
                report.is_clean(),
                "corpus entry '{}' has diagnostics:\n{report}\nSQL: {}",
                entry.name,
                entry.sql
            );
        }
    }

    #[test]
    fn drift_check_catches_unrenderable_query() {
        // A function whose name contains a space renders as SQL that cannot
        // re-parse — the drift check must see it.
        use pdm_sql::ast::{Expr, Select, SelectItem, SetExpr, TableWithJoins};
        let mut sel = Select::new();
        sel.projection = vec![SelectItem::expr(Expr::Function {
            name: "no such fn".into(),
            args: vec![],
            star: false,
        })];
        sel.from.push(TableWithJoins::table("assy"));
        let q = Query {
            with: None,
            body: SetExpr::Select(Box::new(sel)),
            order_by: Vec::new(),
            limit: None,
        };
        let report = Analyzer::new(SchemaInfo::paper().lenient()).analyze(&q);
        assert!(report.flags(Check::PrintParseDrift), "{report}");
    }
}
