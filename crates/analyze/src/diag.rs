//! Diagnostics model: the check registry, severities, and rendering
//! (human-readable and machine-readable JSON).
//!
//! Every analyzer finding is a [`Diagnostic`] tagged with the [`Check`]
//! that produced it. Checks carry a stable kebab-case id (the CI corpus
//! audit keys on these) and a default [`Severity`]: `Error` diagnostics
//! fail the audit, `Warning`s are surfaced but non-fatal.

use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The analyzer's check registry. Each variant is one verifiable property
/// of a generated query (or of the rule table it was compiled from).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Check {
    // --- name/scope resolution -------------------------------------------
    /// A FROM clause references a table that is neither in the schema nor
    /// a CTE/alias in scope.
    UnknownTable,
    /// A column reference does not resolve against its binding's columns.
    UnknownColumn,
    /// An unqualified column name resolves in more than one FROM binding.
    AmbiguousColumn,
    /// A function call names a function neither built in nor registered.
    UnknownFunction,
    /// A CTE declares a column list whose arity differs from its body's
    /// projection.
    CteArityMismatch,
    /// The SELECT blocks of a set operation project different arities.
    SetOpArityMismatch,
    /// An aggregate function call appears directly in a WHERE clause.
    AggregateInWhere,
    /// An ORDER BY ordinal is outside 1..=projection arity.
    OrderByOutOfRange,
    // --- recursive-CTE safety --------------------------------------------
    /// Every term of a recursive CTE references the CTE: no seed term, the
    /// recursion has no base case.
    NoSeedTerm,
    /// A recursive term references the CTE more than once (SQL:1999 allows
    /// only linear recursion).
    NonLinearRecursion,
    /// A recursive term uses an aggregate or GROUP BY/HAVING.
    RecursiveAggregate,
    /// A recursive term uses SELECT DISTINCT.
    RecursiveDistinct,
    /// A subquery inside a recursive term references the CTE.
    RecursiveSubqueryRef,
    /// A recursive term never joins the recursion table to another table —
    /// the recursion cannot descend the link structure and will not
    /// terminate on any non-empty result.
    RecursiveNoDescent,
    /// Terms of a recursive CTE are combined with INTERSECT/EXCEPT.
    NonUnionRecursion,
    /// Terms are combined with UNION ALL: on DAG-shaped structures with
    /// shared subtrees the recursion may revisit nodes unboundedly.
    UnionAllRecursion,
    // --- predicate placement (§4.1 / §5.5 steps A–D) ---------------------
    /// A predicate the rule table mandates for a block is missing there.
    MissingPredicate,
    /// A rule predicate appears in a SELECT block it must not be in (the
    /// wrong-block splice the paper's ModReport counters cannot catch).
    MisplacedPredicate,
    /// The modificator's ModReport disagrees with what is actually in the
    /// query.
    ReportMismatch,
    // --- rule-table analysis ---------------------------------------------
    /// A rule's condition is unsatisfiable: it can never permit anything.
    UnsatisfiableRule,
    /// A rule's condition is a tautology: it permits everything.
    TautologicalRule,
    /// An effectivity interval in a rule is empty (lower bound above upper).
    EmptyEffectivity,
    /// A rule permits a subset of what another relevant rule already
    /// permits (rules are OR-ed, so the narrower rule is dead).
    SubsumedRule,
    /// Two rules are exact duplicates.
    DuplicateRule,
    // --- pipeline integrity ----------------------------------------------
    /// Rendering a query to SQL and re-parsing it did not reproduce the
    /// same AST (printer/parser drift).
    PrintParseDrift,
    // --- statement-level DML (the recovery replay path) -------------------
    /// An INSERT row's value count disagrees with its column list (or the
    /// target table's arity).
    DmlArityMismatch,
}

impl Check {
    /// Every check, in registry order.
    pub const ALL: [Check; 26] = [
        Check::UnknownTable,
        Check::UnknownColumn,
        Check::AmbiguousColumn,
        Check::UnknownFunction,
        Check::CteArityMismatch,
        Check::SetOpArityMismatch,
        Check::AggregateInWhere,
        Check::OrderByOutOfRange,
        Check::NoSeedTerm,
        Check::NonLinearRecursion,
        Check::RecursiveAggregate,
        Check::RecursiveDistinct,
        Check::RecursiveSubqueryRef,
        Check::RecursiveNoDescent,
        Check::NonUnionRecursion,
        Check::UnionAllRecursion,
        Check::MissingPredicate,
        Check::MisplacedPredicate,
        Check::ReportMismatch,
        Check::UnsatisfiableRule,
        Check::TautologicalRule,
        Check::EmptyEffectivity,
        Check::SubsumedRule,
        Check::DuplicateRule,
        Check::PrintParseDrift,
        Check::DmlArityMismatch,
    ];

    /// Stable kebab-case identifier (CI and JSON output key on these).
    pub fn id(self) -> &'static str {
        match self {
            Check::UnknownTable => "unknown-table",
            Check::UnknownColumn => "unknown-column",
            Check::AmbiguousColumn => "ambiguous-column",
            Check::UnknownFunction => "unknown-function",
            Check::CteArityMismatch => "cte-arity-mismatch",
            Check::SetOpArityMismatch => "setop-arity-mismatch",
            Check::AggregateInWhere => "aggregate-in-where",
            Check::OrderByOutOfRange => "order-by-out-of-range",
            Check::NoSeedTerm => "no-seed-term",
            Check::NonLinearRecursion => "non-linear-recursion",
            Check::RecursiveAggregate => "recursive-aggregate",
            Check::RecursiveDistinct => "recursive-distinct",
            Check::RecursiveSubqueryRef => "recursive-subquery-ref",
            Check::RecursiveNoDescent => "recursive-no-descent",
            Check::NonUnionRecursion => "non-union-recursion",
            Check::UnionAllRecursion => "union-all-recursion",
            Check::MissingPredicate => "missing-predicate",
            Check::MisplacedPredicate => "misplaced-predicate",
            Check::ReportMismatch => "report-mismatch",
            Check::UnsatisfiableRule => "unsatisfiable-rule",
            Check::TautologicalRule => "tautological-rule",
            Check::EmptyEffectivity => "empty-effectivity",
            Check::SubsumedRule => "subsumed-rule",
            Check::DuplicateRule => "duplicate-rule",
            Check::PrintParseDrift => "print-parse-drift",
            Check::DmlArityMismatch => "dml-arity-mismatch",
        }
    }

    /// One-line description shown by `pdm-analyze --list-checks`.
    pub fn description(self) -> &'static str {
        match self {
            Check::UnknownTable => "every table reference resolves against schema, CTEs, aliases",
            Check::UnknownColumn => "every column reference resolves against its binding",
            Check::AmbiguousColumn => "unqualified columns resolve in exactly one binding",
            Check::UnknownFunction => "function calls name a registered or built-in function",
            Check::CteArityMismatch => "CTE column lists match their body's projection arity",
            Check::SetOpArityMismatch => "all branches of a set operation project the same arity",
            Check::AggregateInWhere => "no aggregate call directly inside a WHERE clause",
            Check::OrderByOutOfRange => "ORDER BY ordinals stay within the projection",
            Check::NoSeedTerm => "a recursive CTE has at least one non-recursive seed term",
            Check::NonLinearRecursion => "each recursive term references the CTE exactly once",
            Check::RecursiveAggregate => "no aggregate/GROUP BY inside a recursive term",
            Check::RecursiveDistinct => "no SELECT DISTINCT inside a recursive term",
            Check::RecursiveSubqueryRef => "no subquery over the CTE inside a recursive term",
            Check::RecursiveNoDescent => "recursive terms join the CTE to a link table (descent)",
            Check::NonUnionRecursion => "recursive terms are combined with UNION",
            Check::UnionAllRecursion => "UNION ALL recursion may not terminate on DAGs",
            Check::MissingPredicate => "every mandated rule predicate is present in its block",
            Check::MisplacedPredicate => "no rule predicate sits in a block it is banned from",
            Check::ReportMismatch => "the ModReport matches the query's actual injections",
            Check::UnsatisfiableRule => "no rule condition is unsatisfiable",
            Check::TautologicalRule => "no rule condition is a tautology",
            Check::EmptyEffectivity => "no rule carries an empty effectivity interval",
            Check::SubsumedRule => "no rule is subsumed by another relevant rule",
            Check::DuplicateRule => "no two rules are identical",
            Check::PrintParseDrift => "rendered SQL re-parses to the identical AST",
            Check::DmlArityMismatch => "INSERT rows match their column list / table arity",
        }
    }

    /// Default severity of diagnostics this check emits.
    pub fn severity(self) -> Severity {
        match self {
            Check::UnknownFunction
            | Check::UnionAllRecursion
            | Check::TautologicalRule
            | Check::SubsumedRule
            | Check::DuplicateRule => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub check: Check,
    pub severity: Severity,
    pub message: String,
    /// Human-readable location: a [`BlockId`](pdm_core::query::modificator::BlockId)
    /// rendering, a rule index, or empty for whole-query findings.
    pub location: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}",
            self.severity,
            self.check.id(),
            self.message
        )?;
        if !self.location.is_empty() {
            write!(f, " (at {})", self.location)?;
        }
        Ok(())
    }
}

/// Accumulated diagnostics of one analysis run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new() -> Self {
        Report::default()
    }

    /// Emit a diagnostic with the check's default severity.
    pub fn emit(&mut self, check: Check, message: impl Into<String>) {
        self.emit_at(check, message, String::new());
    }

    /// Emit a diagnostic pinned to a location.
    pub fn emit_at(
        &mut self,
        check: Check,
        message: impl Into<String>,
        location: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            check,
            severity: check.severity(),
            message: message.into(),
            location: location.into(),
        });
    }

    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Diagnostics produced by `check`.
    pub fn of_check(&self, check: Check) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.check == check)
            .collect()
    }

    /// True if at least one diagnostic of `check` was emitted — the
    /// predicate the mutation-sensitivity tests assert on.
    pub fn flags(&self, check: Check) -> bool {
        self.diagnostics.iter().any(|d| d.check == check)
    }

    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Machine-readable rendering: a JSON array of diagnostic objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"check\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"location\":\"{}\"}}",
                d.check.id(),
                d.severity,
                json_escape(&d.message),
                json_escape(&d.location)
            ));
        }
        out.push(']');
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "clean");
        }
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Minimal JSON string escaping.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_kebab() {
        let mut seen = std::collections::HashSet::new();
        for c in Check::ALL {
            assert!(seen.insert(c.id()), "duplicate check id {}", c.id());
            assert!(
                c.id()
                    .chars()
                    .all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit() || ch == '-'),
                "non-kebab id {}",
                c.id()
            );
            assert!(!c.description().is_empty());
        }
        assert_eq!(seen.len(), Check::ALL.len());
    }

    #[test]
    fn report_severity_partition() {
        let mut r = Report::new();
        r.emit(Check::UnknownColumn, "no such column");
        r.emit(Check::SubsumedRule, "redundant");
        assert!(r.has_errors());
        assert_eq!(r.errors().count(), 1);
        assert!(r.flags(Check::SubsumedRule));
        assert!(!r.flags(Check::NoSeedTerm));
    }

    #[test]
    fn json_escapes_specials() {
        let mut r = Report::new();
        r.emit(Check::UnknownColumn, "bad \"name\"\nhere");
        let json = r.to_json();
        assert!(json.contains("\\\"name\\\""));
        assert!(json.contains("\\n"));
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
    }
}
