//! Statement-level checks for the SQL the durability layer logs and crash
//! recovery re-executes.
//!
//! Recovery replays whole *statements* (the checkout-flag UPDATEs, the
//! stale-grant sweep, and whatever DML the workload committed), not just
//! SELECT queries — so the corpus audit must cover the statement shapes
//! too. The expression-level work (column/function resolution, aggregate
//! misuse) is delegated to the query resolver by wrapping the statement's
//! expressions in a synthetic single-table SELECT; on top of that come the
//! DML-specific checks: target-table existence, assignment/INSERT column
//! membership, INSERT arity, and statement-level print→parse drift (a
//! statement that does not round-trip would be logged as SQL the recovery
//! replay cannot parse back).

use pdm_sql::ast::{Expr, Query, Select, SelectItem, SetExpr, Statement, TableWithJoins};

use crate::diag::{Check, Report};
use crate::resolve;
use crate::schema::SchemaInfo;

/// Run every statement-level check. Query statements get the full query
/// analysis; DML gets target/column/arity checks plus expression
/// resolution in the target table's scope.
pub fn check_statement(stmt: &Statement, schema: &SchemaInfo, report: &mut Report) {
    match stmt {
        Statement::Query(q) => {
            resolve::check_query(q, schema, report);
            crate::recursion::check_recursion(q, report);
        }
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            if require_table("INSERT", table, schema, report) {
                let table_cols = schema.table_columns(&table.to_lowercase()).cloned();
                if let (Some(cols), Some(tc)) = (columns, &table_cols) {
                    for c in cols {
                        if !tc.contains(&c.to_lowercase()) {
                            report.emit(
                                Check::UnknownColumn,
                                format!("INSERT column '{c}' is not in table '{table}'"),
                            );
                        }
                    }
                }
                let expected = columns
                    .as_ref()
                    .map(|c| c.len())
                    .or_else(|| table_cols.as_ref().map(|c| c.len()));
                for (i, row) in rows.iter().enumerate() {
                    if let Some(n) = expected {
                        if row.len() != n {
                            report.emit(
                                Check::DmlArityMismatch,
                                format!(
                                    "INSERT row {i} has {} value(s), expected {n} for '{table}'",
                                    row.len()
                                ),
                            );
                        }
                    }
                }
                scope_check(
                    table,
                    rows.iter().flatten().cloned().collect(),
                    None,
                    schema,
                    report,
                );
            }
        }
        Statement::Update {
            table,
            assignments,
            predicate,
        } => {
            if require_table("UPDATE", table, schema, report) {
                if let Some(tc) = schema.table_columns(&table.to_lowercase()) {
                    for (col, _) in assignments {
                        if !tc.contains(&col.to_lowercase()) {
                            report.emit(
                                Check::UnknownColumn,
                                format!("UPDATE assigns unknown column '{col}' in '{table}'"),
                            );
                        }
                    }
                }
                scope_check(
                    table,
                    assignments.iter().map(|(_, e)| e.clone()).collect(),
                    predicate.clone(),
                    schema,
                    report,
                );
            }
        }
        Statement::Delete { table, predicate } => {
            if require_table("DELETE", table, schema, report) {
                scope_check(table, Vec::new(), predicate.clone(), schema, report);
            }
        }
        Statement::CreateIndex { table, column } => {
            if require_table("CREATE INDEX", table, schema, report) {
                if let Some(tc) = schema.table_columns(&table.to_lowercase()) {
                    if !tc.contains(&column.to_lowercase()) {
                        report.emit(
                            Check::UnknownColumn,
                            format!("CREATE INDEX on unknown column '{column}' of '{table}'"),
                        );
                    }
                }
            }
        }
        Statement::CreateView { query, .. } => {
            resolve::check_query(query, schema, report);
            crate::recursion::check_recursion(query, report);
        }
        // Definitions introduce names rather than referencing them.
        Statement::CreateTable { .. } | Statement::DropTable { .. } => {}
    }
    check_statement_drift(stmt, report);
}

/// The target of a DML statement must be a base table (or a view / unknown
/// binding in lenient mode). Returns whether expression checks make sense.
fn require_table(verb: &str, table: &str, schema: &SchemaInfo, report: &mut Report) -> bool {
    let t = table.to_lowercase();
    if schema.has_table(&t) || schema.has_view(&t) || schema.is_lenient() {
        return true;
    }
    report.emit(
        Check::UnknownTable,
        format!("{verb} targets unknown table '{table}'"),
    );
    false
}

/// Resolve a statement's expressions by wrapping them in a synthetic
/// `SELECT <exprs> FROM <table> WHERE <predicate>` and reusing the query
/// resolver — so column references, function calls, subqueries, and
/// aggregate misuse in DML get exactly the SELECT-side treatment.
fn scope_check(
    table: &str,
    exprs: Vec<Expr>,
    predicate: Option<Expr>,
    schema: &SchemaInfo,
    report: &mut Report,
) {
    let mut sel = Select::new();
    sel.projection = if exprs.is_empty() {
        vec![SelectItem::Wildcard]
    } else {
        exprs.into_iter().map(SelectItem::expr).collect()
    };
    sel.from.push(TableWithJoins::table(table));
    sel.where_clause = predicate;
    let q = Query {
        with: None,
        body: SetExpr::Select(Box::new(sel)),
        order_by: Vec::new(),
        limit: None,
    };
    resolve::check_query(&q, schema, report);
}

/// A statement the WAL will log must survive print → parse: recovery
/// replays the *rendered* SQL, so drift here corrupts the replay, not just
/// a report.
fn check_statement_drift(stmt: &Statement, report: &mut Report) {
    let sql = stmt.to_string();
    match pdm_sql::parser::parse_statement(&sql) {
        Ok(reparsed) => {
            if reparsed != *stmt {
                report.emit(
                    Check::PrintParseDrift,
                    "rendered statement re-parses to a different AST".to_string(),
                );
            }
        }
        Err(e) => report.emit(
            Check::PrintParseDrift,
            format!("rendered statement does not re-parse: {e}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_sql::parser::parse_statement;

    fn check(sql: &str) -> Report {
        let stmt = parse_statement(sql).expect("test statement must parse");
        let mut report = Report::new();
        check_statement(&stmt, &SchemaInfo::paper(), &mut report);
        report
    }

    #[test]
    fn recovery_path_shapes_are_clean() {
        for sql in [
            "UPDATE assy SET checkedout = TRUE WHERE obid IN (1, 2, 3)",
            "UPDATE comp SET checkedout = FALSE WHERE obid IN (10, 11)",
            "INSERT INTO spec VALUES ('spec', 900001, 'chaos')",
            "DELETE FROM spec WHERE obid = 900001",
        ] {
            let r = check(sql);
            assert!(r.is_clean(), "{sql}: {r}");
        }
    }

    #[test]
    fn unknown_target_table_is_flagged() {
        let r = check("UPDATE nowhere SET x = 1");
        assert!(r.flags(Check::UnknownTable), "{r}");
    }

    #[test]
    fn unknown_assignment_column_is_flagged() {
        let r = check("UPDATE assy SET no_such_col = 1 WHERE obid = 1");
        assert!(r.flags(Check::UnknownColumn), "{r}");
    }

    #[test]
    fn unknown_predicate_column_is_flagged() {
        let r = check("DELETE FROM comp WHERE ghost = 4");
        assert!(r.flags(Check::UnknownColumn), "{r}");
    }

    #[test]
    fn insert_arity_mismatch_is_flagged() {
        // spec has 3 columns; 2 values.
        let r = check("INSERT INTO spec VALUES ('spec', 1)");
        assert!(r.flags(Check::DmlArityMismatch), "{r}");
    }

    #[test]
    fn insert_unknown_column_list_is_flagged() {
        let r = check("INSERT INTO spec (type, missing) VALUES ('spec', 1)");
        assert!(r.flags(Check::UnknownColumn), "{r}");
    }

    #[test]
    fn aggregate_in_dml_predicate_is_flagged() {
        let r = check("DELETE FROM spec WHERE COUNT(obid) > 1");
        assert!(r.flags(Check::AggregateInWhere), "{r}");
    }
}
