//! Rule-table analysis: constant folding, interval reasoning, and
//! satisfiability checks over [`RowPredicate`] conditions.
//!
//! Rules only *permit* (the system is negative-biased, §3.1 footnote 6), so
//! defective rules fail silently at runtime: an unsatisfiable condition
//! permits nothing, a tautological one permits everything, a subsumed rule
//! is dead weight in every OR-disjunction the modificator builds. None of
//! those surface as SQL errors — only this static pass catches them.
//!
//! The engine enumerates truth assignments over the predicate's distinct
//! atoms (≤ 2^12) and prunes assignments that are inconsistent under
//! per-attribute domain reasoning: numeric interval tracking for
//! comparisons, equality/exclusion sets for text and booleans, LIKE
//! matching against forced constants, and constant evaluation of stored
//! functions through the same registry the server uses. The analysis is
//! *modulo NULL*: a predicate is "satisfiable" if some non-NULL attribute
//! valuation satisfies it. Unsat-over-reals implies unsat-over-ints, so
//! every `UnsatisfiableRule` diagnostic is sound.

use pdm_sql::Value;

use pdm_core::rules::condition::{CmpOp, Condition, FnArg, RowPredicate};
use pdm_core::rules::like_match;
use pdm_core::rules::table::RuleTable;
use pdm_core::rules::Rule;

use crate::diag::{Check, Report};
use crate::schema::SchemaInfo;

/// Atom-count ceiling for assignment enumeration (2^12 = 4096 cases).
const MAX_ATOMS: usize = 12;

/// Analyze every rule of the table, plus pairwise duplicate/subsumption
/// checks.
pub fn check_rule_table(rules: &RuleTable, schema: &SchemaInfo, report: &mut Report) {
    let all: Vec<&Rule> = rules.iter().collect();
    for (i, rule) in all.iter().enumerate() {
        check_rule(i, rule, schema, report);
    }
    for (i, a) in all.iter().enumerate() {
        for (j, b) in all.iter().enumerate() {
            if i < j
                && a.user == b.user
                && a.action == b.action
                && a.object_type == b.object_type
                && a.condition == b.condition
            {
                report.emit_at(
                    Check::DuplicateRule,
                    format!("rule #{j} duplicates rule #{i} ({})", b.translated_sql),
                    format!("rule #{j}"),
                );
            }
        }
    }
    check_subsumption(&all, report);
}

fn check_rule(idx: usize, rule: &Rule, schema: &SchemaInfo, report: &mut Report) {
    let loc = format!("rule #{idx} on '{}'", rule.object_type);
    match &rule.condition {
        Condition::Row(pred)
        | Condition::ForAllRows {
            predicate: pred, ..
        } => {
            check_effectivity(pred, &loc, report);
            let mut atoms = Atoms::default();
            let form = intern(pred, &mut atoms);
            let sat = feasible(&form, &atoms);
            if sat == Some(false) {
                report.emit_at(
                    Check::UnsatisfiableRule,
                    format!(
                        "condition can never hold — the rule permits nothing: {}",
                        rule.translated_sql
                    ),
                    loc.clone(),
                );
            } else if sat == Some(true)
                && feasible(&Form::Not(Box::new(form)), &atoms) == Some(false)
            {
                report.emit_at(
                    Check::TautologicalRule,
                    format!(
                        "condition always holds — the rule permits everything: {}",
                        rule.translated_sql
                    ),
                    loc.clone(),
                );
            }
        }
        Condition::ExistsStructure {
            object_table,
            relation_table,
            related_table,
        } => {
            if !schema.is_lenient() {
                for t in [object_table, relation_table, related_table] {
                    if !schema.has_table(t) && !schema.has_view(t) {
                        report.emit_at(
                            Check::UnknownTable,
                            format!("∃structure rule references unknown table '{t}'"),
                            loc.clone(),
                        );
                    }
                }
            }
        }
        Condition::TreeAggregate {
            func, op, value, ..
        } => {
            // A COUNT aggregate ranges over [0, ∞): comparisons against
            // negative bounds fold to constants.
            if *func == pdm_core::rules::condition::AggFunc::Count {
                let v = *value;
                let never = match op {
                    CmpOp::Lt => v <= 0.0,
                    CmpOp::LtEq | CmpOp::Eq => v < 0.0,
                    _ => false,
                };
                let always = match op {
                    CmpOp::GtEq => v <= 0.0,
                    CmpOp::Gt | CmpOp::NotEq => v < 0.0,
                    _ => false,
                };
                if never {
                    report.emit_at(
                        Check::UnsatisfiableRule,
                        format!("COUNT(*) {op} {v} can never hold (counts are non-negative)"),
                        loc.clone(),
                    );
                } else if always {
                    report.emit_at(
                        Check::TautologicalRule,
                        format!("COUNT(*) {op} {v} always holds (counts are non-negative)"),
                        loc.clone(),
                    );
                }
            }
        }
    }
}

/// Flag `overlaps_interval(.., .., lo, hi)` atoms whose constant selection
/// interval is empty — the §3.1 example-3 effectivity check can never pass.
fn check_effectivity(pred: &RowPredicate, loc: &str, report: &mut Report) {
    walk(pred, &mut |p| {
        if let RowPredicate::StoredFn { name, args } = p {
            if name.eq_ignore_ascii_case("overlaps_interval") && args.len() == 4 {
                let bound = |a: &FnArg| match a {
                    FnArg::Const(Value::Int(i)) => Some(*i as f64),
                    FnArg::Const(Value::Float(f)) => Some(*f),
                    _ => None,
                };
                if let (Some(lo), Some(hi)) = (bound(&args[2]), bound(&args[3])) {
                    if lo > hi {
                        report.emit_at(
                            Check::EmptyEffectivity,
                            format!("effectivity selection interval [{lo}, {hi}] is empty"),
                            loc.to_string(),
                        );
                    }
                }
            }
        }
    });
}

fn walk<'a>(pred: &'a RowPredicate, f: &mut impl FnMut(&'a RowPredicate)) {
    f(pred);
    match pred {
        RowPredicate::And(a, b) | RowPredicate::Or(a, b) => {
            walk(a, f);
            walk(b, f);
        }
        RowPredicate::Not(p) => walk(p, f),
        _ => {}
    }
}

/// Pairwise subsumption: rules are OR-ed when relevant together, so if
/// rule A applies whenever B does and A's condition is implied by B's,
/// B never permits anything A would not — B is dead.
fn check_subsumption(all: &[&Rule], report: &mut Report) {
    for (bi, b) in all.iter().enumerate() {
        for (ai, a) in all.iter().enumerate() {
            if ai == bi || a.object_type != b.object_type {
                continue;
            }
            // A must cover B's applicability...
            let user_covers = a.user == pdm_core::rules::UserPattern::Any || a.user == b.user;
            let action_covers =
                a.action == pdm_core::rules::ActionKind::Access || a.action == b.action;
            if !user_covers || !action_covers {
                continue;
            }
            // ...and both must be Row-class (tree conditions are evaluated
            // against the whole tree; implication reasoning does not apply).
            let (Condition::Row(pa), Condition::Row(pb)) = (&a.condition, &b.condition) else {
                continue;
            };
            if pa == pb && ai > bi {
                continue; // identical conditions: report only one direction
            }
            // B ⊆ A  ⟺  B ∧ ¬A unsatisfiable (and B itself satisfiable).
            let mut atoms = Atoms::default();
            let fb = intern(pb, &mut atoms);
            let fa = intern(pa, &mut atoms);
            let b_and_not_a = Form::And(Box::new(fb.clone()), Box::new(Form::Not(Box::new(fa))));
            if feasible(&fb, &atoms) == Some(true) && feasible(&b_and_not_a, &atoms) == Some(false)
            {
                report.emit_at(
                    Check::SubsumedRule,
                    format!(
                        "rule #{bi} ({}) is subsumed by rule #{ai} ({}) — it never permits anything new",
                        b.translated_sql, a.translated_sql
                    ),
                    format!("rule #{bi}"),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Formula construction and satisfiability
// ---------------------------------------------------------------------------

/// Leaf atom kinds, interned for deduplication.
#[derive(Debug, Clone, PartialEq)]
enum Atom {
    Cmp {
        attr: String,
        op: CmpOp,
        value: Value,
    },
    CmpAttrs {
        left: String,
        op: CmpOp,
        right: String,
    },
    Call {
        name: String,
        args: Vec<FnArg>,
    },
    Like {
        attr: String,
        pattern: String,
    },
}

#[derive(Debug, Default)]
struct Atoms(Vec<Atom>);

impl Atoms {
    fn intern(&mut self, atom: Atom) -> usize {
        if let Some(i) = self.0.iter().position(|a| *a == atom) {
            i
        } else {
            self.0.push(atom);
            self.0.len() - 1
        }
    }
}

/// A boolean formula over interned atoms.
#[derive(Debug, Clone)]
enum Form {
    Atom(usize),
    And(Box<Form>, Box<Form>),
    Or(Box<Form>, Box<Form>),
    Not(Box<Form>),
}

fn intern(pred: &RowPredicate, atoms: &mut Atoms) -> Form {
    match pred {
        RowPredicate::Compare { attr, op, value } => Form::Atom(atoms.intern(Atom::Cmp {
            attr: attr.clone(),
            op: *op,
            value: value.clone(),
        })),
        RowPredicate::CompareAttrs { left, op, right } => {
            Form::Atom(atoms.intern(Atom::CmpAttrs {
                left: left.clone(),
                op: *op,
                right: right.clone(),
            }))
        }
        RowPredicate::StoredFn { name, args } => Form::Atom(atoms.intern(Atom::Call {
            name: name.to_ascii_lowercase(),
            args: args.clone(),
        })),
        RowPredicate::Like {
            attr,
            pattern,
            negated,
        } => {
            let a = Form::Atom(atoms.intern(Atom::Like {
                attr: attr.clone(),
                pattern: pattern.clone(),
            }));
            if *negated {
                Form::Not(Box::new(a))
            } else {
                a
            }
        }
        RowPredicate::And(a, b) => {
            Form::And(Box::new(intern(a, atoms)), Box::new(intern(b, atoms)))
        }
        RowPredicate::Or(a, b) => Form::Or(Box::new(intern(a, atoms)), Box::new(intern(b, atoms))),
        RowPredicate::Not(p) => Form::Not(Box::new(intern(p, atoms))),
    }
}

fn eval(form: &Form, assignment: &[bool]) -> bool {
    match form {
        Form::Atom(i) => assignment[*i],
        Form::And(a, b) => eval(a, assignment) && eval(b, assignment),
        Form::Or(a, b) => eval(a, assignment) || eval(b, assignment),
        Form::Not(a) => !eval(a, assignment),
    }
}

/// Is the formula satisfiable by a consistent atom assignment?
/// `None` = undecided (atom count above the enumeration ceiling).
fn feasible(form: &Form, atoms: &Atoms) -> Option<bool> {
    let n = atoms.0.len();
    if n > MAX_ATOMS {
        return None;
    }
    let registry = pdm_core::functions::client_registry();
    for bits in 0u32..(1u32 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
        if eval(form, &assignment) && consistent(atoms, &assignment, &registry) {
            return Some(true);
        }
    }
    Some(false)
}

/// Can all atoms simultaneously take their assigned truth values for *some*
/// non-NULL attribute valuation?
fn consistent(
    atoms: &Atoms,
    assignment: &[bool],
    registry: &pdm_sql::functions::FunctionRegistry,
) -> bool {
    use std::collections::HashMap;
    let mut num: HashMap<&str, NumDomain> = HashMap::new();
    let mut text: HashMap<&str, TextDomain> = HashMap::new();
    let mut boolean: HashMap<&str, BoolDomain> = HashMap::new();

    for (atom, &truth) in atoms.0.iter().zip(assignment) {
        match atom {
            Atom::Cmp { attr, op, value } => match value {
                Value::Int(i) => {
                    if !num.entry(attr).or_default().apply(*op, *i as f64, truth) {
                        return false;
                    }
                }
                Value::Float(f) => {
                    if !num.entry(attr).or_default().apply(*op, *f, truth) {
                        return false;
                    }
                }
                Value::Text(s) => {
                    let d = text.entry(attr).or_default();
                    let ok = match (op, truth) {
                        (CmpOp::Eq, true) | (CmpOp::NotEq, false) => d.force_eq(s),
                        (CmpOp::Eq, false) | (CmpOp::NotEq, true) => {
                            d.neq.push(s.clone());
                            true
                        }
                        // Lexicographic range reasoning on text is skipped;
                        // such atoms are treated as independent.
                        _ => true,
                    };
                    if !ok {
                        return false;
                    }
                }
                Value::Bool(b) => {
                    let d = boolean.entry(attr).or_default();
                    let want = match (op, truth) {
                        (CmpOp::Eq, t) => Some(if t { *b } else { !*b }),
                        (CmpOp::NotEq, t) => Some(if t { !*b } else { *b }),
                        _ => None,
                    };
                    if let Some(v) = want {
                        if !d.restrict(v) {
                            return false;
                        }
                    }
                }
                Value::Null => {
                    // `attr op NULL` is never true in SQL; modulo-NULL it can
                    // never be satisfied.
                    if truth {
                        return false;
                    }
                }
            },
            Atom::CmpAttrs { left, op, right } => {
                if left.eq_ignore_ascii_case(right) {
                    // x op x folds to a constant.
                    let folds_true = matches!(op, CmpOp::Eq | CmpOp::LtEq | CmpOp::GtEq);
                    if truth != folds_true {
                        return false;
                    }
                }
                // Distinct attributes: relational reasoning is out of scope;
                // treated as independently satisfiable.
            }
            Atom::Call { name, args } => {
                let consts: Option<Vec<Value>> = args
                    .iter()
                    .map(|a| match a {
                        FnArg::Const(v) => Some(v.clone()),
                        FnArg::Attr(_) => None,
                    })
                    .collect();
                if let Some(values) = consts {
                    // All-constant call: fold it through the real registry.
                    match registry.call(name, &values) {
                        Ok(Value::Bool(b)) => {
                            if truth != b {
                                return false;
                            }
                        }
                        Ok(_) => {
                            // NULL / non-boolean result is never "true".
                            if truth {
                                return false;
                            }
                        }
                        Err(_) => {}
                    }
                } else if name == "overlaps_interval" && args.len() == 4 {
                    // Partially-constant effectivity check: an empty constant
                    // selection interval can never overlap anything.
                    let bound = |a: &FnArg| match a {
                        FnArg::Const(Value::Int(i)) => Some(*i as f64),
                        FnArg::Const(Value::Float(f)) => Some(*f),
                        _ => None,
                    };
                    if let (Some(lo), Some(hi)) = (bound(&args[2]), bound(&args[3])) {
                        if lo > hi && truth {
                            return false;
                        }
                    }
                }
            }
            Atom::Like { attr, pattern } => {
                let d = text.entry(attr).or_default();
                // A wildcard-free pattern is an equality constraint.
                if !pattern.contains('%') && !pattern.contains('_') {
                    if truth {
                        if !d.force_eq(pattern) {
                            return false;
                        }
                    } else {
                        d.neq.push(pattern.clone());
                    }
                } else {
                    d.likes.push((pattern.clone(), truth));
                }
            }
        }
    }

    num.values().all(NumDomain::consistent)
        && text.values().all(TextDomain::consistent)
        && boolean.values().all(BoolDomain::consistent)
        // One attribute cannot be forced to both a number and a string.
        && !num.iter().any(|(attr, d)| {
            d.eq.is_some() && text.get(attr).is_some_and(|t| t.eq.is_some())
        })
}

/// Interval domain of one numeric attribute.
struct NumDomain {
    lo: f64,
    lo_strict: bool,
    hi: f64,
    hi_strict: bool,
    eq: Option<f64>,
    neq: Vec<f64>,
}

impl Default for NumDomain {
    fn default() -> Self {
        NumDomain {
            lo: f64::NEG_INFINITY,
            lo_strict: false,
            hi: f64::INFINITY,
            hi_strict: false,
            eq: None,
            neq: Vec::new(),
        }
    }
}

impl NumDomain {
    /// Apply `attr op v` (or its negation when `truth` is false).
    /// Returns false on an immediate equality conflict.
    fn apply(&mut self, op: CmpOp, v: f64, truth: bool) -> bool {
        let op = if truth { op } else { negate(op) };
        match op {
            CmpOp::Eq => match self.eq {
                Some(e) if e != v => return false,
                _ => self.eq = Some(v),
            },
            CmpOp::NotEq => self.neq.push(v),
            CmpOp::Lt => self.upper(v, true),
            CmpOp::LtEq => self.upper(v, false),
            CmpOp::Gt => self.lower(v, true),
            CmpOp::GtEq => self.lower(v, false),
        }
        true
    }

    fn upper(&mut self, v: f64, strict: bool) {
        if v < self.hi || (v == self.hi && strict && !self.hi_strict) {
            self.hi = v;
            self.hi_strict = strict;
        }
    }

    fn lower(&mut self, v: f64, strict: bool) {
        if v > self.lo || (v == self.lo && strict && !self.lo_strict) {
            self.lo = v;
            self.lo_strict = strict;
        }
    }

    fn consistent(&self) -> bool {
        if let Some(e) = self.eq {
            let above = e > self.lo || (e == self.lo && !self.lo_strict);
            let below = e < self.hi || (e == self.hi && !self.hi_strict);
            return above && below && !self.neq.contains(&e);
        }
        if self.lo < self.hi {
            // A real interval of positive length survives finitely many
            // excluded points.
            return true;
        }
        self.lo == self.hi && !self.lo_strict && !self.hi_strict && !self.neq.contains(&self.lo)
    }
}

/// Equality/exclusion/LIKE domain of one text attribute.
#[derive(Default)]
struct TextDomain {
    eq: Option<String>,
    neq: Vec<String>,
    likes: Vec<(String, bool)>,
}

impl TextDomain {
    fn force_eq(&mut self, s: &str) -> bool {
        match &self.eq {
            Some(e) => e == s,
            None => {
                self.eq = Some(s.to_string());
                true
            }
        }
    }

    fn consistent(&self) -> bool {
        if let Some(e) = &self.eq {
            if self.neq.iter().any(|n| n == e) {
                return false;
            }
            return self
                .likes
                .iter()
                .all(|(pat, want)| like_match(e, pat) == *want);
        }
        // No forced value: only a pattern required both matched and
        // unmatched is contradictory.
        !self
            .likes
            .iter()
            .any(|(p, w)| *w && self.likes.iter().any(|(q, x)| !*x && p == q))
    }
}

/// Two-point domain of one boolean attribute.
struct BoolDomain {
    can_true: bool,
    can_false: bool,
}

impl Default for BoolDomain {
    fn default() -> Self {
        BoolDomain {
            can_true: true,
            can_false: true,
        }
    }
}

impl BoolDomain {
    fn restrict(&mut self, v: bool) -> bool {
        if v {
            self.can_false = false;
        } else {
            self.can_true = false;
        }
        self.consistent()
    }

    fn consistent(&self) -> bool {
        self.can_true || self.can_false
    }
}

fn negate(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::NotEq,
        CmpOp::NotEq => CmpOp::Eq,
        CmpOp::Lt => CmpOp::GtEq,
        CmpOp::GtEq => CmpOp::Lt,
        CmpOp::Gt => CmpOp::LtEq,
        CmpOp::LtEq => CmpOp::Gt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::rules::condition::AggFunc;
    use pdm_core::rules::{ActionKind, Rule, UserPattern};

    fn analyze(rules: RuleTable) -> Report {
        let mut report = Report::new();
        check_rule_table(&rules, &SchemaInfo::paper(), &mut report);
        report
    }

    fn row_rule(pred: RowPredicate) -> Rule {
        Rule::for_all_users(ActionKind::Access, "assy", Condition::Row(pred))
    }

    #[test]
    fn sane_rules_are_clean() {
        let mut t = RuleTable::new();
        t.add(row_rule(RowPredicate::compare(
            "make_or_buy",
            CmpOp::NotEq,
            "buy",
        )));
        t.add(Rule::for_all_users(
            ActionKind::Access,
            "comp",
            Condition::ExistsStructure {
                object_table: "comp".into(),
                relation_table: "specified_by".into(),
                related_table: "spec".into(),
            },
        ));
        let r = analyze(t);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn unsatisfiable_interval_flagged() {
        // payload < 10 AND payload > 20 — empty over the reals.
        let mut t = RuleTable::new();
        t.add(row_rule(
            RowPredicate::compare("payload", CmpOp::Lt, 10i64).and(RowPredicate::compare(
                "payload",
                CmpOp::Gt,
                20i64,
            )),
        ));
        assert!(analyze(t).flags(Check::UnsatisfiableRule));
    }

    #[test]
    fn contradictory_equalities_flagged() {
        let mut t = RuleTable::new();
        t.add(row_rule(
            RowPredicate::compare("name", CmpOp::Eq, "wing").and(RowPredicate::compare(
                "name",
                CmpOp::Eq,
                "fuselage",
            )),
        ));
        assert!(analyze(t).flags(Check::UnsatisfiableRule));
    }

    #[test]
    fn tautology_flagged_as_warning() {
        // x = 1 OR x <> 1 is true for every non-NULL x.
        let mut t = RuleTable::new();
        t.add(row_rule(
            RowPredicate::compare("payload", CmpOp::Eq, 1i64).or(RowPredicate::compare(
                "payload",
                CmpOp::NotEq,
                1i64,
            )),
        ));
        let r = analyze(t);
        assert!(r.flags(Check::TautologicalRule));
        assert!(!r.has_errors());
    }

    #[test]
    fn self_comparison_folds() {
        // obid <> obid is constant-false.
        let mut t = RuleTable::new();
        t.add(row_rule(RowPredicate::CompareAttrs {
            left: "obid".into(),
            op: CmpOp::NotEq,
            right: "obid".into(),
        }));
        assert!(analyze(t).flags(Check::UnsatisfiableRule));
    }

    #[test]
    fn constant_stored_fn_folds_through_registry() {
        // set_overlaps('OPTA', 'OPTB') is constant-false.
        let mut t = RuleTable::new();
        t.add(row_rule(RowPredicate::StoredFn {
            name: "set_overlaps".into(),
            args: vec![
                FnArg::Const(Value::from("OPTA")),
                FnArg::Const(Value::from("OPTB")),
            ],
        }));
        assert!(analyze(t).flags(Check::UnsatisfiableRule));
    }

    #[test]
    fn empty_effectivity_flagged() {
        // Selection interval [9, 4] can never overlap any effectivity.
        let mut t = RuleTable::new();
        t.add(Rule::for_all_users(
            ActionKind::Access,
            "link",
            Condition::Row(RowPredicate::StoredFn {
                name: "overlaps_interval".into(),
                args: vec![
                    FnArg::Attr("eff_from".into()),
                    FnArg::Attr("eff_to".into()),
                    FnArg::Const(Value::Int(9)),
                    FnArg::Const(Value::Int(4)),
                ],
            }),
        ));
        let r = analyze(t);
        assert!(r.flags(Check::EmptyEffectivity));
        assert!(r.flags(Check::UnsatisfiableRule));
    }

    #[test]
    fn like_vs_forced_equality() {
        // name = 'wing' AND name LIKE 'fus%' cannot both hold.
        let mut t = RuleTable::new();
        t.add(row_rule(
            RowPredicate::compare("name", CmpOp::Eq, "wing").and(RowPredicate::Like {
                attr: "name".into(),
                pattern: "fus%".into(),
                negated: false,
            }),
        ));
        assert!(analyze(t).flags(Check::UnsatisfiableRule));
    }

    #[test]
    fn duplicate_rule_flagged() {
        let mut t = RuleTable::new();
        let p = RowPredicate::compare("dec", CmpOp::Eq, "+");
        t.add(row_rule(p.clone()));
        t.add(row_rule(p));
        let r = analyze(t);
        assert!(r.flags(Check::DuplicateRule));
    }

    #[test]
    fn subsumed_rule_flagged() {
        // `payload > 10` ⊂ `payload > 5`: the narrower rule is dead.
        let mut t = RuleTable::new();
        t.add(row_rule(RowPredicate::compare("payload", CmpOp::Gt, 5i64)));
        t.add(Rule::new(
            UserPattern::Named("scott".into()),
            ActionKind::Query,
            "assy",
            Condition::Row(RowPredicate::compare("payload", CmpOp::Gt, 10i64)),
        ));
        let r = analyze(t);
        assert!(r.flags(Check::SubsumedRule));
        assert!(!r.has_errors());
    }

    #[test]
    fn non_overlapping_rules_not_subsumed() {
        let mut t = RuleTable::new();
        t.add(row_rule(RowPredicate::compare("payload", CmpOp::Gt, 5i64)));
        t.add(row_rule(RowPredicate::compare("payload", CmpOp::Lt, 0i64)));
        let r = analyze(t);
        assert!(!r.flags(Check::SubsumedRule));
    }

    #[test]
    fn negative_count_bound_unsatisfiable() {
        let mut t = RuleTable::new();
        t.add(Rule::for_all_users(
            ActionKind::MultiLevelExpand,
            "assy",
            Condition::TreeAggregate {
                func: AggFunc::Count,
                attr: None,
                object_type: None,
                op: CmpOp::Lt,
                value: 0.0,
            },
        ));
        assert!(analyze(t).flags(Check::UnsatisfiableRule));
    }

    #[test]
    fn exists_structure_unknown_table_flagged() {
        let mut t = RuleTable::new();
        t.add(Rule::for_all_users(
            ActionKind::Access,
            "comp",
            Condition::ExistsStructure {
                object_table: "comp".into(),
                relation_table: "no_such_relation".into(),
                related_table: "spec".into(),
            },
        ));
        assert!(analyze(t).flags(Check::UnknownTable));
    }
}
