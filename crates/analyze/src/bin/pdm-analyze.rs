//! `pdm-analyze` — audit the generator corpus and report diagnostics.
//!
//! Exit status is 0 only if every corpus entry is clean; any diagnostic
//! (warning or error) fails the run, so CI can gate on it directly.
//!
//! Usage:
//!   pdm-analyze               human-readable report
//!   pdm-analyze --json        machine-readable JSON report
//!   pdm-analyze --list-checks print the check registry and exit

#![allow(clippy::unwrap_used)]

use std::process::ExitCode;

use pdm_analyze::diag::Check;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    for arg in &args {
        match arg.as_str() {
            "--json" => json = true,
            "--list-checks" => {
                list_checks();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                eprintln!("usage: pdm-analyze [--json | --list-checks]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pdm-analyze: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    let results = pdm_analyze::audit_corpus();
    let total: usize = results.iter().map(|(_, r)| r.diagnostics.len()).sum();

    if json {
        print_json(&results);
    } else {
        print_human(&results, total);
    }

    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn list_checks() {
    for check in Check::ALL {
        println!(
            "{:<28} {:<7} {}",
            check.id(),
            check.severity(),
            check.description()
        );
    }
}

fn print_human(results: &[(pdm_analyze::corpus::CorpusEntry, pdm_analyze::Report)], total: usize) {
    for (entry, report) in results {
        if report.is_clean() {
            println!("ok   {}", entry.name);
        } else {
            println!("FAIL {}", entry.name);
            for d in &report.diagnostics {
                println!("     {d}");
            }
        }
    }
    println!(
        "{} corpus entries audited, {} diagnostic(s)",
        results.len(),
        total
    );
}

fn print_json(results: &[(pdm_analyze::corpus::CorpusEntry, pdm_analyze::Report)]) {
    let mut out = String::from("{\"entries\":[");
    for (i, (entry, report)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"clean\":{},\"report\":{}}}",
            entry.name,
            report.is_clean(),
            report.to_json()
        ));
    }
    let total: usize = results.iter().map(|(_, r)| r.diagnostics.len()).sum();
    out.push_str(&format!("],\"total_diagnostics\":{total}}}"));
    println!("{out}");
}
