//! `pdm-analyze` — audit the generator corpus and report diagnostics.
//!
//! Audits both corpora: the query corpus (every generator shape, modified
//! and unmodified) and the statement corpus (the DML shapes the durability
//! layer logs and crash recovery re-executes).
//!
//! Exit status is 0 only if every corpus entry is clean; any diagnostic
//! (warning or error) fails the run, so CI can gate on it directly.
//!
//! Usage:
//!   pdm-analyze               human-readable report
//!   pdm-analyze --json        machine-readable JSON report
//!   pdm-analyze --list-checks print the check registry and exit

#![allow(clippy::unwrap_used)]

use std::process::ExitCode;

use pdm_analyze::diag::Check;
use pdm_analyze::Report;

/// A corpus result row, unified across the query and statement corpora.
struct Row {
    corpus: &'static str,
    name: &'static str,
    report: Report,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    for arg in &args {
        match arg.as_str() {
            "--json" => json = true,
            "--list-checks" => {
                list_checks();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                eprintln!("usage: pdm-analyze [--json | --list-checks]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("pdm-analyze: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    let mut rows: Vec<Row> = pdm_analyze::audit_corpus()
        .into_iter()
        .map(|(entry, report)| Row {
            corpus: "query",
            name: entry.name,
            report,
        })
        .collect();
    rows.extend(
        pdm_analyze::audit_statement_corpus()
            .into_iter()
            .map(|(entry, report)| Row {
                corpus: "statement",
                name: entry.name,
                report,
            }),
    );
    let total: usize = rows.iter().map(|r| r.report.diagnostics.len()).sum();

    if json {
        print_json(&rows, total);
    } else {
        print_human(&rows, total);
    }

    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn list_checks() {
    for check in Check::ALL {
        println!(
            "{:<28} {:<7} {}",
            check.id(),
            check.severity(),
            check.description()
        );
    }
}

fn print_human(rows: &[Row], total: usize) {
    for row in rows {
        if row.report.is_clean() {
            println!("ok   [{}] {}", row.corpus, row.name);
        } else {
            println!("FAIL [{}] {}", row.corpus, row.name);
            for d in &row.report.diagnostics {
                println!("     {d}");
            }
        }
    }
    println!(
        "{} corpus entries audited, {} diagnostic(s)",
        rows.len(),
        total
    );
}

fn print_json(rows: &[Row], total: usize) {
    let mut out = String::from("{\"entries\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"corpus\":\"{}\",\"name\":\"{}\",\"clean\":{},\"report\":{}}}",
            row.corpus,
            row.name,
            row.report.is_clean(),
            row.report.to_json()
        ));
    }
    out.push_str(&format!("],\"total_diagnostics\":{total}}}"));
    println!("{out}");
}
