//! Predicate-placement verification (§4.1 / §5.5 steps A–D).
//!
//! Re-derives, from the active [`RuleTable`] alone, exactly which translated
//! rule predicates must appear in which SELECT blocks of a query — the same
//! decisions the query modificator makes — and diffs that against the
//! query's actual WHERE clauses:
//!
//! * an expected predicate absent from its block → [`Check::MissingPredicate`];
//! * a rule predicate present in a block it was not mandated for →
//!   [`Check::MisplacedPredicate`];
//! * a [`ModReport`] whose recorded sites disagree with the re-derivation →
//!   [`Check::ReportMismatch`].
//!
//! The re-derivation reuses the *same* translate functions the modificator
//! uses, so expected and injected predicates match by structural [`Expr`]
//! equality — not by string heuristics.

use pdm_sql::ast::{BinOp, Expr, Query, Select, SetExpr};

use pdm_core::query::modificator::{select_bindings, select_references_table, BlockId, ModReport};
use pdm_core::rules::classify::ConditionClass;
use pdm_core::rules::condition::Condition;
use pdm_core::rules::table::RuleTable;
use pdm_core::rules::translate::{condition_expr, exists_structure_expr, row_predicate_expr};
use pdm_core::rules::ActionKind;

use crate::diag::{Check, Report};

/// One mandated injection: class, target block, and the exact predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct Expectation {
    pub class: ConditionClass,
    pub block: BlockId,
    pub predicate: Expr,
}

/// Verify predicate placement of `query` against `rules`, for the given
/// principal and action. `mod_report` — when the caller has the modificator's
/// own account — is cross-checked against the re-derivation.
pub fn check_placement(
    query: &Query,
    rules: &RuleTable,
    user: &str,
    action: ActionKind,
    mod_report: Option<&ModReport>,
    report: &mut Report,
) {
    let expected = expected_injections(query, rules, user, action);

    // Actual conjuncts per block, consumed as expectations match.
    let mut actual: Vec<(BlockId, Vec<Expr>)> = blocks(query)
        .into_iter()
        .map(|(id, sel)| {
            let conj = sel
                .where_clause
                .as_ref()
                .map(|w| conjuncts(w).into_iter().cloned().collect())
                .unwrap_or_default();
            (id, conj)
        })
        .collect();

    let mut missing: Vec<&Expectation> = Vec::new();
    for exp in &expected {
        let found = actual
            .iter_mut()
            .find(|(id, _)| *id == exp.block)
            .and_then(|(_, conj)| {
                let pos = conj.iter().position(|c| *c == exp.predicate)?;
                conj.remove(pos);
                Some(())
            });
        if found.is_none() {
            missing.push(exp);
        }
    }
    for exp in missing {
        report.emit_at(
            Check::MissingPredicate,
            format!(
                "{:?} predicate mandated by the rule table is missing: {}",
                exp.class, exp.predicate
            ),
            exp.block.to_string(),
        );
    }

    // Any leftover conjunct that *is* a rule-predicate instance sits in a
    // block the rule table did not mandate it for.
    for (id, conj) in &actual {
        for c in conj {
            if let Some(exp) = expected.iter().find(|e| e.predicate == *c) {
                report.emit_at(
                    Check::MisplacedPredicate,
                    format!(
                        "rule predicate {} belongs in {} but was spliced here",
                        c, exp.block
                    ),
                    id.to_string(),
                );
            }
        }
    }

    if let Some(mr) = mod_report {
        check_report(mr, &expected, report);
    }
}

/// Cross-check the modificator's recorded sites against the re-derivation.
fn check_report(mr: &ModReport, expected: &[Expectation], report: &mut Report) {
    let mut want: Vec<(ConditionClass, &BlockId, String)> = expected
        .iter()
        .map(|e| (e.class, &e.block, e.predicate.to_string()))
        .collect();
    for site in &mr.sites {
        let key = (site.class, &site.block, site.predicate.clone());
        if let Some(pos) = want.iter().position(|w| *w == key) {
            want.remove(pos);
        } else {
            report.emit_at(
                Check::ReportMismatch,
                format!(
                    "ModReport records a {:?} injection the rule table does not mandate: {}",
                    site.class, site.predicate
                ),
                site.block.to_string(),
            );
        }
    }
    for (class, block, pred) in want {
        report.emit_at(
            Check::ReportMismatch,
            format!("ModReport is missing a mandated {class:?} injection: {pred}"),
            block.to_string(),
        );
    }
    let counter_total =
        mr.row_injections + mr.forall_injections + mr.aggregate_injections + mr.exists_injections;
    if counter_total != mr.sites.len() {
        report.emit(
            Check::ReportMismatch,
            format!(
                "ModReport counters total {counter_total} but {} sites are recorded",
                mr.sites.len()
            ),
        );
    }
}

/// Re-derive the full injection plan for `query` from the rule table —
/// mirroring `Modificator::modify_recursive` / `modify_navigational` block
/// by block (§5.5 steps A–D; §4.1 for non-recursive queries).
pub fn expected_injections(
    query: &Query,
    rules: &RuleTable,
    user: &str,
    action: ActionKind,
) -> Vec<Expectation> {
    let mut out = Vec::new();
    let cte_name = query.with.as_ref().and_then(|w| {
        if w.recursive {
            w.ctes.first().map(|c| c.name.clone())
        } else {
            None
        }
    });

    if let Some(cte_name) = &cte_name {
        // Steps A + B: tree conditions land in every SELECT outside the
        // recursive part.
        let forall: Vec<Expr> = rules
            .relevant_of_class(user, action, ConditionClass::ForAllRows)
            .iter()
            .map(|r| condition_expr(&r.condition, &r.object_type, cte_name))
            .collect();
        let aggregate: Vec<Expr> = rules
            .relevant_of_class(user, action, ConditionClass::TreeAggregate)
            .iter()
            .map(|r| condition_expr(&r.condition, &r.object_type, cte_name))
            .collect();
        if let Some(pred) = Expr::disjunction(forall) {
            for_each_outer_select(&query.body, &mut |idx, _| {
                out.push(Expectation {
                    class: ConditionClass::ForAllRows,
                    block: BlockId::Outer { select: idx },
                    predicate: pred.clone(),
                });
            });
        }
        if let Some(pred) = Expr::disjunction(aggregate) {
            for_each_outer_select(&query.body, &mut |idx, _| {
                out.push(Expectation {
                    class: ConditionClass::TreeAggregate,
                    block: BlockId::Outer { select: idx },
                    predicate: pred.clone(),
                });
            });
        }
    }

    // Step D outside the recursive part (the whole query when navigational).
    for_each_outer_select(&query.body, &mut |idx, sel| {
        expect_row_conditions(
            sel,
            BlockId::Outer { select: idx },
            rules,
            user,
            action,
            &mut out,
        );
    });

    // Steps C + D inside CTE bodies — only for recursive queries, matching
    // the modificator (navigational modification never touches a WITH).
    if cte_name.is_some() {
        if let Some(with) = &query.with {
            for cte in &with.ctes {
                for_each_outer_select(&cte.query.body, &mut |idx, sel| {
                    let block = cte_block_id(&cte.name, idx, sel);
                    expect_exists_structure(sel, block.clone(), rules, user, action, &mut out);
                    expect_row_conditions(sel, block, rules, user, action, &mut out);
                });
            }
        }
    }
    out
}

fn expect_row_conditions(
    sel: &Select,
    block: BlockId,
    rules: &RuleTable,
    user: &str,
    action: ActionKind,
    out: &mut Vec<Expectation>,
) {
    for (table, binding) in &select_bindings(sel) {
        let relevant = rules.relevant_for_type(user, action, ConditionClass::Row, table);
        let preds: Vec<Expr> = relevant
            .iter()
            .filter_map(|r| match &r.condition {
                Condition::Row(p) => Some(row_predicate_expr(p, binding)),
                _ => None,
            })
            .collect();
        if let Some(pred) = Expr::disjunction(preds) {
            out.push(Expectation {
                class: ConditionClass::Row,
                block: block.clone(),
                predicate: pred,
            });
        }
    }
}

fn expect_exists_structure(
    sel: &Select,
    block: BlockId,
    rules: &RuleTable,
    user: &str,
    action: ActionKind,
    out: &mut Vec<Expectation>,
) {
    let relevant = rules.relevant_of_class(user, action, ConditionClass::ExistsStructure);
    if relevant.is_empty() {
        return;
    }
    for (table, binding) in &select_bindings(sel) {
        let preds: Vec<Expr> = relevant
            .iter()
            .filter_map(|r| match &r.condition {
                Condition::ExistsStructure {
                    object_table,
                    relation_table,
                    related_table,
                } if object_table == table => Some(exists_structure_expr(
                    binding,
                    relation_table,
                    related_table,
                )),
                _ => None,
            })
            .collect();
        if let Some(pred) = Expr::disjunction(preds) {
            out.push(Expectation {
                class: ConditionClass::ExistsStructure,
                block: block.clone(),
                predicate: pred,
            });
        }
    }
}

/// Every SELECT block of the query, with its [`BlockId`]: the outer body's
/// blocks plus each CTE's, in the modificator's preorder numbering.
pub fn blocks(query: &Query) -> Vec<(BlockId, &Select)> {
    let mut out = Vec::new();
    for_each_outer_select(&query.body, &mut |idx, sel| {
        out.push((BlockId::Outer { select: idx }, sel));
    });
    if let Some(with) = &query.with {
        for cte in &with.ctes {
            for_each_outer_select(&cte.query.body, &mut |idx, sel| {
                out.push((cte_block_id(&cte.name, idx, sel), sel));
            });
        }
    }
    out
}

fn cte_block_id(cte: &str, select: usize, sel: &Select) -> BlockId {
    if select_references_table(sel, cte) {
        BlockId::CteRecursive {
            cte: cte.to_string(),
            select,
        }
    } else {
        BlockId::CteSeed {
            cte: cte.to_string(),
            select,
        }
    }
}

/// Preorder walk over a set-expression's SELECTs with running index — the
/// coordinate system of [`BlockId`].
fn for_each_outer_select<'a>(body: &'a SetExpr, f: &mut impl FnMut(usize, &'a Select)) {
    fn go<'a>(body: &'a SetExpr, f: &mut impl FnMut(usize, &'a Select), next: &mut usize) {
        match body {
            SetExpr::Select(sel) => {
                f(*next, sel);
                *next += 1;
            }
            SetExpr::SetOp { left, right, .. } => {
                go(left, f, next);
                go(right, f, next);
            }
        }
    }
    let mut next = 0;
    go(body, f, &mut next);
}

/// Split an expression into its top-level AND conjuncts.
pub fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::BinaryOp {
            op: BinOp::And,
            left,
            right,
        } => {
            let mut out = conjuncts(left);
            out.extend(conjuncts(right));
            out
        }
        other => vec![other],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::query::modificator::Modificator;
    use pdm_core::query::{navigational, recursive};
    use pdm_core::rules::condition::{AggFunc, CmpOp, RowPredicate};
    use pdm_core::rules::Rule;
    use std::collections::HashSet;

    fn paper_rules() -> RuleTable {
        let mut t = RuleTable::new();
        for table in ["link", "assy", "comp"] {
            t.add(Rule::for_all_users(
                ActionKind::Access,
                table,
                Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
            ));
        }
        t.add(Rule::for_all_users(
            ActionKind::MultiLevelExpand,
            "assy",
            Condition::ForAllRows {
                object_type: Some("assy".into()),
                predicate: RowPredicate::compare("dec", CmpOp::Eq, "+"),
            },
        ));
        t.add(Rule::for_all_users(
            ActionKind::MultiLevelExpand,
            "assy",
            Condition::TreeAggregate {
                func: AggFunc::Count,
                attr: None,
                object_type: Some("assy".into()),
                op: CmpOp::LtEq,
                value: 10_000.0,
            },
        ));
        t.add(Rule::for_all_users(
            ActionKind::MultiLevelExpand,
            "comp",
            Condition::ExistsStructure {
                object_table: "comp".into(),
                relation_table: "specified_by".into(),
                related_table: "spec".into(),
            },
        ));
        t
    }

    fn modified_mle() -> (Query, ModReport) {
        let rules = paper_rules();
        let views = HashSet::new();
        let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
        let mut q = recursive::mle_query(1);
        let report = m.modify_recursive(&mut q).expect("modify");
        (q, report)
    }

    fn placement_report(q: &Query, mr: Option<&ModReport>) -> Report {
        let rules = paper_rules();
        let mut out = Report::new();
        check_placement(
            q,
            &rules,
            "scott",
            ActionKind::MultiLevelExpand,
            mr,
            &mut out,
        );
        out
    }

    #[test]
    fn modified_query_verifies_clean() {
        let (q, mr) = modified_mle();
        let r = placement_report(&q, Some(&mr));
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn unmodified_query_has_missing_predicates() {
        let q = recursive::mle_query(1);
        let r = placement_report(&q, None);
        assert!(r.flags(Check::MissingPredicate));
    }

    #[test]
    fn navigational_modification_verifies_clean() {
        let rules = paper_rules();
        let views = HashSet::new();
        let m = Modificator::new(&rules, "scott", ActionKind::MultiLevelExpand, &views);
        let mut q = navigational::expand_query(7);
        let mr = m.modify_navigational(&mut q).expect("modify");
        let mut out = Report::new();
        check_placement(
            &q,
            &rules,
            "scott",
            ActionKind::MultiLevelExpand,
            Some(&mr),
            &mut out,
        );
        assert!(out.is_clean(), "{out}");
    }

    #[test]
    fn expected_plan_matches_paper_block_structure() {
        let q = recursive::mle_query(1);
        let rules = paper_rules();
        let plan = expected_injections(&q, &rules, "scott", ActionKind::MultiLevelExpand);
        // 1 forall + 1 aggregate on the single outer SELECT, 1 ∃structure in
        // the comp recursive term, 5 row-condition sites (seed, 2×assy term,
        // 2×comp term).
        assert_eq!(plan.len(), 8);
        assert!(plan
            .iter()
            .any(|e| e.class == ConditionClass::ExistsStructure
                && e.block
                    == BlockId::CteRecursive {
                        cte: "rtbl".into(),
                        select: 2
                    }));
    }
}
