//! The audit corpus: one instance of every query shape the core generators
//! emit — unmodified and rule-modified — paired with the rule table, user,
//! and action that produced it.
//!
//! The `pdm-analyze` CLI runs the full analyzer over this corpus and fails
//! on any diagnostic; CI runs the CLI. The corpus is the contract that the
//! generator → modificator pipeline stays statically clean as it evolves.

use std::collections::HashSet;

use pdm_sql::ast::{Query, Statement};

use pdm_core::query::modificator::{ModReport, Modificator};
use pdm_core::query::{navigational, recursive};
use pdm_core::rules::condition::{AggFunc, CmpOp, Condition, RowPredicate};
use pdm_core::rules::table::RuleTable;
use pdm_core::rules::{ActionKind, Rule};

/// One corpus member: a generated query plus the context needed to verify
/// predicate placement (if it was modified).
pub struct CorpusEntry {
    /// Stable scenario name (used in CLI output and JSON).
    pub name: &'static str,
    pub query: Query,
    /// Rendered SQL, for display and for the print→parse drift check.
    pub sql: String,
    /// The rule table the modificator ran with; `None` for unmodified
    /// queries (placement checks are skipped).
    pub rules: Option<RuleTable>,
    pub user: &'static str,
    pub action: ActionKind,
    /// The modificator's own account of its injections, cross-checked
    /// against the analyzer's re-derivation.
    pub report: Option<ModReport>,
}

/// The §4.1 visibility rule set: `strc_opt = 'OPTA'` row conditions on all
/// three structure-bearing tables.
pub fn visibility_rules() -> RuleTable {
    let mut t = RuleTable::new();
    for table in ["link", "assy", "comp"] {
        t.add(Rule::for_all_users(
            ActionKind::Access,
            table,
            Condition::Row(RowPredicate::compare("strc_opt", CmpOp::Eq, "OPTA")),
        ));
    }
    t
}

/// The full §5.5 rule set: visibility rows plus a ∀rows release-flag rule,
/// a tree-size aggregate bound, and an ∃structure specification rule —
/// exercising steps A through D of the modification algorithm.
pub fn paper_rules() -> RuleTable {
    let mut t = visibility_rules();
    t.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "assy",
        Condition::ForAllRows {
            object_type: Some("assy".into()),
            predicate: RowPredicate::compare("dec", CmpOp::Eq, "+"),
        },
    ));
    t.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "assy",
        Condition::TreeAggregate {
            func: AggFunc::Count,
            attr: None,
            object_type: Some("assy".into()),
            op: CmpOp::LtEq,
            value: 10_000.0,
        },
    ));
    t.add(Rule::for_all_users(
        ActionKind::MultiLevelExpand,
        "comp",
        Condition::ExistsStructure {
            object_table: "comp".into(),
            relation_table: "specified_by".into(),
            related_table: "spec".into(),
        },
    ));
    t
}

fn unmodified(name: &'static str, action: ActionKind, query: Query) -> CorpusEntry {
    let sql = query.to_string();
    CorpusEntry {
        name,
        query,
        sql,
        rules: None,
        user: "scott",
        action,
        report: None,
    }
}

fn modified(
    name: &'static str,
    action: ActionKind,
    mut query: Query,
    rules: RuleTable,
    recursive: bool,
) -> CorpusEntry {
    let views = HashSet::new();
    let m = Modificator::new(&rules, "scott", action, &views);
    let report = if recursive {
        m.modify_recursive(&mut query)
    } else {
        m.modify_navigational(&mut query)
    }
    .expect("corpus query modification cannot fail");
    let sql = query.to_string();
    CorpusEntry {
        name,
        query,
        sql,
        rules: Some(rules),
        user: "scott",
        action,
        report: Some(report),
    }
}

/// Build the full corpus: every generator shape, plus the two modification
/// paths over representative rule sets.
pub fn build_corpus() -> Vec<CorpusEntry> {
    vec![
        unmodified("expand", ActionKind::Expand, navigational::expand_query(42)),
        unmodified(
            "expand-many",
            ActionKind::Expand,
            navigational::expand_many_query(&[1, 2, 3], "link"),
        ),
        unmodified(
            "query-all",
            ActionKind::Query,
            navigational::query_all_query(1),
        ),
        unmodified(
            "fetch-node",
            ActionKind::Query,
            navigational::fetch_node_query(7),
        ),
        unmodified("mle", ActionKind::MultiLevelExpand, recursive::mle_query(1)),
        unmodified(
            "mle-with-root",
            ActionKind::MultiLevelExpand,
            recursive::mle_query_with_root(1, true),
        ),
        modified(
            "expand-modified",
            ActionKind::Expand,
            navigational::expand_query(42),
            visibility_rules(),
            false,
        ),
        modified(
            "mle-modified",
            ActionKind::MultiLevelExpand,
            recursive::mle_query(1),
            paper_rules(),
            true,
        ),
    ]
}

/// One member of the statement corpus: a DML shape the durability layer
/// logs and crash recovery re-executes verbatim.
pub struct StatementEntry {
    pub name: &'static str,
    pub statement: Statement,
    pub sql: String,
}

fn statement(name: &'static str, sql: &str) -> StatementEntry {
    let statement =
        pdm_sql::parser::parse_statement(sql).expect("statement corpus member must parse");
    // Store the canonical rendering (what the WAL would log), not the
    // hand-written source.
    let sql = statement.to_string();
    StatementEntry {
        name,
        statement,
        sql,
    }
}

/// The recovery replay path's statement shapes: one instance of every DML
/// form the WAL records — the check-out flag UPDATEs (grant and check-in/
/// sweep directions, single id and id list), and the workload DML mix the
/// chaos harness commits. If recovery replays it, its shape is audited
/// here.
pub fn recovery_statement_corpus() -> Vec<StatementEntry> {
    vec![
        statement(
            "checkout-flag-grant",
            "UPDATE assy SET checkedout = TRUE WHERE obid IN (1, 4, 13)",
        ),
        statement(
            "checkout-flag-grant-comp",
            "UPDATE comp SET checkedout = TRUE WHERE obid IN (14, 15)",
        ),
        statement(
            "recovery-sweep",
            "UPDATE assy SET checkedout = FALSE WHERE obid IN (1, 4, 13)",
        ),
        statement(
            "checkin-clear-comp",
            "UPDATE comp SET checkedout = FALSE WHERE obid IN (14, 15)",
        ),
        statement(
            "workload-payload-update",
            "UPDATE assy SET payload = 'replayed' WHERE obid = 7",
        ),
        statement(
            "workload-range-rename",
            "UPDATE comp SET name = 'swept' WHERE obid >= 14 AND obid <= 16",
        ),
        statement(
            "workload-spec-insert",
            "INSERT INTO spec VALUES ('spec', 900001, 'chaos')",
        ),
        statement(
            "workload-spec-delete",
            "DELETE FROM spec WHERE obid = 900001",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_corpus_names_are_unique() {
        let corpus = recovery_statement_corpus();
        assert!(corpus.len() >= 8);
        let mut names: Vec<_> = corpus.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), recovery_statement_corpus().len());
    }

    #[test]
    fn corpus_covers_both_pipelines() {
        let corpus = build_corpus();
        assert!(corpus.len() >= 8);
        assert!(corpus.iter().any(|e| e.report.is_some()));
        assert!(corpus.iter().any(|e| e.query.with.is_some()));
        // Names are unique (JSON output keys on them).
        let mut names: Vec<_> = corpus.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len());
    }

    #[test]
    fn corpus_rule_tables_are_clean() {
        let mut report = crate::diag::Report::new();
        crate::rules::check_rule_table(
            &paper_rules(),
            &crate::schema::SchemaInfo::paper(),
            &mut report,
        );
        assert!(report.is_clean(), "{report}");
    }
}
