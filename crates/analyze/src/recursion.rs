//! Recursive-CTE safety lints (the §5.2 multi-level-expand shape).
//!
//! The generator emits `WITH RECURSIVE rtbl AS (seed UNION rtbl⋈link⋈assy
//! UNION rtbl⋈link⋈comp) SELECT ...`; these checks verify any recursive
//! query still has that safe shape: linear recursion with a seed term, no
//! aggregation/DISTINCT/self-referencing subqueries inside recursive terms,
//! and recursive terms that actually descend a link table.

use pdm_sql::ast::{Expr, Query, Select, SetExpr, SetOp, TableFactor};

use crate::diag::{Check, Report};

/// Run the recursion lints over every recursive CTE of `query`.
pub fn check_recursion(query: &Query, report: &mut Report) {
    let Some(with) = &query.with else { return };
    if !with.recursive {
        return;
    }
    for cte in &with.ctes {
        check_cte(&cte.name, &cte.query, report);
    }
}

fn check_cte(name: &str, body: &Query, report: &mut Report) {
    let loc = |term: usize| format!("term #{term} of CTE '{name}'");

    // The terms of the recursion are the UNION operands of the CTE body.
    // Walk the set-op tree first for operator-level lints.
    check_setops(name, &body.body, report);

    let terms = body.body.flatten_setop(SetOp::Union);
    let mut seeds = 0usize;
    for (i, term) in terms.iter().enumerate() {
        let mut from_refs = 0usize;
        for_each_select(term, &mut |sel| {
            from_refs += count_from_refs(sel, name);
        });
        if from_refs == 0 {
            seeds += 1;
            continue;
        }
        if from_refs > 1 {
            report.emit_at(
                Check::NonLinearRecursion,
                format!("recursive term references '{name}' {from_refs} times (linear recursion allows one)"),
                loc(i),
            );
        }
        for_each_select(term, &mut |sel| {
            if sel.distinct {
                report.emit_at(
                    Check::RecursiveDistinct,
                    format!("SELECT DISTINCT inside a recursive term of '{name}'"),
                    loc(i),
                );
            }
            if has_aggregation(sel) {
                report.emit_at(
                    Check::RecursiveAggregate,
                    format!("aggregation inside a recursive term of '{name}'"),
                    loc(i),
                );
            }
            if subqueries_reference(sel, name) {
                report.emit_at(
                    Check::RecursiveSubqueryRef,
                    format!("subquery inside a recursive term references '{name}'"),
                    loc(i),
                );
            }
            // Descent: besides the recursion table itself, the term must
            // join at least one other relation, or the recursion can only
            // reproduce rows it already has.
            if count_from_refs(sel, name) > 0 && count_other_factors(sel, name) == 0 {
                report.emit_at(
                    Check::RecursiveNoDescent,
                    format!(
                        "recursive term reads only '{name}' itself — it never descends a link table"
                    ),
                    loc(i),
                );
            }
        });
    }
    if seeds == 0 {
        report.emit_at(
            Check::NoSeedTerm,
            format!("every term of recursive CTE '{name}' references the CTE — no base case"),
            format!("CTE '{name}'"),
        );
    }
}

/// Operator-level lints: recursion terms must be combined with UNION;
/// UNION ALL recursion is flagged as a termination hazard on DAGs.
fn check_setops(name: &str, body: &SetExpr, report: &mut Report) {
    if let SetExpr::SetOp {
        op,
        all,
        left,
        right,
    } = body
    {
        let involves_recursion = contains_cte_ref(left, name) || contains_cte_ref(right, name);
        if involves_recursion && *op != SetOp::Union {
            report.emit_at(
                Check::NonUnionRecursion,
                format!("recursive terms of '{name}' combined with {}", op_name(*op)),
                format!("CTE '{name}'"),
            );
        }
        if involves_recursion && *op == SetOp::Union && *all {
            report.emit_at(
                Check::UnionAllRecursion,
                format!(
                    "UNION ALL recursion over '{name}': shared subtrees (DAGs) revisit nodes unboundedly"
                ),
                format!("CTE '{name}'"),
            );
        }
        check_setops(name, left, report);
        check_setops(name, right, report);
    }
}

fn op_name(op: SetOp) -> &'static str {
    match op {
        SetOp::Union => "UNION",
        SetOp::Intersect => "INTERSECT",
        SetOp::Except => "EXCEPT",
    }
}

fn for_each_select<'a>(body: &'a SetExpr, f: &mut impl FnMut(&'a Select)) {
    match body {
        SetExpr::Select(sel) => f(sel),
        SetExpr::SetOp { left, right, .. } => {
            for_each_select(left, f);
            for_each_select(right, f);
        }
    }
}

/// Number of direct FROM-clause references to `cte` in one SELECT.
fn count_from_refs(sel: &Select, cte: &str) -> usize {
    sel.from
        .iter()
        .flat_map(|twj| std::iter::once(&twj.base).chain(twj.joins.iter().map(|j| &j.factor)))
        .filter(|factor| match factor {
            TableFactor::Table { name, .. } => name.eq_ignore_ascii_case(cte),
            TableFactor::Derived { .. } => false,
        })
        .count()
}

/// Number of FROM factors that are *not* the recursion table.
fn count_other_factors(sel: &Select, cte: &str) -> usize {
    sel.from
        .iter()
        .flat_map(|twj| std::iter::once(&twj.base).chain(twj.joins.iter().map(|j| &j.factor)))
        .filter(|factor| match factor {
            TableFactor::Table { name, .. } => !name.eq_ignore_ascii_case(cte),
            TableFactor::Derived { .. } => true,
        })
        .count()
}

fn has_aggregation(sel: &Select) -> bool {
    if !sel.group_by.is_empty() || sel.having.is_some() {
        return true;
    }
    sel.projection.iter().any(|item| match item {
        pdm_sql::ast::SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        _ => false,
    }) || sel
        .where_clause
        .as_ref()
        .is_some_and(Expr::contains_aggregate)
}

/// True if any subquery nested in the SELECT's expressions references `cte`.
fn subqueries_reference(sel: &Select, cte: &str) -> bool {
    let exprs = sel
        .projection
        .iter()
        .filter_map(|item| match item {
            pdm_sql::ast::SelectItem::Expr { expr, .. } => Some(expr),
            _ => None,
        })
        .chain(sel.where_clause.iter())
        .chain(sel.having.iter())
        .chain(sel.group_by.iter())
        .chain(
            sel.from
                .iter()
                .flat_map(|twj| twj.joins.iter().filter_map(|j| j.on.as_ref())),
        );
    exprs.into_iter().any(|e| expr_subquery_refs(e, cte))
}

fn expr_subquery_refs(expr: &Expr, cte: &str) -> bool {
    match expr {
        Expr::InSubquery { expr, query, .. } => {
            expr_subquery_refs(expr, cte) || query_references(query, cte)
        }
        Expr::Exists { query, .. } | Expr::ScalarSubquery(query) => query_references(query, cte),
        Expr::BinaryOp { left, right, .. } => {
            expr_subquery_refs(left, cte) || expr_subquery_refs(right, cte)
        }
        Expr::Not(e) | Expr::Negate(e) | Expr::Cast { expr: e, .. } => expr_subquery_refs(e, cte),
        Expr::IsNull { expr, .. } => expr_subquery_refs(expr, cte),
        Expr::InList { expr, list, .. } => {
            expr_subquery_refs(expr, cte) || list.iter().any(|e| expr_subquery_refs(e, cte))
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            expr_subquery_refs(expr, cte)
                || expr_subquery_refs(low, cte)
                || expr_subquery_refs(high, cte)
        }
        Expr::Like { expr, pattern, .. } => {
            expr_subquery_refs(expr, cte) || expr_subquery_refs(pattern, cte)
        }
        Expr::Function { args, .. } => args.iter().any(|e| expr_subquery_refs(e, cte)),
        Expr::Case {
            branches,
            else_expr,
        } => {
            branches
                .iter()
                .any(|(c, r)| expr_subquery_refs(c, cte) || expr_subquery_refs(r, cte))
                || else_expr
                    .as_ref()
                    .is_some_and(|e| expr_subquery_refs(e, cte))
        }
        Expr::Column { .. } | Expr::Literal(_) => false,
    }
}

/// True if any SELECT in the query tree (including nested subqueries)
/// references `cte` in its FROM clause.
fn query_references(query: &Query, cte: &str) -> bool {
    contains_cte_ref(&query.body, cte)
}

fn contains_cte_ref(body: &SetExpr, cte: &str) -> bool {
    let mut found = false;
    for_each_select(body, &mut |sel| {
        if count_from_refs(sel, cte) > 0 || subqueries_reference(sel, cte) {
            found = true;
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_sql::parser::parse_query;

    fn run(sql: &str) -> Report {
        let q = parse_query(sql).expect("parse");
        let mut report = Report::new();
        check_recursion(&q, &mut report);
        report
    }

    const SAFE: &str = "WITH RECURSIVE rtbl (obid) AS (\
         SELECT obid FROM assy WHERE obid = 1 \
         UNION SELECT assy.obid FROM rtbl JOIN link ON rtbl.obid = link.left \
         JOIN assy ON link.right = assy.obid) SELECT obid FROM rtbl";

    #[test]
    fn safe_shape_is_clean() {
        assert!(run(SAFE).is_clean());
    }

    #[test]
    fn missing_seed_flagged() {
        let r = run("WITH RECURSIVE rtbl (obid) AS (\
             SELECT link.right FROM rtbl JOIN link ON rtbl.obid = link.left) \
             SELECT obid FROM rtbl");
        assert!(r.flags(Check::NoSeedTerm));
    }

    #[test]
    fn nonlinear_recursion_flagged() {
        let r = run("WITH RECURSIVE rtbl (obid) AS (\
             SELECT obid FROM assy UNION \
             SELECT a.obid FROM rtbl AS a JOIN rtbl AS b ON a.obid = b.obid) \
             SELECT obid FROM rtbl");
        assert!(r.flags(Check::NonLinearRecursion));
    }

    #[test]
    fn aggregate_and_distinct_in_recursive_term_flagged() {
        let r = run("WITH RECURSIVE rtbl (n) AS (\
             SELECT obid FROM assy UNION \
             SELECT DISTINCT MAX(link.right) FROM rtbl JOIN link ON rtbl.n = link.left) \
             SELECT n FROM rtbl");
        assert!(r.flags(Check::RecursiveAggregate));
        assert!(r.flags(Check::RecursiveDistinct));
    }

    #[test]
    fn subquery_over_cte_flagged() {
        let r = run("WITH RECURSIVE rtbl (obid) AS (\
             SELECT obid FROM assy UNION \
             SELECT link.right FROM rtbl JOIN link ON rtbl.obid = link.left \
             WHERE link.right NOT IN (SELECT obid FROM rtbl)) \
             SELECT obid FROM rtbl");
        assert!(r.flags(Check::RecursiveSubqueryRef));
    }

    #[test]
    fn no_descent_flagged() {
        let r = run("WITH RECURSIVE rtbl (obid) AS (\
             SELECT obid FROM assy UNION SELECT obid FROM rtbl) \
             SELECT obid FROM rtbl");
        assert!(r.flags(Check::RecursiveNoDescent));
    }

    #[test]
    fn union_all_recursion_warns() {
        let r = run("WITH RECURSIVE rtbl (obid) AS (\
             SELECT obid FROM assy UNION ALL \
             SELECT link.right FROM rtbl JOIN link ON rtbl.obid = link.left) \
             SELECT obid FROM rtbl");
        assert!(r.flags(Check::UnionAllRecursion));
        assert!(!r.has_errors());
    }

    #[test]
    fn intersect_recursion_flagged() {
        let r = run("WITH RECURSIVE rtbl (obid) AS (\
             SELECT obid FROM assy INTERSECT \
             SELECT link.right FROM rtbl JOIN link ON rtbl.obid = link.left) \
             SELECT obid FROM rtbl");
        assert!(r.flags(Check::NonUnionRecursion));
    }

    #[test]
    fn generator_mle_query_is_clean() {
        // The real §5.2 generator output must pass all recursion lints.
        let q = pdm_core::query::recursive::mle_query(1);
        let mut report = Report::new();
        check_recursion(&q, &mut report);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn non_recursive_query_skipped() {
        assert!(run("SELECT obid FROM assy").is_clean());
    }
}
