//! The analyzer's view of the database schema: table → column names, view
//! names, and the set of callable functions.
//!
//! Two operating modes:
//!
//! * **strict** — every table reference must resolve (the CLI corpus audit,
//!   which has the full Figure-2 schema);
//! * **lenient** — unknown tables are accepted as opaque bindings with
//!   unknown columns (the generation-time hook, where alternative structure
//!   views carry arbitrary link-table names).

use std::collections::{HashMap, HashSet};

/// Schema and function environment for one analysis run.
#[derive(Debug, Clone)]
pub struct SchemaInfo {
    /// table name (lowercase) → column names (lowercase, in order).
    tables: HashMap<String, Vec<String>>,
    /// View names (lowercase). Views resolve but expose unknown columns —
    /// exactly the §5.5 opacity the modificator suffers from.
    views: HashSet<String>,
    /// Callable scalar function names (lowercase), aggregates excluded.
    functions: HashSet<String>,
    lenient: bool,
}

impl SchemaInfo {
    /// An empty schema (every table unknown; useful with [`Self::lenient`]).
    pub fn empty() -> Self {
        SchemaInfo {
            tables: HashMap::new(),
            views: HashSet::new(),
            functions: builtin_functions(),
            lenient: false,
        }
    }

    /// The flattened Figure-2 PDM schema the workload populates: `assy`,
    /// `comp`, `link`, `spec`, `specified_by`, with the PDM stored functions
    /// registered.
    pub fn paper() -> Self {
        let mut s = SchemaInfo::empty();
        s.add_table(
            "assy",
            &[
                "type",
                "obid",
                "name",
                "dec",
                "make_or_buy",
                "strc_opt",
                "checkedout",
                "payload",
            ],
        );
        s.add_table(
            "comp",
            &["type", "obid", "name", "strc_opt", "checkedout", "payload"],
        );
        s.add_table(
            "link",
            &[
                "type", "obid", "left", "right", "eff_from", "eff_to", "strc_opt",
            ],
        );
        s.add_table("spec", &["type", "obid", "name"]);
        s.add_table("specified_by", &["obid", "left", "right"]);
        for f in ["overlaps_interval", "set_overlaps", "effective_name"] {
            s.add_function(f);
        }
        s
    }

    /// Snapshot a live engine catalog: its tables (with columns), views, and
    /// registered functions are what the analyzer resolves against.
    pub fn from_database(db: &pdm_sql::Database) -> Self {
        let mut s = SchemaInfo::empty();
        for name in db.catalog.table_names() {
            if let Ok(table) = db.catalog.table(name) {
                let cols: Vec<&str> = table.schema.names();
                s.add_table(name, &cols);
            }
        }
        for name in db.catalog.view_names() {
            s.add_view(name);
        }
        s
    }

    /// Switch to lenient mode: unknown tables become opaque bindings.
    pub fn lenient(mut self) -> Self {
        self.lenient = true;
        self
    }

    pub fn is_lenient(&self) -> bool {
        self.lenient
    }

    pub fn add_table(&mut self, name: &str, columns: &[&str]) {
        self.tables.insert(
            name.to_ascii_lowercase(),
            columns.iter().map(|c| c.to_ascii_lowercase()).collect(),
        );
    }

    pub fn add_view(&mut self, name: &str) {
        self.views.insert(name.to_ascii_lowercase());
    }

    pub fn add_function(&mut self, name: &str) {
        self.functions.insert(name.to_ascii_lowercase());
    }

    /// Columns of a base table, if known.
    pub fn table_columns(&self, name: &str) -> Option<&Vec<String>> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    pub fn has_view(&self, name: &str) -> bool {
        self.views.contains(&name.to_ascii_lowercase())
    }

    pub fn has_function(&self, name: &str) -> bool {
        self.functions.contains(&name.to_ascii_lowercase())
    }
}

/// Built-in scalar functions of the engine's default registry.
fn builtin_functions() -> HashSet<String> {
    ["abs", "upper", "lower", "length", "coalesce", "nullif"]
        .into_iter()
        .map(String::from)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schema_has_figure2_tables() {
        let s = SchemaInfo::paper();
        for t in ["assy", "comp", "link", "spec", "specified_by"] {
            assert!(s.has_table(t), "missing table {t}");
        }
        assert!(s
            .table_columns("assy")
            .is_some_and(|c| c.contains(&"make_or_buy".to_string())));
        assert!(s.has_function("OVERLAPS_INTERVAL"));
        assert!(s.has_function("coalesce"));
        assert!(!s.has_table("nonesuch"));
    }

    #[test]
    fn from_database_snapshots_catalog() {
        let mut db = pdm_sql::Database::new();
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
            .expect("create");
        db.execute("CREATE VIEW v AS SELECT a FROM t")
            .expect("view");
        let s = SchemaInfo::from_database(&db);
        assert_eq!(
            s.table_columns("t"),
            Some(&vec!["a".to_string(), "b".to_string()])
        );
        assert!(s.has_view("v"));
    }
}
