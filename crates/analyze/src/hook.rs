//! Generation-time audit hook.
//!
//! [`install`] registers the analyzer with
//! [`pdm_core::query::audit::install_audit_hook`], so that in debug builds
//! every query the generators or the modificator produce is name-resolved
//! and recursion-checked the moment it is built — and the building test or
//! bench panics with the diagnostics if anything is wrong.
//!
//! The hook analyzes in **lenient** mode against the paper schema: the
//! generators can be pointed at alternative structure views whose link
//! tables carry arbitrary names, which must bind opaquely rather than fail
//! resolution.

use std::sync::Once;

use crate::diag::Report;
use crate::schema::SchemaInfo;

static INSTALL: Once = Once::new();

/// Install the audit hook (idempotent; cheap to call from every test).
pub fn install() {
    INSTALL.call_once(|| {
        let schema = SchemaInfo::paper().lenient();
        pdm_core::query::audit::install_audit_hook(move |query| {
            let mut report = Report::new();
            crate::resolve::check_query(query, &schema, &mut report);
            crate::recursion::check_recursion(query, &mut report);
            assert!(
                !report.has_errors(),
                "generated query failed static analysis:\n{report}\nSQL: {query}"
            );
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooked_generators_stay_clean() {
        install();
        install(); // idempotent
                   // Every generator runs under the hook without panicking.
        let _ = pdm_core::query::navigational::expand_query(42);
        let _ = pdm_core::query::navigational::expand_many_query(&[1, 2], "alt_link");
        let _ = pdm_core::query::recursive::mle_query(1);
    }
}
