//! Property tests for the WAL record codec and log framing (seeded corpora
//! through `pdm_prng::check`, the offline proptest replacement).
//!
//! The central durability property: for ANY byte-level truncation or ANY
//! single-bit flip of a log image, scanning either (a) cleanly reports the
//! damage, or (b) yields a log whose records are a *prefix* of the original
//! sequence — never a corrupted, reordered, or invented record.

#![allow(clippy::unwrap_used)]

use pdm_prng::check::cases;
use pdm_prng::Prng;
use pdm_sql::Database;
use pdm_wal::{log, CrashPlan, SimDevice, WalRecord};

fn arbitrary_record(rng: &mut Prng) -> WalRecord {
    fn ids(rng: &mut Prng) -> Vec<i64> {
        (0..rng.index(6))
            .map(|_| rng.i64_inclusive(1, 5000))
            .collect()
    }
    match rng.index(5) {
        0 => WalRecord::DmlCommit {
            version: rng.u64_inclusive(1, 1 << 40),
            sql: format!(
                "UPDATE {} SET checkedout = {} WHERE obid IN ({})",
                if rng.bool() { "assy" } else { "comp" },
                if rng.bool() { "TRUE" } else { "FALSE" },
                rng.i64_inclusive(1, 9999)
            ),
        },
        1 => WalRecord::CheckoutGrant {
            token: rng.u64_inclusive(1, 1 << 32),
            assy_ids: ids(rng),
            comp_ids: ids(rng),
        },
        2 => WalRecord::CheckoutRelease { ids: ids(rng) },
        3 => WalRecord::TokenComplete {
            token: rng.u64_inclusive(1, 1 << 32),
            rows: None,
        },
        _ => {
            // A token outcome carrying real rows exercises the nested
            // result-set codec.
            let mut db = Database::new();
            db.execute("CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR, c DOUBLE)")
                .unwrap();
            let n = rng.index(4) + 1;
            for i in 0..n {
                db.execute(&format!(
                    "INSERT INTO t VALUES ({}, '{}', {})",
                    i,
                    rng.ident(1, 8),
                    rng.f64_range(-10.0, 10.0)
                ))
                .unwrap();
            }
            WalRecord::TokenComplete {
                token: rng.u64_inclusive(1, 1 << 32),
                rows: Some(db.query("SELECT * FROM t ORDER BY a").unwrap()),
            }
        }
    }
}

#[test]
fn record_encode_decode_round_trip() {
    cases("wal_record_round_trip", 128, 0x0DEC_AF01, |rng| {
        let rec = arbitrary_record(rng);
        let bytes = rec.encode();
        assert_eq!(WalRecord::decode(&bytes).unwrap(), rec);
    });
}

fn build_log(rng: &mut Prng) -> (Vec<u8>, Vec<(u64, WalRecord)>) {
    let mut dev = SimDevice::new(CrashPlan::none());
    let n = rng.index(6) + 1;
    let mut originals = Vec::with_capacity(n);
    for seq in 1..=n as u64 {
        let rec = arbitrary_record(rng);
        log::append_record(&mut dev, seq, &rec.encode()).unwrap();
        originals.push((seq, rec));
    }
    dev.sync().unwrap();
    (dev.surviving().to_vec(), originals)
}

fn decoded_prefix(image: &[u8]) -> Vec<(u64, WalRecord)> {
    let scan = log::scan(image);
    scan.records
        .into_iter()
        .map(|(seq, payload)| {
            let rec = WalRecord::decode(&payload)
                .expect("a checksum-valid record must decode (corruption leaked through)");
            (seq, rec)
        })
        .collect()
}

#[test]
fn any_truncation_detected_or_valid_shorter_prefix() {
    cases("wal_truncation_prefix", 48, 0x0DEC_AF02, |rng| {
        let (image, originals) = build_log(rng);
        // Every truncation point, not a sample: the image is small enough.
        for cut in 0..=image.len() {
            let scan = log::scan(&image[..cut]);
            let survived = decoded_prefix(&image[..cut]);
            assert!(
                originals.starts_with(&survived),
                "cut {cut}: survived records are not a prefix"
            );
            if survived.len() < originals.len() && cut < image.len() {
                // Lost records must be accounted for: either the cut landed
                // exactly on a frame boundary (clean shorter log) or the
                // scan reported damage.
                assert!(
                    scan.damage.is_some() || scan.valid_len == cut,
                    "cut {cut}: silent record loss"
                );
            }
        }
    });
}

#[test]
fn any_single_bit_flip_detected_or_valid_shorter_prefix() {
    cases("wal_bit_flip_prefix", 24, 0x0DEC_AF03, |rng| {
        let (image, originals) = build_log(rng);
        // Sample bit positions (exhaustive is O(bits × records) and the
        // truncation test already covers structure); always include the
        // first and last byte.
        let mut positions: Vec<usize> = (0..48).map(|_| rng.index(image.len() * 8)).collect();
        positions.push(0);
        positions.push(image.len() * 8 - 1);
        for bit in positions {
            let mut flipped = image.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            let scan = log::scan(&flipped);
            let survived = decoded_prefix(&flipped);
            assert!(
                scan.damage.is_some() || survived == originals,
                "bit {bit}: corruption neither detected nor harmless"
            );
            assert!(
                originals.starts_with(&survived),
                "bit {bit}: a corrupted record was accepted"
            );
        }
    });
}

#[test]
fn torn_device_crashes_always_leave_a_recoverable_prefix() {
    use pdm_wal::{DurableStore, TailFault};
    cases("wal_torn_crash_prefix", 64, 0x0DEC_AF04, |rng| {
        let fault = match rng.index(3) {
            0 => TailFault::LoseTail,
            1 => TailFault::TornWrite,
            _ => TailFault::PartialSector,
        };
        let n_records = rng.index(8) + 1;
        // Each record costs two device ops (append + sync); crash anywhere
        // inside the run.
        let crash_op = rng.u64_inclusive(0, (n_records as u64) * 2 - 1);
        let plan = CrashPlan::at_op(crash_op)
            .with_fault(fault)
            .with_seed(rng.next_u64());
        let mut store = DurableStore::new(plan);
        let mut durable: Vec<(u64, WalRecord)> = Vec::new();
        for i in 1..=n_records as u64 {
            let rec = arbitrary_record(rng);
            if store.commit(&rec).is_ok() {
                durable.push((i, rec));
            } else {
                break;
            }
        }
        let (_, recovered) = DurableStore::from_image(store.image(), CrashPlan::none()).unwrap();
        // Exactly the synced records survive — fsync is a hard barrier, and
        // the torn tail never invents or corrupts a record.
        assert_eq!(recovered.records, durable, "fault {fault:?} op {crash_op}");
    });
}
