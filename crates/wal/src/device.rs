//! A simulated append-only storage device with fsync barriers and seeded
//! crash faults.
//!
//! The device models the durability contract of a real disk as the WAL
//! needs it: bytes become durable only at a sync barrier; a crash may do
//! anything to the unsynced tail — drop it, tear the final write at an
//! arbitrary byte, or persist whole sectors plus a garbage partial sector.
//! Which of those happens, and where the tear lands, is a pure function of
//! the [`CrashPlan`] seed, mirroring the `FaultPlan` discipline of
//! `pdm-net`: every crash scenario replays from one integer.

use pdm_prng::{splitmix64, Prng};

use crate::WalError;

/// Simulated sector size: a partial-sector crash persists the tail up to
/// this boundary and garbles (part of) the next sector.
pub const SECTOR: usize = 512;

/// What happens to the unsynced tail when the device crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailFault {
    /// The whole unsynced tail is lost (the classic lost-write crash).
    LoseTail,
    /// A seed-chosen byte prefix of the tail survives — the final record is
    /// torn mid-frame.
    TornWrite,
    /// Whole sectors of the tail survive; the sector being written at crash
    /// time persists with seed-chosen garbage contents (detected by the
    /// record checksum, never trusted).
    PartialSector,
}

/// A seeded, reproducible crash schedule. `crash_at_op` counts device
/// operations (appends and syncs, zero-based); when the counter reaches it
/// the operation fails, the device marks itself crashed, and `fault` is
/// applied to the unsynced tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    pub seed: u64,
    pub crash_at_op: Option<u64>,
    pub fault: TailFault,
}

impl CrashPlan {
    /// Never crash.
    pub fn none() -> Self {
        CrashPlan {
            seed: 0,
            crash_at_op: None,
            fault: TailFault::LoseTail,
        }
    }

    /// Crash at device operation `op` (0-based across appends and syncs).
    pub fn at_op(op: u64) -> Self {
        CrashPlan {
            seed: 0,
            crash_at_op: Some(op),
            fault: TailFault::LoseTail,
        }
    }

    pub fn with_fault(mut self, fault: TailFault) -> Self {
        self.fault = fault;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn is_none(&self) -> bool {
        self.crash_at_op.is_none()
    }

    /// Deterministic generator for the fault's free choices (tear offset,
    /// garbage bytes), keyed on the op index so distinct crash points make
    /// independent draws.
    pub fn rng_for(&self, op: u64) -> Prng {
        Prng::seed_from_u64(splitmix64(self.seed ^ splitmix64(op.wrapping_add(1))))
    }
}

/// Operation counters, exposed for the benchmark harness (syncs are the
/// expensive operation a checkpoint policy trades against recovery time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    pub appends: u64,
    pub syncs: u64,
    pub bytes_written: u64,
}

/// The simulated device. Append-only byte store with a durable prefix
/// (`synced_len`) advanced by [`SimDevice::sync`].
#[derive(Debug, Clone)]
pub struct SimDevice {
    data: Vec<u8>,
    synced_len: usize,
    ops: u64,
    stats: DeviceStats,
    plan: CrashPlan,
    crashed: bool,
}

impl SimDevice {
    pub fn new(plan: CrashPlan) -> Self {
        SimDevice {
            data: Vec::new(),
            synced_len: 0,
            ops: 0,
            stats: DeviceStats::default(),
            plan,
            crashed: false,
        }
    }

    /// Re-open a device from bytes that survived a crash: everything is
    /// durable, and no further crash is scheduled.
    pub fn with_contents(bytes: Vec<u8>) -> Self {
        let len = bytes.len();
        SimDevice {
            data: bytes,
            synced_len: len,
            ops: 0,
            stats: DeviceStats::default(),
            plan: CrashPlan::none(),
            crashed: false,
        }
    }

    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Replace the crash schedule (used when re-opening a recovered image
    /// under a fresh chaos plan).
    pub fn set_plan(&mut self, plan: CrashPlan) {
        self.plan = plan;
    }

    /// Adopt another device's crash plan *and* operation counter, so a
    /// scheduled crash keeps ticking across a device swap (the checkpoint
    /// truncation replaces the log device mid-run).
    pub fn adopt_schedule(&mut self, other: &SimDevice) {
        self.plan = other.plan;
        self.ops = other.ops;
    }

    /// Total bytes currently on the device (durable prefix + unsynced tail,
    /// or the post-fault image after a crash).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes a recovery scan would read. Before a crash this is the full
    /// content; after a crash it is the faulted image.
    pub fn surviving(&self) -> &[u8] {
        &self.data
    }

    fn step(&mut self) -> Result<(), WalError> {
        if self.crashed {
            return Err(WalError::DeviceCrashed);
        }
        let op = self.ops;
        self.ops += 1;
        if self.plan.crash_at_op == Some(op) {
            self.crash(op);
            return Err(WalError::DeviceCrashed);
        }
        Ok(())
    }

    /// Append bytes to the unsynced tail. Fails (leaving the device crashed,
    /// with the tail fault applied) if this operation hits the crash point.
    pub fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        // Model the crash as striking mid-write: the bytes of this append
        // are part of the unsynced tail the fault mangles.
        if !self.crashed && self.plan.crash_at_op == Some(self.ops) {
            self.data.extend_from_slice(bytes);
        }
        self.step()?;
        self.data.extend_from_slice(bytes);
        self.stats.appends += 1;
        self.stats.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Durability barrier: everything appended so far survives any later
    /// crash. Fails if this operation hits the crash point (the tail is
    /// then mangled *without* having become durable).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.step()?;
        self.synced_len = self.data.len();
        self.stats.syncs += 1;
        Ok(())
    }

    /// Force a crash now (used by the harness to kill the device at a
    /// boundary the plan did not schedule).
    pub fn crash_now(&mut self) {
        if !self.crashed {
            let op = self.ops;
            self.crash(op);
        }
    }

    fn crash(&mut self, op: u64) {
        self.crashed = true;
        let tail_len = self.data.len() - self.synced_len;
        if tail_len == 0 {
            return;
        }
        let mut rng = self.plan.rng_for(op);
        match self.plan.fault {
            TailFault::LoseTail => {
                self.data.truncate(self.synced_len);
            }
            TailFault::TornWrite => {
                // Any strict prefix of the tail may survive.
                let keep = rng.index(tail_len);
                self.data.truncate(self.synced_len + keep);
            }
            TailFault::PartialSector => {
                // Sectors fully contained in the durable-or-written image
                // persist; the in-flight sector persists with garbage.
                let end = self.data.len();
                let boundary = (end / SECTOR) * SECTOR;
                let keep = boundary.max(self.synced_len);
                let torn = end - keep;
                self.data.truncate(keep);
                if torn > 0 {
                    let garbage = rng.usize_inclusive(1, torn);
                    for _ in 0..garbage {
                        self.data.push(rng.next_u64() as u8);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synced_prefix_survives_any_fault() {
        for fault in [
            TailFault::LoseTail,
            TailFault::TornWrite,
            TailFault::PartialSector,
        ] {
            // ops: append(0) sync(1) append(2) crash-at-3
            let mut dev = SimDevice::new(CrashPlan::at_op(3).with_fault(fault).with_seed(9));
            dev.append(b"durable!").unwrap();
            dev.sync().unwrap();
            dev.append(b"doomed tail bytes").unwrap();
            assert_eq!(dev.sync(), Err(WalError::DeviceCrashed));
            assert!(dev.is_crashed());
            assert!(dev.surviving().starts_with(b"durable!"), "{fault:?}");
            // Everything fails after the crash.
            assert_eq!(dev.append(b"x"), Err(WalError::DeviceCrashed));
        }
    }

    #[test]
    fn lose_tail_drops_exactly_the_unsynced_bytes() {
        let mut dev = SimDevice::new(CrashPlan::at_op(3));
        dev.append(b"keep").unwrap();
        dev.sync().unwrap();
        dev.append(b"drop").unwrap();
        let _ = dev.sync();
        assert_eq!(dev.surviving(), b"keep");
    }

    #[test]
    fn torn_write_keeps_a_strict_prefix_of_the_tail() {
        for seed in 0..50 {
            let mut dev = SimDevice::new(
                CrashPlan::at_op(2)
                    .with_fault(TailFault::TornWrite)
                    .with_seed(seed),
            );
            dev.append(b"base").unwrap();
            dev.sync().unwrap();
            let _ = dev.append(b"0123456789");
            let surviving = dev.surviving();
            assert!(surviving.len() < 4 + 10, "tail fully survived");
            assert!(surviving.starts_with(b"base") || surviving.len() < 4);
            assert!(b"base0123456789".starts_with(surviving));
        }
    }

    #[test]
    fn crash_during_append_can_tear_that_append() {
        // Crash at op 0: the very first append is struck mid-write.
        let mut dev = SimDevice::new(
            CrashPlan::at_op(0)
                .with_fault(TailFault::TornWrite)
                .with_seed(4),
        );
        assert_eq!(dev.append(b"abcdef"), Err(WalError::DeviceCrashed));
        assert!(b"abcdef".starts_with(dev.surviving()));
    }

    #[test]
    fn partial_sector_keeps_whole_sectors_and_garbles_the_rest() {
        let mut dev = SimDevice::new(
            CrashPlan::at_op(2)
                .with_fault(TailFault::PartialSector)
                .with_seed(7),
        );
        let big = vec![0xAAu8; SECTOR + 100];
        dev.append(&big).unwrap();
        dev.sync().unwrap();
        let tail = vec![0xBBu8; SECTOR + 40];
        let _ = dev.append(&tail);
        let surviving = dev.surviving();
        // The first full sector of the tail survived intact.
        let synced = SECTOR + 100;
        let full_sectors_end = ((synced + tail.len()) / SECTOR) * SECTOR;
        assert!(surviving.len() >= full_sectors_end);
        assert!(surviving[synced..full_sectors_end]
            .iter()
            .all(|&b| b == 0xBB));
        // Whatever follows is garbage, not the written 0xBB pattern (with
        // this seed; garbage *could* coincide, the checksum is the real
        // defense).
        assert!(surviving[full_sectors_end..].iter().any(|&b| b != 0xBB));
    }

    #[test]
    fn crash_is_deterministic_per_seed() {
        let image = |seed: u64| {
            let mut dev = SimDevice::new(
                CrashPlan::at_op(1)
                    .with_fault(TailFault::TornWrite)
                    .with_seed(seed),
            );
            dev.append(b"0123456789abcdef").unwrap();
            let _ = dev.sync();
            dev.surviving().to_vec()
        };
        assert_eq!(image(5), image(5));
    }

    #[test]
    fn stats_count_operations() {
        let mut dev = SimDevice::new(CrashPlan::none());
        dev.append(b"abc").unwrap();
        dev.append(b"de").unwrap();
        dev.sync().unwrap();
        let s = dev.stats();
        assert_eq!(s.appends, 2);
        assert_eq!(s.syncs, 1);
        assert_eq!(s.bytes_written, 5);
    }

    #[test]
    fn reopened_device_is_fully_durable() {
        let dev = SimDevice::with_contents(b"restored".to_vec());
        assert!(!dev.is_crashed());
        assert_eq!(dev.surviving(), b"restored");
        assert_eq!(dev.len(), 8);
    }
}
