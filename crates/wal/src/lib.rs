#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # pdm-wal — crash-consistent durability for the PDM server
//!
//! The paper's PDM server is the system of record for worldwide
//! engineering data (§1); losing committed state on a process crash would
//! defeat every consistency property the upper layers promise — most
//! directly the failure-atomic check-out semantics, which assume a grant
//! recorded by the server stays recorded. This crate supplies the missing
//! layer:
//!
//! * a **simulated storage device** ([`SimDevice`]) with explicit fsync
//!   barriers and seeded, injectable crash faults (lost unsynced tail,
//!   torn final write, partial-sector write) in the style of the
//!   `FaultPlan` WAN faults of `pdm-net` — every crash scenario replays
//!   from one integer seed;
//! * a **write-ahead log** of length-prefixed, checksummed records
//!   ([`WalRecord`]): every DML commit, check-out grant/release, and
//!   idempotency-token completion, appended and fsynced *before* the
//!   state change is published (the commit gate of
//!   `pdm_sql::SharedDatabase::execute_ast_gated`);
//! * **snapshot checkpoints** ([`DurableStore::install_checkpoint`]):
//!   the current storage snapshot is serialized and the log prefix
//!   truncated, so recovery is checkpoint-load plus short-log-replay,
//!   not full-history replay;
//! * a **recovery scanner** ([`DurableStore::from_image`]) that walks the
//!   surviving bytes, verifies checksums, and cleanly truncates any torn
//!   or corrupt tail back to the last valid record — any byte-level
//!   truncation or bit flip is either detected or yields a valid shorter
//!   prefix of the committed history.
//!
//! The durability *policy* (what to log when, how to sweep stale check-out
//! grants, how to rebuild the server) lives in `pdm_core::durability`;
//! this crate is mechanism only.

pub mod codec;
pub mod device;
pub mod log;
pub mod record;
pub mod store;

pub use codec::crc32;
pub use device::{CrashPlan, DeviceStats, SimDevice, TailFault};
pub use log::{LogDamage, LogScan};
pub use record::WalRecord;
pub use store::{DurableImage, DurableStore, RecoveredStore};

use std::fmt;

/// Errors surfaced by the durability mechanism.
#[derive(Debug, Clone, PartialEq)]
pub enum WalError {
    /// The simulated device has crashed; all further operations fail until
    /// the store is re-opened from its surviving image.
    DeviceCrashed,
    /// A structurally valid (checksum-verified) record failed to decode —
    /// a logic/versioning error, not a torn write.
    Decode { offset: usize, detail: String },
    /// Structural damage in a place recovery cannot tolerate (e.g. the
    /// checkpoint blob). Tail damage in the log is NOT an error — it is
    /// reported as [`LogScan::damage`] and truncated away.
    Damage(LogDamage),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::DeviceCrashed => write!(f, "simulated storage device has crashed"),
            WalError::Decode { offset, detail } => {
                write!(f, "record decode failed at offset {offset}: {detail}")
            }
            WalError::Damage(d) => write!(f, "unrecoverable damage: {d}"),
        }
    }
}

impl std::error::Error for WalError {}
