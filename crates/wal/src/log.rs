//! Log framing: length-prefixed, checksummed records over a byte device.
//
// lint:allow-file(unchecked-index): framing code — every slice read is
// preceded by an explicit remaining-length guard; a panic here would mean
// the guard logic itself is wrong, which the torn-tail tests cover.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! +------+---------+---------+---------+----------------+
//! | 0xA5 | len u32 | seq u64 | crc u32 | payload (len)  |
//! +------+---------+---------+---------+----------------+
//! ```
//!
//! `crc` is CRC-32 over `seq_le || payload`. The scanner walks frames from
//! offset 0 and stops at the first sign of damage — a bad magic byte, an
//! implausible length, a truncated frame, or a checksum mismatch — and
//! reports it with its byte offset. Everything before the damage is a valid
//! record prefix; a torn or corrupted tail can only ever cost the records
//! at the very end, never reorder or corrupt earlier ones undetected.

use std::fmt;

use crate::codec::crc32_pair;
use crate::device::SimDevice;
use crate::WalError;

/// First byte of every frame; makes "log truncated mid-frame followed by
/// garbage" overwhelmingly likely to be caught by framing alone, before the
/// checksum even runs.
pub const MAGIC: u8 = 0xA5;

/// Fixed frame header size: magic + len + seq + crc.
pub const HEADER: usize = 1 + 4 + 8 + 4;

/// Upper bound on a record payload; lengths beyond this are treated as
/// damage (a torn length field would otherwise ask for gigabytes).
pub const MAX_RECORD: u32 = 1 << 26;

/// Structural damage found while scanning a log, with enough context to
/// print a useful diagnostic (offset, expected vs found checksum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogDamage {
    /// Fewer than `HEADER` bytes remained at `offset`.
    TruncatedHeader { offset: usize, have: usize },
    /// The header promised `need` payload bytes; only `have` remained.
    TruncatedRecord {
        offset: usize,
        need: usize,
        have: usize,
    },
    /// The frame at `offset` does not start with [`MAGIC`].
    BadMagic { offset: usize, found: u8 },
    /// The length field is beyond [`MAX_RECORD`].
    OversizedRecord { offset: usize, len: u32 },
    /// The frame checksum does not match its contents.
    ChecksumMismatch {
        offset: usize,
        expected: u32,
        found: u32,
    },
}

impl LogDamage {
    /// Byte offset of the damaged frame — also the length of the valid
    /// prefix that precedes it.
    pub fn offset(&self) -> usize {
        match self {
            LogDamage::TruncatedHeader { offset, .. }
            | LogDamage::TruncatedRecord { offset, .. }
            | LogDamage::BadMagic { offset, .. }
            | LogDamage::OversizedRecord { offset, .. }
            | LogDamage::ChecksumMismatch { offset, .. } => *offset,
        }
    }
}

impl fmt::Display for LogDamage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogDamage::TruncatedHeader { offset, have } => {
                write!(f, "truncated header at offset {offset}: {have} bytes remain")
            }
            LogDamage::TruncatedRecord { offset, need, have } => write!(
                f,
                "truncated record at offset {offset}: need {need} payload bytes, {have} remain"
            ),
            LogDamage::BadMagic { offset, found } => {
                write!(f, "bad magic {found:#04x} at offset {offset}")
            }
            LogDamage::OversizedRecord { offset, len } => {
                write!(f, "implausible record length {len} at offset {offset}")
            }
            LogDamage::ChecksumMismatch {
                offset,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch at offset {offset}: expected {expected:#010x}, found {found:#010x}"
            ),
        }
    }
}

/// Result of scanning a byte image: the valid record prefix, the number of
/// bytes it spans, and the damage (if any) that ended the scan.
#[derive(Debug, Clone, PartialEq)]
pub struct LogScan {
    /// `(seq, payload)` for every intact record, in log order.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Bytes covered by the intact records; truncating the image to this
    /// length yields a fully valid log.
    pub valid_len: usize,
    /// What ended the scan early, if anything.
    pub damage: Option<LogDamage>,
}

/// Encode one frame.
pub fn frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let seq_bytes = seq.to_le_bytes();
    let crc = crc32_pair(&seq_bytes, payload);
    let mut out = Vec::with_capacity(HEADER + payload.len());
    out.push(MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&seq_bytes);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Append one framed record to the device (no sync — the caller decides
/// where the durability barriers go).
pub fn append_record(dev: &mut SimDevice, seq: u64, payload: &[u8]) -> Result<(), WalError> {
    dev.append(&frame(seq, payload))
}

/// Walk `bytes` frame by frame, stopping at the first damage.
pub fn scan(bytes: &[u8]) -> LogScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let damage = loop {
        if pos == bytes.len() {
            break None;
        }
        let remaining = bytes.len() - pos;
        if remaining < HEADER {
            break Some(LogDamage::TruncatedHeader {
                offset: pos,
                have: remaining,
            });
        }
        if bytes[pos] != MAGIC {
            break Some(LogDamage::BadMagic {
                offset: pos,
                found: bytes[pos],
            });
        }
        let len = u32::from_le_bytes([
            bytes[pos + 1],
            bytes[pos + 2],
            bytes[pos + 3],
            bytes[pos + 4],
        ]);
        if len > MAX_RECORD {
            break Some(LogDamage::OversizedRecord { offset: pos, len });
        }
        let mut seq_bytes = [0u8; 8];
        seq_bytes.copy_from_slice(&bytes[pos + 5..pos + 13]);
        let seq = u64::from_le_bytes(seq_bytes);
        let found = u32::from_le_bytes([
            bytes[pos + 13],
            bytes[pos + 14],
            bytes[pos + 15],
            bytes[pos + 16],
        ]);
        let need = len as usize;
        if remaining - HEADER < need {
            break Some(LogDamage::TruncatedRecord {
                offset: pos,
                need,
                have: remaining - HEADER,
            });
        }
        let payload = &bytes[pos + HEADER..pos + HEADER + need];
        let expected = crc32_pair(&seq_bytes, payload);
        if expected != found {
            break Some(LogDamage::ChecksumMismatch {
                offset: pos,
                expected,
                found,
            });
        }
        records.push((seq, payload.to_vec()));
        pos += HEADER + need;
    };
    LogScan {
        records,
        valid_len: pos,
        damage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::CrashPlan;

    fn sample_log() -> Vec<u8> {
        let mut dev = SimDevice::new(CrashPlan::none());
        append_record(&mut dev, 1, b"first").unwrap();
        append_record(&mut dev, 2, b"").unwrap();
        append_record(&mut dev, 3, b"third record payload").unwrap();
        dev.sync().unwrap();
        dev.surviving().to_vec()
    }

    #[test]
    fn round_trip() {
        let scan = scan(&sample_log());
        assert_eq!(scan.damage, None);
        assert_eq!(
            scan.records,
            vec![
                (1, b"first".to_vec()),
                (2, Vec::new()),
                (3, b"third record payload".to_vec()),
            ]
        );
        assert_eq!(scan.valid_len, sample_log().len());
    }

    #[test]
    fn any_truncation_yields_a_valid_prefix() {
        let full = sample_log();
        let complete = scan(&full).records;
        for cut in 0..full.len() {
            let s = scan(&full[..cut]);
            assert!(
                complete.starts_with(&s.records),
                "cut at {cut} produced a non-prefix"
            );
            if cut != full.len() {
                // Shorter image either ends exactly on a frame boundary
                // (fewer whole records, no damage) or reports damage.
                let whole: usize = s.valid_len;
                assert!(whole <= cut);
            }
        }
    }

    #[test]
    fn bit_flip_is_detected_or_leaves_valid_prefix() {
        let full = sample_log();
        let complete = scan(&full).records;
        for bit in 0..full.len() * 8 {
            let mut img = full.clone();
            img[bit / 8] ^= 1 << (bit % 8);
            let s = scan(&img);
            // Either the damage is reported, or (flip in a later frame) the
            // surviving records are a clean prefix of the originals.
            assert!(
                s.damage.is_some() || s.records == complete,
                "bit {bit}: undetected corruption"
            );
            assert!(
                complete.starts_with(&s.records),
                "bit {bit}: corrupted record accepted"
            );
        }
    }

    #[test]
    fn checksum_mismatch_reports_expected_and_found() {
        let mut img = sample_log();
        let last = img.len() - 1;
        img[last] ^= 0xFF; // corrupt final payload byte
        let s = scan(&img);
        match s.damage {
            Some(LogDamage::ChecksumMismatch {
                expected, found, ..
            }) => assert_ne!(expected, found),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
        assert_eq!(s.records.len(), 2);
    }

    #[test]
    fn damage_offset_equals_valid_prefix_len() {
        let full = sample_log();
        let cut = full.len() - 3;
        let s = scan(&full[..cut]);
        let d = s.damage.expect("must report damage");
        assert_eq!(d.offset(), s.valid_len);
    }

    #[test]
    fn oversized_length_is_damage_not_allocation() {
        let mut img = vec![MAGIC];
        img.extend_from_slice(&u32::MAX.to_le_bytes());
        img.extend_from_slice(&[0u8; 12]);
        let s = scan(&img);
        assert!(matches!(
            s.damage,
            Some(LogDamage::OversizedRecord { offset: 0, .. })
        ));
    }
}
