//! The logical WAL record vocabulary.
//!
//! Four record kinds cover every durable event the PDM server produces:
//!
//! * [`WalRecord::DmlCommit`] — one committed DML/DDL statement, with the
//!   storage version it published. Replay re-executes the SQL and asserts
//!   the version chain matches.
//! * [`WalRecord::CheckoutGrant`] — a failure-atomic check-out acquired its
//!   lock-table grant for these ids under an idempotency token. Logged
//!   *before* the `checkedout` flag UPDATEs, so a crash anywhere inside the
//!   procedure leaves a grant record whose ids recovery can sweep.
//! * [`WalRecord::CheckoutRelease`] — the grant over these ids ended
//!   (check-in, abort, or recovery sweep).
//! * [`WalRecord::TokenComplete`] — the procedure under this token finished
//!   with this outcome (`Some(rows)` = granted payload, `None` = recorded
//!   refusal). Replay restores the outcome without re-executing, preserving
//!   exactly-once semantics across a crash.
//!
//! Payload encoding reuses the primitives of [`pdm_sql::persist`] so the
//! byte format (and its offset-reporting decode errors) is shared with the
//! checkpoint blob.

use pdm_sql::persist::{
    put_i64, put_result_set, put_str, put_u32, put_u64, put_u8, read_result_set, Cursor,
};
use pdm_sql::ResultSet;

use crate::WalError;

/// One durable event. See the module docs for the protocol each variant
/// participates in.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A committed statement: `version` is the storage version it published.
    DmlCommit { version: u64, sql: String },
    /// A check-out grant under idempotency token `token` covering these
    /// assembly and component object ids.
    CheckoutGrant {
        token: u64,
        assy_ids: Vec<i64>,
        comp_ids: Vec<i64>,
    },
    /// The grant over these ids was released.
    CheckoutRelease { ids: Vec<i64> },
    /// Token `token` completed with this outcome (`None` = refusal).
    TokenComplete { token: u64, rows: Option<ResultSet> },
}

const TAG_DML: u8 = 1;
const TAG_GRANT: u8 = 2;
const TAG_RELEASE: u8 = 3;
const TAG_TOKEN: u8 = 4;

fn put_ids(out: &mut Vec<u8>, ids: &[i64]) {
    put_u32(out, ids.len() as u32);
    for &id in ids {
        put_i64(out, id);
    }
}

fn read_ids(cur: &mut Cursor<'_>, what: &str) -> Result<Vec<i64>, pdm_sql::Error> {
    let n = cur.u32(what)? as usize;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(cur.i64(what)?);
    }
    Ok(ids)
}

impl WalRecord {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::DmlCommit { version, sql } => {
                put_u8(&mut out, TAG_DML);
                put_u64(&mut out, *version);
                put_str(&mut out, sql);
            }
            WalRecord::CheckoutGrant {
                token,
                assy_ids,
                comp_ids,
            } => {
                put_u8(&mut out, TAG_GRANT);
                put_u64(&mut out, *token);
                put_ids(&mut out, assy_ids);
                put_ids(&mut out, comp_ids);
            }
            WalRecord::CheckoutRelease { ids } => {
                put_u8(&mut out, TAG_RELEASE);
                put_ids(&mut out, ids);
            }
            WalRecord::TokenComplete { token, rows } => {
                put_u8(&mut out, TAG_TOKEN);
                put_u64(&mut out, *token);
                match rows {
                    None => put_u8(&mut out, 0),
                    Some(rs) => {
                        put_u8(&mut out, 1);
                        put_result_set(&mut out, rs);
                    }
                }
            }
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<WalRecord, WalError> {
        let mut cur = Cursor::new(bytes);
        let rec = Self::read(&mut cur).map_err(|e| WalError::Decode {
            offset: cur.offset(),
            detail: e.to_string(),
        })?;
        if !cur.is_empty() {
            return Err(WalError::Decode {
                offset: cur.offset(),
                detail: format!("{} trailing bytes after record", cur.remaining()),
            });
        }
        Ok(rec)
    }

    fn read(cur: &mut Cursor<'_>) -> Result<WalRecord, pdm_sql::Error> {
        let at = cur.offset();
        Ok(match cur.u8("record tag")? {
            TAG_DML => WalRecord::DmlCommit {
                version: cur.u64("commit version")?,
                sql: cur.str("commit sql")?,
            },
            TAG_GRANT => WalRecord::CheckoutGrant {
                token: cur.u64("grant token")?,
                assy_ids: read_ids(cur, "grant assy ids")?,
                comp_ids: read_ids(cur, "grant comp ids")?,
            },
            TAG_RELEASE => WalRecord::CheckoutRelease {
                ids: read_ids(cur, "release ids")?,
            },
            TAG_TOKEN => {
                let token = cur.u64("token id")?;
                let rows = match cur.u8("token outcome tag")? {
                    0 => None,
                    1 => Some(read_result_set(cur)?),
                    other => {
                        return Err(pdm_sql::Error::Persist(format!(
                            "invalid token outcome tag {other} at offset {at}"
                        )))
                    }
                };
                WalRecord::TokenComplete { token, rows }
            }
            other => {
                return Err(pdm_sql::Error::Persist(format!(
                    "invalid record tag {other} at offset {at}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_sql::Database;

    fn sample_rows() -> ResultSet {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, NULL)")
            .unwrap();
        db.query("SELECT * FROM t ORDER BY a").unwrap()
    }

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::DmlCommit {
                version: 17,
                sql: "UPDATE assy SET checkedout = TRUE WHERE obid IN (1, 2)".into(),
            },
            WalRecord::CheckoutGrant {
                token: 3,
                assy_ids: vec![1, 2, 3],
                comp_ids: vec![10, 11],
            },
            WalRecord::CheckoutRelease { ids: vec![1, 2] },
            WalRecord::TokenComplete {
                token: 3,
                rows: Some(sample_rows()),
            },
            WalRecord::TokenComplete {
                token: 4,
                rows: None,
            },
            WalRecord::CheckoutGrant {
                token: 0,
                assy_ids: Vec::new(),
                comp_ids: Vec::new(),
            },
        ]
    }

    #[test]
    fn round_trip_every_variant() {
        for rec in samples() {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn truncation_reports_offset() {
        for rec in samples() {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                match WalRecord::decode(&bytes[..cut]) {
                    Err(WalError::Decode { .. }) => {}
                    Ok(other) => panic!("cut {cut} decoded as {other:?}"),
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let err = WalRecord::decode(&[99]).unwrap_err();
        match err {
            WalError::Decode { detail, .. } => assert!(detail.contains("tag"), "{detail}"),
            other => panic!("{other}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = WalRecord::CheckoutRelease { ids: vec![5] }.encode();
        bytes.push(0);
        assert!(WalRecord::decode(&bytes).is_err());
    }
}
