//! CRC-32 (IEEE 802.3 polynomial), hand-rolled because the workspace is
//! offline and cannot pull a checksum crate. The table is computed at
//! compile time; the byte-at-a-time loop is plenty fast for WAL records.
//
// lint:allow-file(unchecked-index): table lookups are indexed by a byte
// (or a byte-derived value masked to 8 bits) into a 256-entry table —
// in-bounds by construction.

/// Reflected polynomial of CRC-32/ISO-HDLC (the zlib/PNG/Ethernet CRC).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// CRC-32 over two concatenated slices without materializing the
/// concatenation (the log checksums `seq || payload`).
pub fn crc32_pair(a: &[u8], b: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in a.iter().chain(b) {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn pair_matches_concatenation() {
        let a = b"hello ";
        let b = b"world";
        assert_eq!(crc32_pair(a, b), crc32(b"hello world"));
        assert_eq!(crc32_pair(b"", b"xyz"), crc32(b"xyz"));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = b"the quick brown fox".to_vec();
        let c0 = crc32(&base);
        for i in 0..base.len() * 8 {
            let mut flipped = base.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), c0, "bit {i} undetected");
        }
    }
}
