//! The durable store: one log device plus one checkpoint cell.
//!
//! A [`DurableStore`] is what the server holds while running; a
//! [`DurableImage`] is what survives a crash — the bytes a recovery scan
//! reads. The split models "the process died, the disk did not": the
//! harness crashes a store, takes its image, and re-opens a fresh store
//! from it with [`DurableStore::from_image`].
//!
//! ## Checkpoints
//!
//! A checkpoint is a single framed blob (same frame as a log record, so it
//! gets the same checksum protection) whose sequence number is the last log
//! sequence it covers. Installing one overwrites the checkpoint cell and
//! truncates the log — the write-temp-then-rename idiom of real systems,
//! modeled as atomic here (the crash planner schedules faults on *log*
//! operations, where the interesting torn states live; a torn checkpoint is
//! still exercised explicitly by corruption tests). Recovery therefore is:
//! load checkpoint, replay the (short) log suffix with `seq >` the
//! checkpoint's sequence.

use crate::device::{CrashPlan, DeviceStats, SimDevice};
use crate::log::{self, LogDamage, LogScan};
use crate::record::WalRecord;
use crate::WalError;

/// The bytes that survive a crash: checkpoint cell + log device image.
#[derive(Debug, Clone, PartialEq)]
pub struct DurableImage {
    pub checkpoint: Vec<u8>,
    pub log: Vec<u8>,
}

/// Everything recovery learns from a surviving image.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredStore {
    /// `(covered_seq, payload)` from the checkpoint cell, if one was ever
    /// installed.
    pub checkpoint: Option<(u64, Vec<u8>)>,
    /// Decoded log records with `seq` beyond the checkpoint, in order.
    pub records: Vec<(u64, WalRecord)>,
    /// Tail damage that was truncated away (the normal signature of a crash
    /// mid-append), kept for the recovery report.
    pub damage: Option<LogDamage>,
}

/// Write side of the WAL: assigns sequence numbers, frames records, and
/// manages the checkpoint cell.
#[derive(Debug, Clone)]
pub struct DurableStore {
    log: SimDevice,
    checkpoint: Vec<u8>,
    next_seq: u64,
}

impl DurableStore {
    /// Fresh, empty store.
    pub fn new(plan: CrashPlan) -> Self {
        DurableStore {
            log: SimDevice::new(plan),
            checkpoint: Vec::new(),
            next_seq: 1,
        }
    }

    /// Re-open a store from a surviving image, scanning and validating it.
    /// The log is truncated back to its valid record prefix (tail damage is
    /// reported, not fatal); sequence numbering continues after the highest
    /// surviving sequence. A damaged *checkpoint* is fatal — it was written
    /// atomically, so damage there is real corruption, not a crash artifact.
    pub fn from_image(
        image: DurableImage,
        plan: CrashPlan,
    ) -> Result<(Self, RecoveredStore), WalError> {
        // Checkpoint cell: empty, or exactly one intact frame.
        let checkpoint = if image.checkpoint.is_empty() {
            None
        } else {
            let scan = log::scan(&image.checkpoint);
            if let Some(d) = scan.damage {
                return Err(WalError::Damage(d));
            }
            if scan.records.len() != 1 {
                return Err(WalError::Decode {
                    offset: 0,
                    detail: format!(
                        "checkpoint cell holds {} frames, expected 1",
                        scan.records.len()
                    ),
                });
            }
            let (seq, payload) = scan.records.into_iter().next().unwrap_or_default();
            Some((seq, payload))
        };

        let LogScan {
            records,
            valid_len,
            damage,
        } = log::scan(&image.log);

        let base_seq = checkpoint.as_ref().map(|(s, _)| *s).unwrap_or(0);
        let mut decoded = Vec::with_capacity(records.len());
        let mut max_seq = base_seq;
        let mut prev = None;
        for (seq, payload) in records {
            if let Some(p) = prev {
                if seq <= p {
                    return Err(WalError::Decode {
                        offset: 0,
                        detail: format!("non-monotonic sequence {seq} after {p}"),
                    });
                }
            }
            prev = Some(seq);
            max_seq = max_seq.max(seq);
            if seq <= base_seq {
                continue; // already folded into the checkpoint
            }
            decoded.push((seq, WalRecord::decode(&payload)?));
        }

        let store = DurableStore {
            // lint:allow(unchecked-index): valid_len was produced by the
            // frame scanner and is ≤ image.log.len() by construction.
            log: SimDevice::with_contents(image.log[..valid_len].to_vec()).with_plan(plan),
            checkpoint: image.checkpoint,
            next_seq: max_seq.saturating_add(1),
        };
        Ok((
            store,
            RecoveredStore {
                checkpoint,
                records: decoded,
                damage,
            },
        ))
    }

    /// Append a record to the log (not yet durable). Returns its sequence.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, WalError> {
        let seq = self.next_seq;
        log::append_record(&mut self.log, seq, &rec.encode())?;
        self.next_seq = self.next_seq.saturating_add(1);
        Ok(seq)
    }

    /// Durability barrier on the log.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.log.sync()
    }

    /// Append + sync: the record is durable when this returns.
    pub fn commit(&mut self, rec: &WalRecord) -> Result<u64, WalError> {
        let seq = self.append(rec)?;
        self.sync()?;
        Ok(seq)
    }

    /// Install a checkpoint covering everything up to and including the
    /// last assigned sequence, then truncate the log. Atomic (see module
    /// docs); refuses on a crashed device so a dead server cannot
    /// checkpoint.
    pub fn install_checkpoint(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        if self.log.is_crashed() {
            return Err(WalError::DeviceCrashed);
        }
        let covered = self.next_seq.saturating_sub(1);
        self.checkpoint = log::frame(covered, payload);
        self.log = SimDevice::with_contents(Vec::new()).with_plan_of(&self.log);
        Ok(covered)
    }

    /// The bytes that would survive if the process died right now.
    pub fn image(&self) -> DurableImage {
        DurableImage {
            checkpoint: self.checkpoint.clone(),
            log: self.log.surviving().to_vec(),
        }
    }

    /// Kill the device at the current boundary (applies the plan's tail
    /// fault to any unsynced bytes).
    pub fn crash_now(&mut self) {
        self.log.crash_now();
    }

    pub fn is_crashed(&self) -> bool {
        self.log.is_crashed()
    }

    /// Bytes currently in the log (excluding the checkpoint cell).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Bytes in the checkpoint cell.
    pub fn checkpoint_len(&self) -> usize {
        self.checkpoint.len()
    }

    /// Sequence the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    pub fn device_stats(&self) -> DeviceStats {
        self.log.stats()
    }
}

impl SimDevice {
    /// Builder helper: keep contents, adopt a crash plan.
    fn with_plan(mut self, plan: CrashPlan) -> Self {
        self.set_plan(plan);
        self
    }

    /// Builder helper: keep contents, adopt another device's plan and op
    /// counter so a scheduled crash still lands after a checkpoint swap.
    fn with_plan_of(mut self, other: &SimDevice) -> Self {
        self.adopt_schedule(other);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::TailFault;

    fn rec(version: u64) -> WalRecord {
        WalRecord::DmlCommit {
            version,
            sql: format!("INSERT INTO t VALUES ({version})"),
        }
    }

    #[test]
    fn commit_then_recover_round_trip() {
        let mut store = DurableStore::new(CrashPlan::none());
        for v in 1..=5 {
            store.commit(&rec(v)).unwrap();
        }
        let (reopened, recovered) =
            DurableStore::from_image(store.image(), CrashPlan::none()).unwrap();
        assert_eq!(recovered.checkpoint, None);
        assert_eq!(recovered.damage, None);
        assert_eq!(recovered.records.len(), 5);
        assert_eq!(recovered.records[0], (1, rec(1)));
        assert_eq!(recovered.records[4], (5, rec(5)));
        assert_eq!(reopened.next_seq(), 6);
    }

    #[test]
    fn checkpoint_truncates_log_and_skips_covered_records() {
        let mut store = DurableStore::new(CrashPlan::none());
        for v in 1..=3 {
            store.commit(&rec(v)).unwrap();
        }
        let covered = store.install_checkpoint(b"snapshot-at-3").unwrap();
        assert_eq!(covered, 3);
        assert_eq!(store.log_len(), 0);
        for v in 4..=5 {
            store.commit(&rec(v)).unwrap();
        }
        let (_, recovered) = DurableStore::from_image(store.image(), CrashPlan::none()).unwrap();
        assert_eq!(recovered.checkpoint, Some((3, b"snapshot-at-3".to_vec())));
        let seqs: Vec<u64> = recovered.records.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![4, 5]);
    }

    #[test]
    fn unsynced_tail_is_lost_and_reported() {
        // ops: append(0) sync(1) append(2) — crash on the op-3 sync.
        let mut store = DurableStore::new(CrashPlan::at_op(3).with_fault(TailFault::TornWrite));
        store.commit(&rec(1)).unwrap();
        store.append(&rec(2)).unwrap();
        assert_eq!(store.sync(), Err(WalError::DeviceCrashed));
        let (_, recovered) = DurableStore::from_image(store.image(), CrashPlan::none()).unwrap();
        // Record 1 was synced; record 2 was torn: either wholly gone (clean
        // frame-boundary cut, no damage) or reported as tail damage.
        assert_eq!(recovered.records.len(), 1);
        assert_eq!(recovered.records[0], (1, rec(1)));
    }

    #[test]
    fn crash_before_first_sync_loses_everything_cleanly() {
        let mut store = DurableStore::new(CrashPlan::at_op(1));
        store.append(&rec(1)).unwrap();
        assert!(store.sync().is_err());
        let (reopened, recovered) =
            DurableStore::from_image(store.image(), CrashPlan::none()).unwrap();
        assert!(recovered.records.is_empty());
        assert_eq!(recovered.damage, None);
        assert_eq!(reopened.next_seq(), 1);
    }

    #[test]
    fn corrupt_checkpoint_is_fatal_with_diagnostics() {
        let mut store = DurableStore::new(CrashPlan::none());
        store.commit(&rec(1)).unwrap();
        store
            .install_checkpoint(b"good checkpoint payload")
            .unwrap();
        let mut image = store.image();
        let mid = image.checkpoint.len() - 2;
        image.checkpoint[mid] ^= 0x40;
        match DurableStore::from_image(image, CrashPlan::none()) {
            Err(WalError::Damage(LogDamage::ChecksumMismatch {
                offset,
                expected,
                found,
            })) => {
                assert_eq!(offset, 0);
                assert_ne!(expected, found);
            }
            other => panic!("expected checksum damage, got {other:?}"),
        }
    }

    #[test]
    fn sequence_numbering_continues_after_reopen() {
        let mut store = DurableStore::new(CrashPlan::none());
        store.commit(&rec(1)).unwrap();
        store.commit(&rec(2)).unwrap();
        let (mut reopened, _) = DurableStore::from_image(store.image(), CrashPlan::none()).unwrap();
        let seq = reopened.commit(&rec(3)).unwrap();
        assert_eq!(seq, 3);
    }

    #[test]
    fn scheduled_crash_survives_checkpoint_swap() {
        // The crash op counter keeps ticking across install_checkpoint, so a
        // chaos schedule targeting op N still fires if N lands after a
        // checkpoint.
        let mut store = DurableStore::new(CrashPlan::at_op(5));
        store.commit(&rec(1)).unwrap(); // ops 0,1
        store.install_checkpoint(b"cp").unwrap();
        store.commit(&rec(2)).unwrap(); // ops 2,3
        store.append(&rec(3)).unwrap(); // op 4
        assert_eq!(store.sync(), Err(WalError::DeviceCrashed)); // op 5
        let (_, recovered) = DurableStore::from_image(store.image(), CrashPlan::none()).unwrap();
        assert_eq!(recovered.checkpoint, Some((1, b"cp".to_vec())));
        assert_eq!(recovered.records.len(), 1);
    }
}
