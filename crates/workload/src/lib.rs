#![cfg_attr(test, allow(clippy::unwrap_used))]

//! # pdm-workload — synthetic product structures
//!
//! The paper evaluates on complete β-ary product trees of depth δ with
//! branch-visibility probability γ (its industrial data is proprietary, so
//! the tables themselves are computed over this synthetic family — which
//! makes the generator *the* faithful workload). This crate builds such
//! trees as rows for the Figure-2 schema (`assy`, `comp`, `link`, `spec`,
//! `specified_by`) and loads them into a [`pdm_sql::Database`].
//!
//! Node payloads are padded so one transferred node occupies the paper's
//! average node size (512 bytes) on the wire, making the simulator's volume
//! accounting line up with the closed-form model.

pub mod generator;
pub mod irregular;
pub mod multisite;
pub mod openloop;
pub mod partition;
pub mod populate;
pub mod spec;
pub mod views;

pub use generator::{generate, GeneratedLink, GeneratedNode, NodeKind, ProductData};
pub use irregular::{build_irregular_database, generate_irregular, IrregularSpec};
pub use multisite::{multisite_plan, SiteOp, SiteStep};
pub use openloop::{Arrival, ArrivalClass, ClassMix, OpenLoop};
pub use partition::{partition, Mount, PartitionInfo};
pub use populate::{build_database, populate};
pub use spec::{TreeSpec, VisibilityMode};

/// The structure option the simulated user has selected; links carrying it
/// are visible (§3.1 example 3).
pub const USER_OPTION: &str = "OPTA";

/// The structure option marking an invisible branch.
pub const OTHER_OPTION: &str = "NONE";
