//! Workload specification: tree shape, visibility, attribute distributions.

/// How branch visibility (the paper's γ) is realized on generated links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VisibilityMode {
    /// Each link is independently visible with probability γ (seeded RNG).
    /// Matches the model in expectation; sampled counts carry noise.
    Random { seed: u64 },
    /// A Bresenham accumulator makes exactly ⌊kγ⌋/⌈kγ⌉ of every run of
    /// children visible, so realized per-level counts track `(γβ)^i` as
    /// closely as integer counts allow. When γβ is an integer (e.g. β=5,
    /// γ=0.6) realized counts equal the model exactly — the configuration
    /// the cross-validation tests use.
    Deterministic,
}

/// Full description of a synthetic product structure.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSpec {
    /// Depth δ: levels 1..=δ below the root. Leaves (level δ) become
    /// components, inner levels assemblies.
    pub depth: u32,
    /// Branching factor β.
    pub branching: u32,
    /// Branch visibility probability γ.
    pub gamma: f64,
    pub visibility: VisibilityMode,
    /// Target on-the-wire size of one transferred node row (the paper's
    /// 512-byte average); payload columns are padded to reach it.
    pub node_size: usize,
    /// Fraction of assemblies flagged decomposable (`dec = '+'`); the
    /// ∀rows workloads lower this below 1.
    pub decomposable_fraction: f64,
    /// Fraction of assemblies with `make_or_buy = 'make'` (§3.1 example 1).
    pub make_fraction: f64,
    /// Fraction of components that have a specification document
    /// (∃structure workloads lower this below 1).
    pub specified_fraction: f64,
    /// Fraction of links whose effectivity range excludes the user's
    /// selected unit (effectivity workloads raise this above 0).
    pub expired_effectivity_fraction: f64,
    /// Seed for attribute randomness (independent of visibility).
    pub attribute_seed: u64,
}

impl TreeSpec {
    /// A spec with the paper's defaults: 512-byte nodes, deterministic
    /// visibility, all rule attributes permissive.
    pub fn new(depth: u32, branching: u32, gamma: f64) -> Self {
        assert!(depth >= 1 && branching >= 1);
        assert!((0.0..=1.0).contains(&gamma));
        TreeSpec {
            depth,
            branching,
            gamma,
            visibility: VisibilityMode::Deterministic,
            node_size: 512,
            decomposable_fraction: 1.0,
            make_fraction: 1.0,
            specified_fraction: 1.0,
            expired_effectivity_fraction: 0.0,
            attribute_seed: 42,
        }
    }

    pub fn with_visibility(mut self, mode: VisibilityMode) -> Self {
        self.visibility = mode;
        self
    }

    pub fn with_node_size(mut self, bytes: usize) -> Self {
        self.node_size = bytes;
        self
    }

    pub fn with_decomposable_fraction(mut self, f: f64) -> Self {
        self.decomposable_fraction = f;
        self
    }

    pub fn with_make_fraction(mut self, f: f64) -> Self {
        self.make_fraction = f;
        self
    }

    pub fn with_specified_fraction(mut self, f: f64) -> Self {
        self.specified_fraction = f;
        self
    }

    pub fn with_expired_effectivity_fraction(mut self, f: f64) -> Self {
        self.expired_effectivity_fraction = f;
        self
    }

    pub fn with_attribute_seed(mut self, seed: u64) -> Self {
        self.attribute_seed = seed;
        self
    }

    /// Number of assemblies (levels 0..δ-1): Σ β^i.
    pub fn assembly_count(&self) -> u64 {
        (0..self.depth)
            .map(|i| (self.branching as u64).pow(i))
            .sum()
    }

    /// Number of components (level δ): β^δ.
    pub fn component_count(&self) -> u64 {
        (self.branching as u64).pow(self.depth)
    }

    /// Number of links: one per non-root node.
    pub fn link_count(&self) -> u64 {
        self.assembly_count() - 1 + self.component_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_for_paper_scenarios() {
        let s = TreeSpec::new(3, 9, 0.6);
        assert_eq!(s.assembly_count(), 1 + 9 + 81);
        assert_eq!(s.component_count(), 729);
        assert_eq!(s.link_count(), 9 + 81 + 729);

        let s = TreeSpec::new(7, 5, 0.6);
        assert_eq!(s.assembly_count() - 1 + s.component_count(), 97_655);
    }

    #[test]
    fn builder_methods() {
        let s = TreeSpec::new(3, 3, 0.5)
            .with_node_size(256)
            .with_decomposable_fraction(0.8)
            .with_specified_fraction(0.4)
            .with_visibility(VisibilityMode::Random { seed: 7 });
        assert_eq!(s.node_size, 256);
        assert_eq!(s.decomposable_fraction, 0.8);
        assert_eq!(s.specified_fraction, 0.4);
        assert_eq!(s.visibility, VisibilityMode::Random { seed: 7 });
    }

    #[test]
    #[should_panic]
    fn invalid_gamma_rejected() {
        TreeSpec::new(3, 3, -0.1);
    }
}
