//! Distributed data management (the paper's §7 outlook): partition a
//! product structure across several database sites.
//!
//! Placement is by level-1 subtree: the root lives on site 0 and each of its
//! child subtrees is assigned round-robin; descendants inherit their
//! subtree's site. Links are stored with their *parent's* site, so a link
//! whose child lives elsewhere becomes a **mount point** — the local
//! recursive traversal naturally stops there (the child's node row is not
//! joinable locally) and the client must continue at the owning site.

use std::collections::HashMap;

use pdm_sql::Database;

use crate::generator::ProductData;
use crate::populate::populate;

/// A cross-site edge: the parent's site stores the link, the child's data
/// lives on another site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mount {
    pub parent: i64,
    pub child: i64,
    pub parent_site: usize,
    pub child_site: usize,
    /// The connecting link's visibility (structure option) — the client
    /// applies relation rules to mounts itself, since no single site can.
    pub visible: bool,
}

/// Placement directory plus mount list for a partitioned product.
#[derive(Debug, Clone)]
pub struct PartitionInfo {
    /// Node obid → site index.
    pub site_of: HashMap<i64, usize>,
    pub mounts: Vec<Mount>,
    pub n_sites: usize,
}

impl PartitionInfo {
    pub fn site_of(&self, obid: i64) -> Option<usize> {
        self.site_of.get(&obid).copied()
    }
}

/// Split `data` across `n_sites` databases. Returns one populated database
/// per site plus the placement directory.
pub fn partition(
    data: &ProductData,
    n_sites: usize,
) -> pdm_sql::Result<(Vec<Database>, PartitionInfo)> {
    assert!(n_sites >= 1, "need at least one site");

    // Assign sites: root → 0, level-1 subtrees round-robin, inherited below.
    let children_of: HashMap<i64, Vec<i64>> = {
        let mut m: HashMap<i64, Vec<i64>> = HashMap::new();
        for l in &data.links {
            m.entry(l.left).or_default().push(l.right);
        }
        m
    };
    let root = data.root_obid();
    let mut site_of: HashMap<i64, usize> = HashMap::new();
    site_of.insert(root, 0);
    if let Some(top) = children_of.get(&root) {
        for (i, &child) in top.iter().enumerate() {
            let site = i % n_sites;
            // assign the whole subtree
            let mut stack = vec![child];
            while let Some(n) = stack.pop() {
                site_of.insert(n, site);
                if let Some(cs) = children_of.get(&n) {
                    stack.extend(cs.iter().copied());
                }
            }
        }
    }

    // Mounts: links whose endpoints live on different sites.
    let mut mounts = Vec::new();
    for l in &data.links {
        let ps = site_of[&l.left];
        let cs = site_of[&l.right];
        if ps != cs {
            mounts.push(Mount {
                parent: l.left,
                child: l.right,
                parent_site: ps,
                child_site: cs,
                visible: l.visible,
            });
        }
    }

    // Per-site slices: nodes of the site, links stored with the parent,
    // specs with their component.
    let mut databases = Vec::with_capacity(n_sites);
    for site in 0..n_sites {
        let spec_site: HashMap<i64, usize> = data
            .specified_by
            .iter()
            .map(|&(comp, spec)| (spec, site_of[&comp]))
            .collect();
        let slice = ProductData {
            spec: data.spec.clone(),
            nodes: data
                .nodes
                .iter()
                .filter(|n| site_of[&n.obid] == site)
                .cloned()
                .collect(),
            links: data
                .links
                .iter()
                .filter(|l| site_of[&l.left] == site)
                .cloned()
                .collect(),
            spec_ids: data
                .spec_ids
                .iter()
                .filter(|s| spec_site[s] == site)
                .copied()
                .collect(),
            specified_by: data
                .specified_by
                .iter()
                .filter(|(c, _)| site_of[c] == site)
                .copied()
                .collect(),
            // Per-site level bookkeeping is not meaningful; zeroed.
            visible_per_level: Vec::new(),
            total_per_level: Vec::new(),
            root_children: 0,
            expanded_children: 0,
        };
        let mut db = Database::new();
        populate(&mut db, &slice)?;
        databases.push(db);
    }

    Ok((
        databases,
        PartitionInfo {
            site_of,
            mounts,
            n_sites,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use crate::spec::TreeSpec;
    use pdm_sql::Value;

    fn count(db: &Database, sql: &str) -> i64 {
        match db.query(sql).unwrap().rows[0].get(0) {
            Value::Int(i) => *i,
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn sites_cover_all_nodes_exactly_once() {
        let data = generate(&TreeSpec::new(3, 3, 1.0).with_node_size(128));
        let (dbs, info) = partition(&data, 3).unwrap();
        assert_eq!(info.n_sites, 3);
        let total: i64 = dbs
            .iter()
            .map(|db| {
                count(db, "SELECT COUNT(*) FROM assy") + count(db, "SELECT COUNT(*) FROM comp")
            })
            .sum();
        assert_eq!(total as usize, data.nodes.len());
        assert_eq!(info.site_of.len(), data.nodes.len());
    }

    #[test]
    fn links_stored_with_parent_site() {
        let data = generate(&TreeSpec::new(3, 3, 1.0).with_node_size(128));
        let (dbs, _) = partition(&data, 2).unwrap();
        let total: i64 = dbs
            .iter()
            .map(|db| count(db, "SELECT COUNT(*) FROM link"))
            .sum();
        assert_eq!(total as usize, data.links.len());
    }

    #[test]
    fn mounts_are_exactly_the_cross_site_links() {
        let data = generate(&TreeSpec::new(3, 3, 1.0).with_node_size(128));
        let (_, info) = partition(&data, 3).unwrap();
        // root (site 0) has 3 children on sites 0,1,2 → 2 mounts at level 1;
        // deeper links never cross (subtrees are assigned wholesale).
        assert_eq!(info.mounts.len(), 2);
        for m in &info.mounts {
            assert_eq!(m.parent, 1);
            assert_eq!(m.parent_site, 0);
            assert_ne!(m.child_site, 0);
        }
    }

    #[test]
    fn single_site_partition_is_trivial() {
        let data = generate(&TreeSpec::new(2, 4, 1.0).with_node_size(128));
        let (dbs, info) = partition(&data, 1).unwrap();
        assert_eq!(dbs.len(), 1);
        assert!(info.mounts.is_empty());
        assert_eq!(
            count(&dbs[0], "SELECT COUNT(*) FROM link") as usize,
            data.links.len()
        );
    }

    #[test]
    fn specs_follow_their_component() {
        let data = generate(&TreeSpec::new(2, 3, 1.0).with_node_size(128));
        let (dbs, info) = partition(&data, 2).unwrap();
        for (comp, spec) in &data.specified_by {
            let site = info.site_of[comp];
            let found = count(
                &dbs[site],
                &format!(
                    "SELECT COUNT(*) FROM specified_by WHERE left = {comp} AND right = {spec}"
                ),
            );
            assert_eq!(found, 1);
        }
    }
}
