//! Open-loop arrival generation for overload experiments.
//!
//! Closed-loop drivers (a fixed set of clients, each issuing the next
//! request when the previous one returns) self-throttle: offered load can
//! never exceed `clients / response_time`, so saturation is invisible. The
//! overload bench needs the opposite — an **open-loop** source whose
//! arrival times are drawn independently of the server's state, so offered
//! load λ can be swept past capacity and the metastable retry-storm regime
//! becomes reachable.
//!
//! Arrivals form a Poisson process (i.i.d. exponential inter-arrival times
//! with mean 1/λ), the standard model for a worldwide population of
//! independent PDM users (§1: many sites, uncoordinated engineers). Each
//! arrival carries a priority class drawn from a fixed mix, matching the
//! admission gate's shed order.

use pdm_prng::Prng;

/// Priority class of one arrival — mirrors `pdm_core::overload::Priority`
/// without depending on pdm-core (the workload crate stays a leaf).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalClass {
    /// Interactive expand/query traffic (shed last).
    Interactive,
    /// Check-out / check-in actions.
    Checkout,
    /// Batch rollups and reports (shed first).
    Batch,
}

/// One generated arrival: when it enters the system and what it wants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival time in virtual seconds from the start of the run.
    pub at: f64,
    /// Priority class for the admission gate.
    pub class: ArrivalClass,
    /// Root object the action targets (picked uniformly by the caller's
    /// id range so cache hits/misses are seed-deterministic).
    pub root_index: usize,
}

/// Traffic mix: fractions of each class (must sum to ≤ 1; the remainder
/// goes to Batch).
#[derive(Debug, Clone, Copy)]
pub struct ClassMix {
    pub interactive: f64,
    pub checkout: f64,
}

impl ClassMix {
    /// The default PDM mix: mostly interactive structure browsing, a
    /// minority of check-outs, a tail of batch work.
    pub fn pdm_default() -> Self {
        ClassMix {
            interactive: 0.70,
            checkout: 0.20,
        }
    }

    fn classify(&self, u: f64) -> ArrivalClass {
        if u < self.interactive {
            ArrivalClass::Interactive
        } else if u < self.interactive + self.checkout {
            ArrivalClass::Checkout
        } else {
            ArrivalClass::Batch
        }
    }
}

/// Seed-deterministic open-loop Poisson arrival source.
#[derive(Debug)]
pub struct OpenLoop {
    rng: Prng,
    mix: ClassMix,
    roots: usize,
    clock: f64,
}

impl OpenLoop {
    /// New source; `roots` is the size of the target-id universe.
    pub fn new(seed: u64, mix: ClassMix, roots: usize) -> Self {
        OpenLoop {
            rng: Prng::seed_from_u64(seed),
            mix,
            roots: roots.max(1),
            clock: 0.0,
        }
    }

    /// Draw the next arrival at rate `lambda` (arrivals per virtual
    /// second). Exponential inter-arrival via inverse transform; the
    /// `1 - u` keeps `ln` away from 0.
    pub fn next_arrival(&mut self, lambda: f64) -> Arrival {
        let u = self.rng.f64();
        let dt = -(1.0 - u).ln() / lambda.max(f64::MIN_POSITIVE);
        self.clock += dt;
        let class = self.mix.classify(self.rng.f64());
        let root_index = self.rng.index(self.roots);
        Arrival {
            at: self.clock,
            class,
            root_index,
        }
    }

    /// Generate every arrival in `[0, horizon)` at constant rate `lambda`.
    pub fn arrivals_until(&mut self, lambda: f64, horizon: f64) -> Vec<Arrival> {
        let mut out = Vec::new();
        loop {
            let a = self.next_arrival(lambda);
            if a.at >= horizon {
                break;
            }
            out.push(a);
        }
        out
    }

    /// Generate arrivals over `[0, horizon)` with a time-varying rate given
    /// by `rate_at(t)` — the retry-storm scenario's load spike. Uses
    /// thinning (accept with probability rate/peak) so the draw count, and
    /// hence determinism, depends only on the seed and `peak`.
    pub fn arrivals_with_spike(
        &mut self,
        peak: f64,
        horizon: f64,
        rate_at: impl Fn(f64) -> f64,
    ) -> Vec<Arrival> {
        let mut out = Vec::new();
        loop {
            let a = self.next_arrival(peak);
            if a.at >= horizon {
                break;
            }
            let r = rate_at(a.at);
            if self.rng.f64() < (r / peak).clamp(0.0, 1.0) {
                out.push(a);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_rate_matches_lambda() {
        let mut src = OpenLoop::new(193, ClassMix::pdm_default(), 8);
        let arrivals = src.arrivals_until(50.0, 100.0);
        // 5000 expected; Poisson sd ~71, allow 5 sigma.
        let n = arrivals.len() as f64;
        assert!((n - 5000.0).abs() < 360.0, "got {n} arrivals");
        // strictly increasing times inside the horizon
        for w in arrivals.windows(2) {
            assert!(w[0].at < w[1].at);
        }
    }

    #[test]
    fn class_mix_matches_fractions() {
        let mut src = OpenLoop::new(7, ClassMix::pdm_default(), 4);
        let arrivals = src.arrivals_until(100.0, 100.0);
        let n = arrivals.len() as f64;
        let inter = arrivals
            .iter()
            .filter(|a| a.class == ArrivalClass::Interactive)
            .count() as f64;
        let batch = arrivals
            .iter()
            .filter(|a| a.class == ArrivalClass::Batch)
            .count() as f64;
        assert!((inter / n - 0.70).abs() < 0.05);
        assert!((batch / n - 0.10).abs() < 0.05);
    }

    #[test]
    fn same_seed_same_arrivals() {
        let a = OpenLoop::new(42, ClassMix::pdm_default(), 16).arrivals_until(10.0, 20.0);
        let b = OpenLoop::new(42, ClassMix::pdm_default(), 16).arrivals_until(10.0, 20.0);
        assert_eq!(a, b);
    }

    #[test]
    fn spike_thinning_doubles_rate_inside_window() {
        let mut src = OpenLoop::new(11, ClassMix::pdm_default(), 8);
        let arrivals = src.arrivals_with_spike(20.0, 200.0, |t| {
            if (50.0..100.0).contains(&t) {
                20.0
            } else {
                10.0
            }
        });
        let inside = arrivals
            .iter()
            .filter(|a| (50.0..100.0).contains(&a.at))
            .count() as f64;
        let outside = arrivals.len() as f64 - inside;
        // inside: 50 s at 20/s = 1000 expected; outside: 150 s at 10/s = 1500
        assert!((inside - 1000.0).abs() < 180.0, "inside {inside}");
        assert!((outside - 1500.0).abs() < 220.0, "outside {outside}");
    }

    #[test]
    fn root_indices_stay_in_range() {
        let mut src = OpenLoop::new(3, ClassMix::pdm_default(), 5);
        for _ in 0..1000 {
            let a = src.next_arrival(10.0);
            assert!(a.root_index < 5);
        }
    }
}
