//! Irregular product structures: real bills of material are not complete
//! β-ary trees — branching varies per assembly and subtrees bottom out at
//! different depths. This generator produces such structures with the same
//! [`ProductData`] bookkeeping as the regular one, so the profile-based cost
//! model (eq. (1)–(6) over realized counts) applies unchanged.

use pdm_prng::Prng;

use crate::generator::{GeneratedLink, GeneratedNode, NodeKind, ProductData};
use crate::spec::{TreeSpec, VisibilityMode};

/// Description of an irregular product structure.
#[derive(Debug, Clone, PartialEq)]
pub struct IrregularSpec {
    /// Hard depth bound; subtrees may bottom out earlier.
    pub max_depth: u32,
    /// Children per assembly are drawn uniformly from this inclusive range.
    pub branching: (u32, u32),
    /// Probability that a non-root node at depth < max_depth is a leaf
    /// component anyway (early bottom-out).
    pub leaf_probability: f64,
    /// Per-branch visibility probability γ.
    pub gamma: f64,
    /// Target wire size of one transferred node row.
    pub node_size: usize,
    /// Fraction of components carrying a specification document.
    pub specified_fraction: f64,
    pub seed: u64,
}

impl IrregularSpec {
    pub fn new(max_depth: u32, branching: (u32, u32), gamma: f64, seed: u64) -> Self {
        assert!(max_depth >= 1);
        assert!(branching.0 >= 1 && branching.0 <= branching.1);
        assert!((0.0..=1.0).contains(&gamma));
        IrregularSpec {
            max_depth,
            branching,
            leaf_probability: 0.2,
            gamma,
            node_size: 512,
            specified_fraction: 1.0,
            seed,
        }
    }

    pub fn with_leaf_probability(mut self, p: f64) -> Self {
        self.leaf_probability = p;
        self
    }

    pub fn with_node_size(mut self, bytes: usize) -> Self {
        self.node_size = bytes;
        self
    }
}

/// Generate an irregular structure. Ids follow the regular generator's
/// convention of disjoint ranges (assemblies, then components, then links,
/// then specs), assigned breadth-first.
pub fn generate_irregular(spec: &IrregularSpec) -> ProductData {
    let mut rng = Prng::seed_from_u64(spec.seed);

    // First pass: decide the shape (children per assembly) breadth-first so
    // id ranges can be laid out deterministically afterwards.
    struct ShapeNode {
        level: u32,
        kind: NodeKind,
        children: Vec<usize>, // indexes into `shape`
        parent: Option<usize>,
        visible: bool,
        link_visible: bool,
    }
    let mut shape: Vec<ShapeNode> = vec![ShapeNode {
        level: 0,
        kind: NodeKind::Assembly,
        children: Vec::new(),
        parent: None,
        visible: true,
        link_visible: true,
    }];
    let mut frontier = vec![0usize];
    for level in 1..=spec.max_depth {
        let mut next = Vec::new();
        for &pi in &frontier {
            if shape[pi].kind != NodeKind::Assembly {
                continue;
            }
            let k = rng.u32_inclusive(spec.branching.0, spec.branching.1);
            for _ in 0..k {
                let leaf = level == spec.max_depth || rng.f64() < spec.leaf_probability;
                let link_visible = rng.f64() < spec.gamma;
                let visible = shape[pi].visible && link_visible;
                let idx = shape.len();
                shape.push(ShapeNode {
                    level,
                    kind: if leaf {
                        NodeKind::Component
                    } else {
                        NodeKind::Assembly
                    },
                    children: Vec::new(),
                    parent: Some(pi),
                    visible,
                    link_visible,
                });
                shape[pi].children.push(idx);
                next.push(idx);
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    // Assemblies that ended up with no children become components (a real
    // BOM has no empty assemblies).
    for (i, node) in shape.iter_mut().enumerate() {
        if node.kind == NodeKind::Assembly && node.children.is_empty() && i != 0 {
            node.kind = NodeKind::Component;
        }
    }

    // Assign ids: assemblies first, then components, then links/specs.
    let assy_total = shape
        .iter()
        .filter(|n| n.kind == NodeKind::Assembly)
        .count() as i64;
    let comp_total = shape.len() as i64 - assy_total;
    let mut next_assy: i64 = 1;
    let mut next_comp: i64 = assy_total + 1;
    let link_base = assy_total + comp_total;
    let spec_base = link_base + (shape.len() as i64 - 1);

    let mut obids = vec![0i64; shape.len()];
    for (i, node) in shape.iter().enumerate() {
        obids[i] = match node.kind {
            NodeKind::Assembly => {
                let id = next_assy;
                next_assy += 1;
                id
            }
            NodeKind::Component => {
                let id = next_comp;
                next_comp += 1;
                id
            }
        };
    }

    // Materialize nodes, links, specs, and the realized profile counters.
    let max_level = shape.iter().map(|n| n.level).max().unwrap_or(0) as usize;
    let mut visible_per_level = vec![0u64; max_level];
    let mut total_per_level = vec![0u64; max_level];
    let mut nodes = Vec::with_capacity(shape.len());
    let mut links = Vec::with_capacity(shape.len() - 1);
    let mut spec_ids = Vec::new();
    let mut specified_by = Vec::new();
    let mut next_link = link_base + 1;
    let mut next_spec = spec_base + 1;
    let mut expanded_children = 0u64;

    for (i, node) in shape.iter().enumerate() {
        let specified = node.kind == NodeKind::Component && rng.f64() < spec.specified_fraction;
        nodes.push(GeneratedNode {
            kind: node.kind,
            obid: obids[i],
            name: format!("N{:08}", obids[i]),
            level: node.level,
            decomposable: node.kind == NodeKind::Assembly,
            make: node.kind == NodeKind::Assembly,
            specified,
            visible: node.visible,
        });
        if specified {
            spec_ids.push(next_spec);
            specified_by.push((obids[i], next_spec));
            next_spec += 1;
        }
        if let Some(pi) = node.parent {
            links.push(GeneratedLink {
                obid: next_link,
                left: obids[pi],
                right: obids[i],
                eff_from: 1,
                eff_to: 10,
                visible: node.link_visible,
            });
            next_link += 1;
            total_per_level[node.level as usize - 1] += 1;
            if node.visible {
                visible_per_level[node.level as usize - 1] += 1;
            }
        }
        if node.visible {
            expanded_children += node.children.len() as u64;
        }
    }

    // A representative TreeSpec so populate() knows the node size; counts
    // come from the realized arrays, not from this spec.
    let nominal = TreeSpec::new(spec.max_depth, spec.branching.1.max(1), spec.gamma)
        .with_node_size(spec.node_size)
        .with_visibility(VisibilityMode::Random { seed: spec.seed });

    ProductData {
        root_children: shape[0].children.len() as u64,
        expanded_children,
        spec: nominal,
        nodes,
        links,
        spec_ids,
        specified_by,
        visible_per_level,
        total_per_level,
    }
}

/// Generate and load an irregular structure in one step.
pub fn build_irregular_database(
    spec: &IrregularSpec,
) -> pdm_sql::Result<(pdm_sql::Database, ProductData)> {
    let data = generate_irregular(spec);
    let mut db = pdm_sql::Database::new();
    crate::populate::populate(&mut db, &data)?;
    Ok((db, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_a_rooted_tree() {
        let spec = IrregularSpec::new(4, (2, 5), 0.7, 42);
        let data = generate_irregular(&spec);
        assert!(data.nodes.len() > 1);
        assert_eq!(data.links.len(), data.nodes.len() - 1);
        // every non-root node has exactly one incoming link
        let mut targets: Vec<i64> = data.links.iter().map(|l| l.right).collect();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), data.links.len());
    }

    #[test]
    fn leaves_are_components_and_assemblies_have_children() {
        let spec = IrregularSpec::new(3, (1, 4), 1.0, 7);
        let data = generate_irregular(&spec);
        let mut child_count: std::collections::HashMap<i64, usize> =
            std::collections::HashMap::new();
        for l in &data.links {
            *child_count.entry(l.left).or_insert(0) += 1;
        }
        for n in &data.nodes {
            match n.kind {
                NodeKind::Assembly => {
                    assert!(child_count.get(&n.obid).copied().unwrap_or(0) > 0)
                }
                NodeKind::Component => {
                    assert_eq!(child_count.get(&n.obid), None)
                }
            }
        }
    }

    #[test]
    fn branching_respects_range() {
        let spec = IrregularSpec::new(3, (2, 3), 1.0, 5);
        let data = generate_irregular(&spec);
        let mut child_count: std::collections::HashMap<i64, usize> =
            std::collections::HashMap::new();
        for l in &data.links {
            *child_count.entry(l.left).or_insert(0) += 1;
        }
        for (_, &c) in child_count.iter() {
            assert!((2..=3).contains(&c), "branching {c} out of range");
        }
    }

    #[test]
    fn visibility_counters_consistent() {
        let spec = IrregularSpec::new(4, (2, 4), 0.6, 99);
        let data = generate_irregular(&spec);
        let flagged = data
            .nodes
            .iter()
            .filter(|n| n.visible && n.level > 0)
            .count() as u64;
        assert_eq!(flagged, data.visible_nodes());
        // expanded_children = links whose parent is visible
        let visible: std::collections::HashSet<i64> = data
            .nodes
            .iter()
            .filter(|n| n.visible)
            .map(|n| n.obid)
            .collect();
        let expected = data
            .links
            .iter()
            .filter(|l| visible.contains(&l.left))
            .count() as u64;
        assert_eq!(data.expanded_children, expected);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = IrregularSpec::new(4, (1, 5), 0.5, 1234);
        let a = generate_irregular(&spec);
        let b = generate_irregular(&spec);
        assert_eq!(a.nodes.len(), b.nodes.len());
        assert_eq!(a.visible_per_level, b.visible_per_level);
        let other = generate_irregular(&IrregularSpec::new(4, (1, 5), 0.5, 1235));
        assert!(
            a.nodes.len() != other.nodes.len() || a.visible_per_level != other.visible_per_level
        );
    }

    #[test]
    fn loads_into_database() {
        let spec = IrregularSpec::new(3, (2, 3), 0.8, 11).with_node_size(128);
        let (db, data) = build_irregular_database(&spec).unwrap();
        let rs = db.query("SELECT COUNT(*) FROM link").unwrap();
        assert_eq!(
            rs.rows[0].get(0),
            &pdm_sql::Value::Int(data.links.len() as i64)
        );
    }
}
