//! Parallel structure views (paper §1, footnote 1): "the product structure
//! is (a) a recursive one and (b) different hierarchical views may have to
//! be supported in parallel on the same set of data" — e.g. designers
//! navigate the physical decomposition while function owners see the same
//! objects grouped into functional units. In the flat representation this
//! is simply a *second link table* over the same object rows.

use pdm_prng::Prng;

use pdm_sql::{Column, DataType, Database, Result, Row, Schema, Value};

use crate::generator::{GeneratedLink, NodeKind, ProductData};

/// Generate an alternative hierarchical view over the same objects: a fresh
/// tree rooted at the same root, where every node hangs under a random
/// already-placed assembly. Link visibility is re-drawn with `gamma`
/// (different disciplines see different slices).
pub fn generate_view_links(data: &ProductData, gamma: f64, seed: u64) -> Vec<GeneratedLink> {
    let mut rng = Prng::seed_from_u64(seed);
    let root = data.root_obid();

    // Shuffle non-root nodes, then attach each to a random assembly that is
    // already part of the view (guarantees a tree; components stay leaves).
    let mut others: Vec<&crate::generator::GeneratedNode> =
        data.nodes.iter().filter(|n| n.obid != root).collect();
    for i in (1..others.len()).rev() {
        let j = rng.usize_inclusive(0, i);
        others.swap(i, j);
    }

    let link_base = data
        .links
        .iter()
        .map(|l| l.obid)
        .max()
        .unwrap_or(0)
        .max(data.spec_ids.iter().copied().max().unwrap_or(0))
        + 1_000_000;

    let mut placed_assemblies: Vec<i64> = vec![root];
    let mut links = Vec::with_capacity(others.len());
    for (i, node) in others.iter().enumerate() {
        let parent = placed_assemblies[rng.index(placed_assemblies.len())];
        links.push(GeneratedLink {
            obid: link_base + i as i64,
            left: parent,
            right: node.obid,
            eff_from: 1,
            eff_to: 10,
            visible: rng.f64() < gamma,
        });
        if node.kind == NodeKind::Assembly {
            placed_assemblies.push(node.obid);
        }
    }
    links
}

/// Install an additional structure view as a link table named `table` (same
/// schema as `link`), with the indexes the navigational path needs.
pub fn install_view(db: &mut Database, table: &str, links: &[GeneratedLink]) -> Result<()> {
    db.catalog.create_table(
        table,
        Schema::new(vec![
            Column::new("type", DataType::Text).not_null(),
            Column::new("obid", DataType::Int).not_null(),
            Column::new("left", DataType::Int),
            Column::new("right", DataType::Int),
            Column::new("eff_from", DataType::Int),
            Column::new("eff_to", DataType::Int),
            Column::new("strc_opt", DataType::Text),
        ]),
    )?;
    let rows: Vec<Row> = links
        .iter()
        .map(|l| {
            Row::new(vec![
                Value::from("link"),
                Value::Int(l.obid),
                Value::Int(l.left),
                Value::Int(l.right),
                Value::Int(l.eff_from),
                Value::Int(l.eff_to),
                Value::from(l.strc_opt()),
            ])
        })
        .collect();
    db.insert_rows(table, rows)?;
    db.catalog.table_mut(table)?.create_index("left")?;
    db.catalog.table_mut(table)?.create_index("right")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::populate::build_database;
    use crate::spec::TreeSpec;

    #[test]
    fn view_links_form_a_tree_over_the_same_objects() {
        let spec = TreeSpec::new(3, 3, 1.0).with_node_size(128);
        let data = crate::generator::generate(&spec);
        let vlinks = generate_view_links(&data, 1.0, 7);
        assert_eq!(vlinks.len(), data.nodes.len() - 1);
        // every non-root node exactly once as a target
        let mut targets: Vec<i64> = vlinks.iter().map(|l| l.right).collect();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), vlinks.len());
        // parents are assemblies
        let assys: std::collections::HashSet<i64> = data
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Assembly)
            .map(|n| n.obid)
            .collect();
        assert!(vlinks.iter().all(|l| assys.contains(&l.left)));
        // no id collision with physical links
        let phys: std::collections::HashSet<i64> = data.links.iter().map(|l| l.obid).collect();
        assert!(vlinks.iter().all(|l| !phys.contains(&l.obid)));
    }

    #[test]
    fn view_differs_from_physical_structure() {
        let spec = TreeSpec::new(3, 3, 1.0).with_node_size(128);
        let data = crate::generator::generate(&spec);
        let vlinks = generate_view_links(&data, 1.0, 7);
        let same = vlinks.iter().filter(|v| {
            data.links
                .iter()
                .any(|p| p.left == v.left && p.right == v.right)
        });
        // a random reattachment shares only a few edges with the original
        assert!(same.count() < data.links.len() / 2);
    }

    #[test]
    fn install_view_queryable() {
        let spec = TreeSpec::new(2, 3, 1.0).with_node_size(128);
        let (mut db, data) = build_database(&spec).unwrap();
        let vlinks = generate_view_links(&data, 1.0, 9);
        install_view(&mut db, "flink", &vlinks).unwrap();
        let rs = db.query("SELECT COUNT(*) FROM flink").unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Int(vlinks.len() as i64));
        // indexed probe works
        let (_, stats) = db
            .query_with_stats("SELECT * FROM flink WHERE left = 1")
            .unwrap();
        assert_eq!(stats.index_probes, 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = TreeSpec::new(3, 2, 1.0).with_node_size(128);
        let data = crate::generator::generate(&spec);
        let a = generate_view_links(&data, 0.7, 5);
        let b = generate_view_links(&data, 0.7, 5);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.left == y.left && x.right == y.right));
    }
}
