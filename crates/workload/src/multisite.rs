//! Deterministic multi-site operation plans for replication tests and the
//! replication bench.
//!
//! A plan is a seeded interleaving of read actions (expands, recursive
//! queries) and write actions (DML, check-out, check-in) across N client
//! sites. The same `(seed, sites, steps, roots)` always yields the same
//! plan, so a read-your-writes violation or failover anomaly replays from
//! the integers in its report.
//!
//! The op mix is read-heavy (the paper's workload is navigation-dominated)
//! so a local replica has something to win on; writes are frequent enough
//! that every site exercises the watermark wait.

use pdm_prng::Prng;

/// One operation a site performs against the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteOp {
    /// Multi-level expand from `root` (read; served by the local replica).
    Expand { root: i64 },
    /// Single recursive retrieval from `root` (read).
    QueryAll { root: i64 },
    /// Payload UPDATE on one assembly (write; forwarded to the primary).
    Update { root: i64, payload: String },
    /// Function-shipping check-out of `root` (write).
    CheckOut { root: i64 },
    /// Check-in of this site's most recent successful check-out, if any
    /// (write; harnesses skip it when the site holds nothing).
    CheckIn,
}

/// One step of a multi-site plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStep {
    /// Global step index (the serial order the harness drives).
    pub step: usize,
    /// Site performing the op (0 = the primary's own site).
    pub site: usize,
    pub op: SiteOp,
}

impl SiteOp {
    /// Whether the op is forwarded to the primary.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            SiteOp::Update { .. } | SiteOp::CheckOut { .. } | SiteOp::CheckIn
        )
    }
}

/// Build a seeded plan of `steps` operations spread over `sites` client
/// sites, drawing roots from `roots` (assembly object ids).
pub fn multisite_plan(seed: u64, sites: usize, steps: usize, roots: &[i64]) -> Vec<SiteStep> {
    assert!(sites >= 1, "need at least one site");
    assert!(!roots.is_empty(), "need at least one root");
    let mut rng = Prng::seed_from_u64(seed);
    let mut plan = Vec::with_capacity(steps);
    for step in 0..steps {
        let site = rng.index(sites);
        let root = roots[rng.index(roots.len())];
        let op = match rng.index(8) {
            0..=2 => SiteOp::Expand { root },
            3..=4 => SiteOp::QueryAll { root },
            5 => SiteOp::Update {
                root,
                payload: rng.ident(4, 12),
            },
            6 => SiteOp::CheckOut { root },
            _ => SiteOp::CheckIn,
        };
        plan.push(SiteStep { step, site, op });
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic() {
        let roots = [1i64, 2, 3];
        let a = multisite_plan(7, 4, 64, &roots);
        let b = multisite_plan(7, 4, 64, &roots);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.iter().all(|s| s.site < 4));
        let c = multisite_plan(8, 4, 64, &roots);
        assert_ne!(a, c, "different seeds must draw different plans");
    }

    #[test]
    fn mix_contains_reads_and_writes() {
        let roots = [1i64, 2, 3, 4];
        let plan = multisite_plan(42, 4, 200, &roots);
        let writes = plan.iter().filter(|s| s.op.is_write()).count();
        let reads = plan.len() - writes;
        assert!(reads > writes, "plan should be read-heavy");
        assert!(writes > 0, "plan must exercise the write path");
    }
}
