//! Tree generation: breadth-first construction of the Figure-2 schema rows.

use pdm_prng::Prng;

use crate::spec::{TreeSpec, VisibilityMode};
use crate::{OTHER_OPTION, USER_OPTION};

/// Whether a node is an inner assembly or a leaf component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    Assembly,
    Component,
}

/// One product object (assembly or component).
#[derive(Debug, Clone)]
pub struct GeneratedNode {
    pub kind: NodeKind,
    pub obid: i64,
    pub name: String,
    /// Level below the root (0 = root).
    pub level: u32,
    /// `'+'` decomposable / `'-'` not (assemblies only).
    pub decomposable: bool,
    /// `'make'` vs `'buy'` (assemblies only, §3.1 example 1).
    pub make: bool,
    /// Component has at least one specification document.
    pub specified: bool,
    /// Visible from the root: the node's incoming link and every ancestor
    /// link carry the user's structure option. Stored on the node row so
    /// early rule evaluation can express the paper's branch visibility γ as
    /// a plain row condition (`strc_opt = 'OPTA'`).
    pub visible: bool,
}

/// One parent→child link with its rule attributes.
#[derive(Debug, Clone)]
pub struct GeneratedLink {
    pub obid: i64,
    pub left: i64,
    pub right: i64,
    pub eff_from: i64,
    pub eff_to: i64,
    /// Structure option controlling visibility for the simulated user.
    pub visible: bool,
}

/// A fully generated product structure plus bookkeeping the tests and the
/// session layer use (expected visible counts, payload sizes).
#[derive(Debug, Clone)]
pub struct ProductData {
    pub spec: TreeSpec,
    pub nodes: Vec<GeneratedNode>,
    pub links: Vec<GeneratedLink>,
    /// obids of specification documents, parallel to `specified_by`.
    pub spec_ids: Vec<i64>,
    /// (component obid, spec obid) pairs.
    pub specified_by: Vec<(i64, i64)>,
    /// Realized number of *visible* nodes per level 1..=δ, counting a node
    /// as visible when its link and all ancestor links are visible.
    pub visible_per_level: Vec<u64>,
    /// Realized total nodes per level 1..=δ.
    pub total_per_level: Vec<u64>,
    /// Direct children of the root.
    pub root_children: u64,
    /// Total children of every node a navigational MLE expands (the root
    /// plus all visible nodes) — what late evaluation ships.
    pub expanded_children: u64,
}

impl ProductData {
    /// Realized visible node count below the root (the measured n_v).
    pub fn visible_nodes(&self) -> u64 {
        self.visible_per_level.iter().sum()
    }

    pub fn total_nodes(&self) -> u64 {
        self.total_per_level.iter().sum()
    }

    /// The root object's obid (always 1).
    pub fn root_obid(&self) -> i64 {
        1
    }
}

/// Visibility decision source shared across link generation.
enum VisibilityGen {
    Random(Box<Prng>, f64),
    /// Bresenham accumulator: emit `true` whenever the running fraction
    /// crosses an integer boundary.
    Deterministic {
        acc: f64,
        gamma: f64,
    },
}

impl VisibilityGen {
    fn new(spec: &TreeSpec) -> Self {
        match spec.visibility {
            VisibilityMode::Random { seed } => {
                VisibilityGen::Random(Box::new(Prng::seed_from_u64(seed)), spec.gamma)
            }
            VisibilityMode::Deterministic => VisibilityGen::Deterministic {
                acc: 0.0,
                gamma: spec.gamma,
            },
        }
    }

    /// Visibility of the next link. `parent_visible` gates the
    /// deterministic accumulator: links under invisible parents never
    /// contribute visible nodes, so letting them consume accumulator tokens
    /// would bias realized per-level counts below `(γβ)^i`. Random mode
    /// stays independent per link (unbiased in expectation either way).
    fn next(&mut self, parent_visible: bool) -> bool {
        match self {
            VisibilityGen::Random(rng, gamma) => rng.f64() < *gamma,
            VisibilityGen::Deterministic { acc, gamma } => {
                if !parent_visible {
                    return false;
                }
                *acc += *gamma;
                if *acc >= 1.0 - 1e-9 {
                    *acc -= 1.0;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Generate the product structure described by `spec`.
///
/// Object ids: root = 1, assemblies numbered breadth-first, components after
/// all assemblies, links after all objects, specs after links — disjoint id
/// ranges like the paper's example (1.., 101.., 1001..).
pub fn generate(spec: &TreeSpec) -> ProductData {
    let assy_count = spec.assembly_count() as i64;
    let comp_base = assy_count; // components start at assy_count + 1
    let link_base = assy_count + spec.component_count() as i64;
    let spec_base = link_base + spec.link_count() as i64;

    let mut attr_rng = Prng::seed_from_u64(spec.attribute_seed);
    let mut vis = VisibilityGen::new(spec);

    let mut nodes = Vec::with_capacity((assy_count + spec.component_count() as i64) as usize);
    let mut links = Vec::with_capacity(spec.link_count() as usize);
    let mut spec_ids = Vec::new();
    let mut specified_by = Vec::new();

    // Root assembly.
    nodes.push(GeneratedNode {
        kind: NodeKind::Assembly,
        obid: 1,
        name: "N00000001".to_string(),
        level: 0,
        decomposable: attr_rng.f64() < spec.decomposable_fraction,
        make: attr_rng.f64() < spec.make_fraction,
        specified: false,
        visible: true,
    });

    let mut next_assy: i64 = 2;
    let mut next_comp: i64 = comp_base + 1;
    let mut next_link: i64 = link_base + 1;
    let mut next_spec: i64 = spec_base + 1;

    // frontier of (obid, visible-from-root) for the current level
    let mut frontier: Vec<(i64, bool)> = vec![(1, true)];
    let mut visible_per_level = Vec::with_capacity(spec.depth as usize);
    let mut total_per_level = Vec::with_capacity(spec.depth as usize);
    let mut root_children = 0u64;
    let mut expanded_children = 0u64;

    for level in 1..=spec.depth {
        let leaf_level = level == spec.depth;
        let mut next_frontier = Vec::with_capacity(frontier.len() * spec.branching as usize);
        let mut visible_here = 0u64;
        let mut total_here = 0u64;

        for &(parent, parent_visible) in &frontier {
            if parent_visible {
                expanded_children += spec.branching as u64;
            }
            if parent == 1 {
                root_children = spec.branching as u64;
            }
            for _ in 0..spec.branching {
                let (obid, kind) = if leaf_level {
                    let id = next_comp;
                    next_comp += 1;
                    (id, NodeKind::Component)
                } else {
                    let id = next_assy;
                    next_assy += 1;
                    (id, NodeKind::Assembly)
                };

                let specified =
                    kind == NodeKind::Component && attr_rng.f64() < spec.specified_fraction;
                let link_visible = vis.next(parent_visible);
                let node_visible = parent_visible && link_visible;
                nodes.push(GeneratedNode {
                    kind,
                    obid,
                    name: format!("N{obid:08}"),
                    level,
                    decomposable: kind == NodeKind::Assembly
                        && attr_rng.f64() < spec.decomposable_fraction,
                    make: kind == NodeKind::Assembly && attr_rng.f64() < spec.make_fraction,
                    specified,
                    visible: node_visible,
                });

                if specified {
                    let sid = next_spec;
                    next_spec += 1;
                    spec_ids.push(sid);
                    specified_by.push((obid, sid));
                }

                let expired = attr_rng.f64() < spec.expired_effectivity_fraction;
                // The user selects effectivity unit 5; expired links end
                // before it.
                let (eff_from, eff_to) = if expired { (1, 3) } else { (1, 10) };
                links.push(GeneratedLink {
                    obid: next_link,
                    left: parent,
                    right: obid,
                    eff_from,
                    eff_to,
                    visible: link_visible,
                });
                next_link += 1;

                total_here += 1;
                if node_visible {
                    visible_here += 1;
                }
                if !leaf_level {
                    next_frontier.push((obid, node_visible));
                }
            }
        }
        visible_per_level.push(visible_here);
        total_per_level.push(total_here);
        frontier = next_frontier;
    }

    ProductData {
        spec: spec.clone(),
        nodes,
        links,
        spec_ids,
        specified_by,
        visible_per_level,
        total_per_level,
        root_children,
        expanded_children,
    }
}

impl GeneratedLink {
    /// The structure option stored on this link.
    pub fn strc_opt(&self) -> &'static str {
        if self.visible {
            USER_OPTION
        } else {
            OTHER_OPTION
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_spec() {
        let spec = TreeSpec::new(3, 3, 1.0);
        let data = generate(&spec);
        assert_eq!(
            data.nodes.len() as u64,
            spec.assembly_count() + spec.component_count()
        );
        assert_eq!(data.links.len() as u64, spec.link_count());
        assert_eq!(data.total_nodes(), 3 + 9 + 27);
    }

    #[test]
    fn gamma_one_everything_visible() {
        let data = generate(&TreeSpec::new(4, 2, 1.0));
        assert_eq!(data.visible_nodes(), data.total_nodes());
        assert!(data.links.iter().all(|l| l.visible));
    }

    #[test]
    fn deterministic_visibility_matches_model_when_gamma_beta_integral() {
        // β=5, γ=0.6 → γβ=3 exactly: visible per level must be 3^i.
        let data = generate(&TreeSpec::new(4, 5, 0.6));
        assert_eq!(data.visible_per_level, vec![3, 9, 27, 81]);
    }

    #[test]
    fn random_visibility_close_to_expectation() {
        let spec = TreeSpec::new(6, 3, 0.6).with_visibility(VisibilityMode::Random { seed: 61 });
        let data = generate(&spec);
        let expected: f64 = (1..=6).map(|i| 1.8f64.powi(i)).sum();
        let got = data.visible_nodes() as f64;
        assert!(
            (got - expected).abs() / expected < 0.35,
            "sampled {got} vs expected {expected}"
        );
    }

    #[test]
    fn random_visibility_is_seed_deterministic() {
        let spec = TreeSpec::new(4, 3, 0.5).with_visibility(VisibilityMode::Random { seed: 9 });
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.visible_per_level, b.visible_per_level);
        let spec2 = spec
            .clone()
            .with_visibility(VisibilityMode::Random { seed: 10 });
        let c = generate(&spec2);
        // different seed almost surely differs somewhere
        assert!(a
            .links
            .iter()
            .zip(&c.links)
            .any(|(x, y)| x.visible != y.visible));
    }

    #[test]
    fn id_ranges_are_disjoint() {
        let spec = TreeSpec::new(2, 3, 1.0);
        let data = generate(&spec);
        let max_assy = data
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Assembly)
            .map(|n| n.obid)
            .max()
            .unwrap();
        let min_comp = data
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Component)
            .map(|n| n.obid)
            .min()
            .unwrap();
        let min_link = data.links.iter().map(|l| l.obid).min().unwrap();
        assert!(max_assy < min_comp);
        assert!(min_link > data.nodes.iter().map(|n| n.obid).max().unwrap());
        if let Some(min_spec) = data.spec_ids.iter().min() {
            assert!(*min_spec > data.links.iter().map(|l| l.obid).max().unwrap());
        }
    }

    #[test]
    fn leaves_are_components_inner_are_assemblies() {
        let data = generate(&TreeSpec::new(3, 2, 1.0));
        for n in &data.nodes {
            if n.level == 3 {
                assert_eq!(n.kind, NodeKind::Component);
            } else {
                assert_eq!(n.kind, NodeKind::Assembly);
            }
        }
    }

    #[test]
    fn specified_fraction_zero_yields_no_specs() {
        let data = generate(&TreeSpec::new(2, 3, 1.0).with_specified_fraction(0.0));
        assert!(data.spec_ids.is_empty());
        assert!(data.specified_by.is_empty());
    }

    #[test]
    fn expired_effectivities_marked() {
        let data = generate(&TreeSpec::new(2, 3, 1.0).with_expired_effectivity_fraction(1.0));
        assert!(data.links.iter().all(|l| l.eff_to < 5));
    }

    #[test]
    fn links_form_a_tree() {
        let data = generate(&TreeSpec::new(3, 3, 1.0));
        // every non-root node appears exactly once as a link target
        let mut targets: Vec<i64> = data.links.iter().map(|l| l.right).collect();
        targets.sort_unstable();
        targets.dedup();
        assert_eq!(targets.len(), data.links.len());
        assert_eq!(targets.len() as u64, data.total_nodes());
    }
}
