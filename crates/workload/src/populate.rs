//! Load a generated product structure into a `pdm_sql` database with the
//! Figure-2 schema, padding payloads so a transferred node row hits the
//! configured wire size.

use pdm_sql::{Column, DataType, Database, Result, Row, Schema, Value};

use crate::generator::{generate, NodeKind, ProductData};
use crate::spec::TreeSpec;

/// Fixed wire overhead of one homogenized expand-result row, excluding the
/// payload column's characters: parent(8) + link obid(8) + eff_from(8) +
/// eff_to(8) + strc_opt(4+4) + type(4+4) + obid(8) + name(4+9) + dec(4+1) +
/// checkedout(1) + payload length prefix(4) = 79 bytes.
pub const ROW_OVERHEAD_BYTES: usize = 79;

/// Characters of padding needed so an expand-result row occupies
/// `node_size` bytes on the wire.
pub fn payload_len(node_size: usize) -> usize {
    node_size.saturating_sub(ROW_OVERHEAD_BYTES)
}

/// Structure option stored on a node row: the user's option when the node is
/// visible from the root, a different option otherwise.
fn node_opt(visible: bool) -> &'static str {
    if visible {
        crate::USER_OPTION
    } else {
        crate::OTHER_OPTION
    }
}

/// Create the Figure-2 schema, insert all generated rows, and build the
/// indexes the navigational access path needs.
pub fn populate(db: &mut Database, data: &ProductData) -> Result<()> {
    create_schema(db)?;

    let payload = "x".repeat(payload_len(data.spec.node_size));
    // Components render an empty `dec` (one byte less than assemblies'
    // '+'/'-'), so their payload is one character longer to keep every
    // homogenized row at exactly the target node size.
    let comp_payload = "x".repeat(payload_len(data.spec.node_size) + 1);

    let mut assy_rows = Vec::new();
    let mut comp_rows = Vec::new();
    for n in &data.nodes {
        match n.kind {
            NodeKind::Assembly => assy_rows.push(Row::new(vec![
                Value::from("assy"),
                Value::Int(n.obid),
                Value::from(n.name.clone()),
                Value::from(if n.decomposable { "+" } else { "-" }),
                Value::from(if n.make { "make" } else { "buy" }),
                Value::from(node_opt(n.visible)),
                Value::Bool(false),
                Value::from(payload.clone()),
            ])),
            NodeKind::Component => comp_rows.push(Row::new(vec![
                Value::from("comp"),
                Value::Int(n.obid),
                Value::from(n.name.clone()),
                Value::from(node_opt(n.visible)),
                Value::Bool(false),
                Value::from(comp_payload.clone()),
            ])),
        }
    }
    db.insert_rows("assy", assy_rows)?;
    db.insert_rows("comp", comp_rows)?;

    let link_rows: Vec<Row> = data
        .links
        .iter()
        .map(|l| {
            Row::new(vec![
                Value::from("link"),
                Value::Int(l.obid),
                Value::Int(l.left),
                Value::Int(l.right),
                Value::Int(l.eff_from),
                Value::Int(l.eff_to),
                Value::from(l.strc_opt()),
            ])
        })
        .collect();
    db.insert_rows("link", link_rows)?;

    let spec_rows: Vec<Row> = data
        .spec_ids
        .iter()
        .map(|&sid| {
            Row::new(vec![
                Value::from("spec"),
                Value::Int(sid),
                Value::from(format!("S{sid:08}")),
            ])
        })
        .collect();
    db.insert_rows("spec", spec_rows)?;

    let sb_rows: Vec<Row> = data
        .specified_by
        .iter()
        .enumerate()
        .map(|(i, &(comp, spec))| {
            Row::new(vec![
                Value::Int(900_000_000 + i as i64),
                Value::Int(comp),
                Value::Int(spec),
            ])
        })
        .collect();
    db.insert_rows("specified_by", sb_rows)?;

    // Indexes for the navigational hot paths.
    for (table, col) in [
        ("link", "left"),
        ("link", "right"),
        ("assy", "obid"),
        ("comp", "obid"),
        ("specified_by", "left"),
    ] {
        db.catalog.table_mut(table)?.create_index(col)?;
    }
    Ok(())
}

fn create_schema(db: &mut Database) -> Result<()> {
    db.catalog.create_table(
        "assy",
        Schema::new(vec![
            Column::new("type", DataType::Text).not_null(),
            Column::new("obid", DataType::Int).not_null(),
            Column::new("name", DataType::Text),
            Column::new("dec", DataType::Text),
            Column::new("make_or_buy", DataType::Text),
            Column::new("strc_opt", DataType::Text),
            Column::new("checkedout", DataType::Bool),
            Column::new("payload", DataType::Text),
        ]),
    )?;
    db.catalog.create_table(
        "comp",
        Schema::new(vec![
            Column::new("type", DataType::Text).not_null(),
            Column::new("obid", DataType::Int).not_null(),
            Column::new("name", DataType::Text),
            Column::new("strc_opt", DataType::Text),
            Column::new("checkedout", DataType::Bool),
            Column::new("payload", DataType::Text),
        ]),
    )?;
    db.catalog.create_table(
        "link",
        Schema::new(vec![
            Column::new("type", DataType::Text).not_null(),
            Column::new("obid", DataType::Int).not_null(),
            Column::new("left", DataType::Int),
            Column::new("right", DataType::Int),
            Column::new("eff_from", DataType::Int),
            Column::new("eff_to", DataType::Int),
            Column::new("strc_opt", DataType::Text),
        ]),
    )?;
    db.catalog.create_table(
        "spec",
        Schema::new(vec![
            Column::new("type", DataType::Text).not_null(),
            Column::new("obid", DataType::Int).not_null(),
            Column::new("name", DataType::Text),
        ]),
    )?;
    db.catalog.create_table(
        "specified_by",
        Schema::new(vec![
            Column::new("obid", DataType::Int).not_null(),
            Column::new("left", DataType::Int),
            Column::new("right", DataType::Int),
        ]),
    )?;
    Ok(())
}

/// Generate and load in one step.
pub fn build_database(spec: &TreeSpec) -> Result<(Database, ProductData)> {
    let data = generate(spec);
    let mut db = Database::new();
    populate(&mut db, &data)?;
    Ok((db, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TreeSpec;
    use pdm_sql::Value;

    #[test]
    fn populate_small_tree() {
        let spec = TreeSpec::new(2, 3, 1.0).with_node_size(128);
        let (db, data) = build_database(&spec).unwrap();
        let rs = db.query("SELECT COUNT(*) AS n FROM assy").unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Int(1 + 3));
        let rs = db.query("SELECT COUNT(*) AS n FROM comp").unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Int(9));
        let rs = db.query("SELECT COUNT(*) AS n FROM link").unwrap();
        assert_eq!(rs.rows[0].get(0), &Value::Int(data.links.len() as i64));
    }

    #[test]
    fn expand_row_hits_target_wire_size() {
        let spec = TreeSpec::new(2, 2, 1.0).with_node_size(512);
        let (db, _) = build_database(&spec).unwrap();
        // The homogenized expand projection for assembly children of node 1.
        let rs = db
            .query(
                "SELECT link.left AS parent, link.obid AS link_id, link.eff_from, link.eff_to, \
                        link.strc_opt, assy.type, assy.obid, assy.name, assy.dec, \
                        assy.checkedout, assy.payload \
                 FROM link JOIN assy ON link.right = assy.obid WHERE link.left = 1",
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        for row in &rs.rows {
            assert_eq!(row.wire_size(), 512);
        }
    }

    #[test]
    fn indexes_exist_for_navigational_path() {
        let spec = TreeSpec::new(2, 2, 1.0);
        let (db, _) = build_database(&spec).unwrap();
        let (_, stats) = db
            .query_with_stats("SELECT * FROM link WHERE left = 1")
            .unwrap();
        assert_eq!(stats.index_probes, 1);
    }

    #[test]
    fn specs_loaded_and_joinable() {
        let spec = TreeSpec::new(2, 2, 1.0).with_specified_fraction(1.0);
        let (db, data) = build_database(&spec).unwrap();
        let rs = db
            .query("SELECT COUNT(*) AS n FROM specified_by AS s JOIN spec ON s.right = spec.obid")
            .unwrap();
        assert_eq!(
            rs.rows[0].get(0),
            &Value::Int(data.specified_by.len() as i64)
        );
    }

    #[test]
    fn strc_opt_partitions_by_visibility() {
        let spec = TreeSpec::new(3, 5, 0.6); // deterministic γβ=3
        let (db, data) = build_database(&spec).unwrap();
        let rs = db
            .query("SELECT COUNT(*) AS n FROM link WHERE strc_opt = 'OPTA'")
            .unwrap();
        let visible_links = data.links.iter().filter(|l| l.visible).count() as i64;
        assert_eq!(rs.rows[0].get(0), &Value::Int(visible_links));
    }
}
