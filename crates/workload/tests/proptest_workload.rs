#![allow(clippy::unwrap_used)]

//! Property-based tests on the workload generator: structural invariants of
//! generated product trees and consistency between the generator's
//! bookkeeping and the loaded database.
//!
//! Uses the in-repo `pdm_prng::check` harness (explicit generator loops)
//! instead of proptest, which the offline build cannot fetch.

use pdm_prng::check::cases;
use pdm_prng::Prng;
use std::collections::{HashMap, HashSet};

use pdm_sql::Value;
use pdm_workload::{build_database, generator::generate, NodeKind, TreeSpec, VisibilityMode};

fn arb_spec(rng: &mut Prng) -> TreeSpec {
    let depth = rng.u32_inclusive(1, 4);
    let branching = rng.u32_inclusive(2, 4);
    let gamma = if rng.index(16) == 0 {
        1.0
    } else {
        rng.f64_range(0.0, 1.0)
    };
    let seed = rng.u64_inclusive(0, 999);
    let vis = if rng.bool() {
        VisibilityMode::Random { seed }
    } else {
        VisibilityMode::Deterministic
    };
    TreeSpec::new(depth, branching, gamma)
        .with_visibility(vis)
        .with_node_size(96)
        .with_attribute_seed(seed)
}

/// Generated counts match the closed-form spec counts exactly.
#[test]
fn counts_match_spec() {
    cases("counts_match_spec", 128, 0x31, |rng| {
        let spec = arb_spec(rng);
        let data = generate(&spec);
        assert_eq!(
            data.nodes.len() as u64,
            spec.assembly_count() + spec.component_count()
        );
        assert_eq!(data.links.len() as u64, spec.link_count());
        assert_eq!(data.total_nodes(), spec.link_count());
    });
}

/// Links form a tree rooted at obid 1: every non-root node has exactly
/// one incoming link, and every node is reachable from the root.
#[test]
fn links_form_rooted_tree() {
    cases("links_form_rooted_tree", 128, 0x32, |rng| {
        let spec = arb_spec(rng);
        let data = generate(&spec);
        let mut incoming: HashMap<i64, usize> = HashMap::new();
        let mut children: HashMap<i64, Vec<i64>> = HashMap::new();
        for l in &data.links {
            *incoming.entry(l.right).or_insert(0) += 1;
            children.entry(l.left).or_default().push(l.right);
        }
        assert!(incoming.values().all(|&c| c == 1));
        assert!(!incoming.contains_key(&1), "root has no incoming link");

        let mut seen: HashSet<i64> = HashSet::new();
        let mut stack = vec![1i64];
        while let Some(n) = stack.pop() {
            if seen.insert(n) {
                if let Some(cs) = children.get(&n) {
                    stack.extend(cs.iter().copied());
                }
            }
        }
        assert_eq!(seen.len() as u64, 1 + data.total_nodes());
    });
}

/// Visibility bookkeeping is internally consistent: per-level visible
/// counts sum to the node-level flags, and a node is visible iff its
/// link and all ancestors' links are visible.
#[test]
fn visibility_flags_consistent() {
    cases("visibility_flags_consistent", 128, 0x33, |rng| {
        let spec = arb_spec(rng);
        let data = generate(&spec);
        let flagged = data
            .nodes
            .iter()
            .filter(|n| n.visible && n.level > 0)
            .count() as u64;
        assert_eq!(flagged, data.visible_nodes());

        let link_by_child: HashMap<i64, &pdm_workload::GeneratedLink> =
            data.links.iter().map(|l| (l.right, l)).collect();
        let visible_by_id: HashMap<i64, bool> =
            data.nodes.iter().map(|n| (n.obid, n.visible)).collect();
        for node in &data.nodes {
            if node.level == 0 {
                assert!(node.visible);
                continue;
            }
            let link = link_by_child[&node.obid];
            let parent_visible = visible_by_id[&link.left];
            assert_eq!(node.visible, parent_visible && link.visible);
        }
    });
}

/// Visible counts respect the branching bound: v_i ≤ β · v_{i-1}.
#[test]
fn visible_counts_bounded_by_branching() {
    cases("visible_counts_bounded_by_branching", 128, 0x34, |rng| {
        let spec = arb_spec(rng);
        let data = generate(&spec);
        let mut prev = 1u64; // root
        for &v in &data.visible_per_level {
            assert!(v <= prev * spec.branching as u64);
            prev = v;
        }
    });
}

/// The loaded database agrees with the generator's bookkeeping.
#[test]
fn database_matches_generator() {
    cases("database_matches_generator", 128, 0x35, |rng| {
        let spec = arb_spec(rng);
        let (db, data) = build_database(&spec).unwrap();
        let count = |sql: &str| -> i64 {
            match db.query(sql).unwrap().rows[0].get(0) {
                Value::Int(i) => *i,
                other => panic!("unexpected {other}"),
            }
        };
        let assys = data
            .nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Assembly)
            .count() as i64;
        assert_eq!(count("SELECT COUNT(*) AS n FROM assy"), assys);
        assert_eq!(
            count("SELECT COUNT(*) AS n FROM link"),
            data.links.len() as i64
        );
        // visible node flags match the strc_opt marking
        let a = count("SELECT COUNT(*) AS n FROM assy WHERE strc_opt = 'OPTA'");
        let c = count("SELECT COUNT(*) AS n FROM comp WHERE strc_opt = 'OPTA'");
        assert_eq!((a + c) as u64, 1 + data.visible_nodes()); // root included
    });
}

/// Deterministic specs are reproducible; the same spec always generates
/// the same ids, links, and visibility markings.
#[test]
fn generation_is_deterministic() {
    cases("generation_is_deterministic", 128, 0x36, |rng| {
        let spec = arb_spec(rng);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.visible_per_level, b.visible_per_level);
        assert_eq!(a.links.len(), b.links.len());
        for (x, y) in a.links.iter().zip(&b.links) {
            assert_eq!(x.obid, y.obid);
            assert_eq!(x.left, y.left);
            assert_eq!(x.right, y.right);
            assert_eq!(x.visible, y.visible);
        }
    });
}
