//! Traffic accounting: the observable quantities of Table 1 (`q`, `c`,
//! `vol`, `T`) measured from actual message exchanges.

use std::fmt;

/// Accumulated traffic counters for a measured user action.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficStats {
    /// Number of requests sent (the paper's `q`).
    pub queries: usize,
    /// Number of WAN communications — requests plus responses (`c`).
    pub communications: usize,
    /// Request packets sent (≥ `queries`; large recursive queries span
    /// several packets).
    pub request_packets: usize,
    /// Raw response payload bytes (result rows on the wire).
    pub response_payload_bytes: usize,
    /// Chargeable data volume in bytes per the paper's eq. (3)/(5):
    /// request packets at full packet size, response payload, plus the
    /// half-filled-last-packet correction.
    pub volume_bytes: f64,
    /// Response-time share caused by latency (`c · T_Lat`).
    pub latency_time: f64,
    /// Response-time share caused by serialization (`vol / dtr`).
    pub transfer_time: f64,
    /// Packets retransmitted after loss (their volume and latency are
    /// already folded into `volume_bytes` / `latency_time`).
    pub retransmits: usize,
    /// Exchange attempts that failed outright (timeout, outage, server
    /// error, lost response).
    pub failed_attempts: usize,
    /// Failed attempts where the client gave up waiting (stalls, packets
    /// past the retransmit cap, lost responses).
    pub timeouts: usize,
    /// Failed attempts refused by the server with a transient error.
    pub server_errors: usize,
    /// Failed attempts that hit a scheduled outage window.
    pub outage_hits: usize,
    /// Virtual time burned by failed attempts — kept apart from
    /// `latency_time`/`transfer_time` so the paper's eq. (4)/(6) identities
    /// still hold for the successful traffic.
    pub fault_wait_time: f64,
    /// Retries the client's leaky-bucket retry budget refused: the
    /// underlying failure was surfaced immediately instead of amplifying
    /// offered load (see `pdm_core::overload::RetryBudget`).
    pub budget_denied_retries: usize,
}

impl TrafficStats {
    pub fn new() -> Self {
        TrafficStats::default()
    }

    /// Total response time contribution (the paper's `T`, plus any time
    /// burned waiting out failed attempts on a faulty link).
    pub fn response_time(&self) -> f64 {
        self.latency_time + self.transfer_time + self.fault_wait_time
    }

    /// Fold another measurement into this one (e.g. per-query stats into a
    /// per-action total).
    pub fn absorb(&mut self, other: &TrafficStats) {
        self.queries += other.queries;
        self.communications += other.communications;
        self.request_packets += other.request_packets;
        self.response_payload_bytes += other.response_payload_bytes;
        self.volume_bytes += other.volume_bytes;
        self.latency_time += other.latency_time;
        self.transfer_time += other.transfer_time;
        self.retransmits += other.retransmits;
        self.failed_attempts += other.failed_attempts;
        self.timeouts += other.timeouts;
        self.server_errors += other.server_errors;
        self.outage_hits += other.outage_hits;
        self.fault_wait_time += other.fault_wait_time;
        self.budget_denied_retries += other.budget_denied_retries;
    }
}

/// Fold one action's [`TrafficStats`] into a metrics registry — the single
/// adapter unifying Table-1 quantities (`q`, `c`, `vol`, `T`) with the
/// server-side metrics in one JSON snapshot.
///
/// **No double counting:** this function is the only writer of the `net.*`
/// metric family (including `net.retransmits`). Callers invoke it exactly
/// once per metering-reset segment (the session does so when an action
/// completes), so registry totals equal the sum of per-action stats.
pub fn record_traffic(registry: &pdm_obs::MetricsRegistry, stats: &TrafficStats) {
    registry.counter("net.queries").add(stats.queries as u64);
    registry
        .counter("net.communications")
        .add(stats.communications as u64);
    registry
        .counter("net.request_packets")
        .add(stats.request_packets as u64);
    registry
        .counter("net.response_payload_bytes")
        .add(stats.response_payload_bytes as u64);
    registry.gauge("net.volume_bytes").add(stats.volume_bytes);
    registry.gauge("net.latency_s").add(stats.latency_time);
    registry.gauge("net.transfer_s").add(stats.transfer_time);
    registry
        .gauge("net.fault_wait_s")
        .add(stats.fault_wait_time);
    registry
        .gauge("net.response_time_s")
        .add(stats.response_time());
    registry
        .counter("net.retransmits")
        .add(stats.retransmits as u64);
    registry
        .counter("net.failed_attempts")
        .add(stats.failed_attempts as u64);
    registry.counter("net.timeouts").add(stats.timeouts as u64);
    registry
        .counter("net.server_errors")
        .add(stats.server_errors as u64);
    registry
        .counter("net.outage_hits")
        .add(stats.outage_hits as u64);
    registry
        .counter("net.budget_denied_retries")
        .add(stats.budget_denied_retries as u64);
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "q={} c={} vol={:.0}B T={:.2}s (latency {:.2}s + transfer {:.2}s)",
            self.queries,
            self.communications,
            self.volume_bytes,
            self.response_time(),
            self.latency_time,
            self.transfer_time
        )?;
        if self.failed_attempts > 0 || self.retransmits > 0 {
            write!(
                f,
                " faults: {} failed, {} retransmits, {:.2}s waited",
                self.failed_attempts, self.retransmits, self.fault_wait_time
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_time_is_sum_of_parts() {
        let s = TrafficStats {
            latency_time: 0.3,
            transfer_time: 12.98,
            ..Default::default()
        };
        assert!((s.response_time() - 13.28).abs() < 1e-12);
    }

    #[test]
    fn absorb_accumulates_all_fields() {
        let mut a = TrafficStats {
            queries: 1,
            communications: 2,
            request_packets: 1,
            response_payload_bytes: 100,
            volume_bytes: 4196.0,
            latency_time: 0.3,
            transfer_time: 0.1,
            retransmits: 1,
            failed_attempts: 2,
            timeouts: 1,
            server_errors: 1,
            outage_hits: 0,
            fault_wait_time: 30.0,
            budget_denied_retries: 1,
        };
        let b = a.clone();
        a.absorb(&b);
        assert_eq!(a.queries, 2);
        assert_eq!(a.communications, 4);
        assert_eq!(a.response_payload_bytes, 200);
        assert!((a.volume_bytes - 8392.0).abs() < 1e-9);
        assert_eq!(a.retransmits, 2);
        assert_eq!(a.failed_attempts, 4);
        assert_eq!(a.timeouts, 2);
        assert_eq!(a.server_errors, 2);
        assert!((a.fault_wait_time - 60.0).abs() < 1e-12);
        assert_eq!(a.budget_denied_retries, 2);
    }

    #[test]
    fn display_is_readable() {
        let s = TrafficStats {
            queries: 3,
            communications: 6,
            volume_bytes: 1000.0,
            latency_time: 0.9,
            transfer_time: 0.1,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("q=3"));
        assert!(text.contains("c=6"));
    }
}
